//! # mbe-suite
//!
//! A production-quality Rust reproduction of **"Maximal Biclique
//! Enumeration: A Prefix Tree Based Approach"** (ICDE 2024): the MBET
//! prefix-tree algorithm, the baselines it is evaluated against, workload
//! generators calibrated to the standard benchmark datasets, and the
//! full experiment harness. See `DESIGN.md` for the system inventory and
//! the reconstruction notes, and `EXPERIMENTS.md` for measured results.
//!
//! This facade re-exports the workspace crates so applications can
//! depend on `mbe-suite` alone:
//!
//! ```
//! use mbe_suite::prelude::*;
//!
//! let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
//! let report = Enumeration::new(&g).collect().unwrap();
//! assert_eq!(report.bicliques.len(), 1); // the complete block itself
//! assert!(report.is_complete());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`bigraph`] | bipartite CSR graphs, loaders, orderings, statistics |
//! | [`setops`] | sorted-slice and bitmap set kernels |
//! | [`ptree`] | the candidate trie and R-set trie (the paper's data structure) |
//! | [`mbe`] | MBET, MBETM mode, baselines, parallel driver, verification |
//! | [`gen`] | synthetic workloads and benchmark-dataset analogues |

#![forbid(unsafe_code)]

pub use bigraph;
pub use gen;
pub use mbe;
pub use ptree;
pub use setops;

/// The handful of names almost every user needs.
pub mod prelude {
    pub use bigraph::order::VertexOrder;
    pub use bigraph::BipartiteGraph;
    pub use mbe::{
        Algorithm, Biclique, BicliqueSink, Enumeration, MbeError, MbeOptions, MbetConfig, Report,
        RunControl, Stats, StopReason,
    };
}
