//! Resumable positions for the OCT enumeration driver.
//!
//! An [`OctCheckpoint`] pins the graph (fingerprint), the inner-engine
//! configuration (algorithm + order), the next *enumeration unit* to
//! run (an assignment code plus the unit kind within it), and the full
//! set of dedup keys inserted so far. Carrying the dedup state is what
//! makes `stopped ∪ resumed` equal the complete run **duplicate-free**:
//! a candidate discovered under an early assignment and re-discovered
//! under a later one after resume is recognized and suppressed, even
//! though the two discoveries happened in different processes.
//!
//! The byte format mirrors the hardening rules of `mbe::checkpoint`:
//! magic + version header, FNV-1a trailer checksum, and hostile length
//! prefixes rejected before any allocation is sized by them.

use bigraph::general::GeneralGraph;
use bigraph::order::VertexOrder;
use mbe::Algorithm;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MBOK";
const VERSION: u8 = 1;

/// Why a checkpoint could not be decoded, validated, or applied.
#[derive(Debug)]
pub enum OctCheckpointError {
    /// Payload ends before a fixed-size field.
    Truncated,
    /// The magic bytes are not `MBOK`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// A structural rule was violated (hostile length prefix, unknown
    /// enum tag, unsorted key, ...).
    Corrupt(&'static str),
    /// The trailer checksum does not match the payload.
    ChecksumMismatch,
    /// The checkpoint was taken on a different graph.
    FingerprintMismatch,
    /// Underlying I/O failure while loading or saving.
    Io(std::io::Error),
}

impl std::fmt::Display for OctCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OctCheckpointError::Truncated => write!(f, "checkpoint truncated"),
            OctCheckpointError::BadMagic => write!(f, "not an OCT checkpoint (bad magic)"),
            OctCheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            OctCheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            OctCheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            OctCheckpointError::FingerprintMismatch => {
                write!(f, "checkpoint was taken on a different graph")
            }
            OctCheckpointError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for OctCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OctCheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OctCheckpointError {
    fn from(e: std::io::Error) -> Self {
        OctCheckpointError::Io(e)
    }
}

/// A resumable position of the OCT driver. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctCheckpoint {
    /// Fingerprint of the general graph the run was enumerating.
    pub fingerprint: u64,
    /// Pinned inner-engine algorithm (resume re-applies it).
    pub algorithm: Algorithm,
    /// Pinned vertex order.
    pub order: VertexOrder,
    /// The ternary assignment code of the next unit to run.
    pub next_code: u64,
    /// Unit kind within that code: `0` = crossing, `1` = same-side.
    pub next_kind: u8,
    /// Cumulative bicliques emitted across all runs so far.
    pub emitted: u64,
    /// Every dedup key (sorted `A ∪ B` vertex set) inserted so far —
    /// emitted, duplicate-suppressed, and maximality-rejected alike.
    pub keys: Vec<Vec<u32>>,
}

fn alg_tag(a: Algorithm) -> u8 {
    match a {
        Algorithm::MineLmbc => 1,
        Algorithm::Mbea => 2,
        Algorithm::Imbea => 3,
        Algorithm::Mbet => 4,
    }
}

fn alg_from(tag: u8) -> Result<Algorithm, OctCheckpointError> {
    Ok(match tag {
        1 => Algorithm::MineLmbc,
        2 => Algorithm::Mbea,
        3 => Algorithm::Imbea,
        4 => Algorithm::Mbet,
        _ => return Err(OctCheckpointError::Corrupt("unknown algorithm tag")),
    })
}

fn order_parts(o: VertexOrder) -> (u8, u64) {
    match o {
        VertexOrder::Natural => (1, 0),
        VertexOrder::AscendingDegree => (2, 0),
        VertexOrder::DescendingDegree => (3, 0),
        VertexOrder::Unilateral => (4, 0),
        VertexOrder::Random(seed) => (5, seed),
    }
}

fn order_from(tag: u8, seed: u64) -> Result<VertexOrder, OctCheckpointError> {
    Ok(match tag {
        1 => VertexOrder::Natural,
        2 => VertexOrder::AscendingDegree,
        3 => VertexOrder::DescendingDegree,
        4 => VertexOrder::Unilateral,
        5 => VertexOrder::Random(seed),
        _ => return Err(OctCheckpointError::Corrupt("unknown order tag")),
    })
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], OctCheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(OctCheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, OctCheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, OctCheckpointError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, OctCheckpointError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl OctCheckpoint {
    /// Serializes to the `MBOK` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + self.keys.iter().map(|k| 4 + 4 * k.len()).sum::<usize>());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.push(alg_tag(self.algorithm));
        let (otag, seed) = order_parts(self.order);
        out.push(otag);
        out.extend_from_slice(&seed.to_le_bytes());
        out.extend_from_slice(&self.next_code.to_le_bytes());
        out.push(self.next_kind);
        out.extend_from_slice(&self.emitted.to_le_bytes());
        out.extend_from_slice(&(self.keys.len() as u64).to_le_bytes());
        for key in &self.keys {
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            for &v in key {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and verifies a serialized checkpoint. Hostile length
    /// prefixes are rejected before any allocation is sized by them.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OctCheckpointError> {
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(OctCheckpointError::Truncated);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        if fnv(payload) != want {
            return Err(OctCheckpointError::ChecksumMismatch);
        }
        let mut r = Reader { buf: payload, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(OctCheckpointError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(OctCheckpointError::BadVersion(version));
        }
        let fingerprint = r.u64()?;
        let algorithm = alg_from(r.u8()?)?;
        let otag = r.u8()?;
        let seed = r.u64()?;
        let order = order_from(otag, seed)?;
        let next_code = r.u64()?;
        let next_kind = r.u8()?;
        if next_kind > 1 {
            return Err(OctCheckpointError::Corrupt("unit kind out of range"));
        }
        let emitted = r.u64()?;
        let n_keys = r.u64()?;
        // Each key costs at least 4 bytes (its length prefix); a count
        // larger than the payload could carry is hostile.
        if n_keys > (r.remaining() / 4) as u64 {
            return Err(OctCheckpointError::Corrupt("key count exceeds payload"));
        }
        let mut keys = Vec::with_capacity(n_keys as usize);
        for _ in 0..n_keys {
            let len = r.u32()? as usize;
            if len > r.remaining() / 4 {
                return Err(OctCheckpointError::Corrupt("key length exceeds payload"));
            }
            let mut key = Vec::with_capacity(len);
            for _ in 0..len {
                key.push(r.u32()?);
            }
            if !key.windows(2).all(|w| w[0] < w[1]) {
                return Err(OctCheckpointError::Corrupt("key not strictly increasing"));
            }
            keys.push(key);
        }
        if r.remaining() != 0 {
            return Err(OctCheckpointError::Corrupt("trailing bytes"));
        }
        Ok(OctCheckpoint { fingerprint, algorithm, order, next_code, next_kind, emitted, keys })
    }

    /// `true` iff this checkpoint was taken on (a structural twin of)
    /// `g`.
    pub fn matches(&self, g: &GeneralGraph) -> bool {
        self.fingerprint == g.fingerprint()
    }

    /// Writes the checkpoint to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), OctCheckpointError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and verifies a checkpoint from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, OctCheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OctCheckpoint {
        OctCheckpoint {
            fingerprint: 0xdead_beef_1234_5678,
            algorithm: Algorithm::Mbet,
            order: VertexOrder::Random(42),
            next_code: 17,
            next_kind: 1,
            emitted: 9,
            keys: vec![vec![0, 3, 7], vec![1, 2], vec![]],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(OctCheckpoint::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn corruption_detected() {
        let c = sample();
        let mut bytes = c.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            OctCheckpoint::from_bytes(&bytes),
            Err(OctCheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 5, 12, bytes.len() - 1] {
            assert!(OctCheckpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_key_count_rejected() {
        // Hand-craft a payload declaring u64::MAX keys with a valid
        // checksum; the count must be rejected before allocation.
        let mut c = sample();
        c.keys.clear();
        let mut bytes = c.to_bytes();
        bytes.truncate(bytes.len() - 8); // drop checksum
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes()); // n_keys
        let sum = fnv(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            OctCheckpoint::from_bytes(&bytes),
            Err(OctCheckpointError::Corrupt("key count exceeds payload"))
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        let n = bytes.len();
        let sum = fnv(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(OctCheckpoint::from_bytes(&bytes), Err(OctCheckpointError::BadMagic)));

        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        let n = bytes.len();
        let sum = fnv(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            OctCheckpoint::from_bytes(&bytes),
            Err(OctCheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("oct-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.mbok");
        let c = sample();
        c.save(&path).unwrap();
        assert_eq!(OctCheckpoint::load(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }
}
