//! Maximal **induced** biclique enumeration in general (non-bipartite)
//! graphs, by reduction to the workspace's bipartite MBE engine.
//!
//! The pipeline (DESIGN.md §12):
//!
//! 1. [`decompose`](decompose::decompose) finds a small odd cycle
//!    transversal `S` — removing `S` leaves a bipartite remainder with
//!    certificate classes `(X, Y)` — via BFS odd-cycle peeling plus a
//!    bounded drop/swap local search.
//! 2. [`OctEnumeration`](driver::OctEnumeration) sweeps the `3^|S|`
//!    side assignments of `S`, prunes invalid ones by adjacency masks,
//!    and for each valid assignment builds compact bipartite instances
//!    solved by the stock [`mbe::Enumeration`] engine.
//! 3. Candidates from all assignments are deduplicated through an
//!    R-set trie keyed on the sorted union `A ∪ B` (which uniquely
//!    determines the pair), maximality-filtered against the full
//!    graph, and emitted.
//!
//! Runs are resumable: [`OctCheckpoint`](checkpoint::OctCheckpoint)
//! carries the next unit address *and* the full dedup key log, so a
//! stopped run plus its resumption equals the complete run with no
//! duplicates.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod decompose;
pub mod driver;
pub mod reference;

pub use checkpoint::{OctCheckpoint, OctCheckpointError};
pub use decompose::{decompose, two_color, Class, Decomposition};
pub use driver::{OctEnumeration, OctError, OctReport, OctStats, DEFAULT_MAX_OCT, MAX_OCT_LIMIT};
