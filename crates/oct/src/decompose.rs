//! Odd-cycle-transversal computation.
//!
//! [`two_color`] is the exact bipartiteness check: a BFS 2-coloring
//! that returns the certificate bipartition when one exists. For
//! non-bipartite inputs, [`decompose`] runs a bounded local-search
//! heuristic: *odd-cycle peeling* (repeatedly 2-color, extract an odd
//! cycle from the BFS tree on conflict, move its highest-degree vertex
//! into the transversal) followed by *swap improvement* (re-admit a
//! transversal vertex outright when the remainder stays bipartite, or
//! trade it for one of its neighbors when the trade unlocks a further
//! removal). The search is deterministic — vertices are visited in id
//! order with lowest-id tie-breaks — so the same graph always yields
//! the same decomposition, which is what lets OCT checkpoints replay
//! the same assignment schedule on resume.
//!
//! Every result is a *valid* transversal (the remainder is certified
//! bipartite by construction); minimality is heuristic. Exactly
//! bipartite inputs always yield an empty transversal.

use bigraph::general::GeneralGraph;

/// Where a vertex landed in an OCT decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Remainder vertex on the left (`X`) side of the certificate
    /// bipartition.
    Left,
    /// Remainder vertex on the right (`Y`) side.
    Right,
    /// Member of the odd cycle transversal.
    Oct,
}

/// A certified odd-cycle-transversal decomposition: removing
/// [`Decomposition::oct`] leaves a bipartite graph whose sides are the
/// `Left`/`Right` classes.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Per-vertex class, indexed by vertex id.
    pub class: Vec<Class>,
    /// The transversal, sorted ascending.
    pub oct: Vec<u32>,
}

impl Decomposition {
    /// Sorted ids of the `Left`-class remainder vertices.
    pub fn left(&self) -> Vec<u32> {
        self.ids_of(Class::Left)
    }

    /// Sorted ids of the `Right`-class remainder vertices.
    pub fn right(&self) -> Vec<u32> {
        self.ids_of(Class::Right)
    }

    fn ids_of(&self, want: Class) -> Vec<u32> {
        self.class.iter().enumerate().filter(|&(_, &c)| c == want).map(|(i, _)| i as u32).collect()
    }

    /// Checks the certificate: no edge joins two remainder vertices of
    /// the same class. `true` for every decomposition this module
    /// produces; exposed for tests and debug assertions.
    pub fn is_valid(&self, g: &GeneralGraph) -> bool {
        g.edges().all(|(a, b)| {
            let (ca, cb) = (self.class[a as usize], self.class[b as usize]);
            ca == Class::Oct || cb == Class::Oct || ca != cb
        })
    }
}

/// BFS 2-colors the subgraph induced by `active`. On success, `color`
/// holds 0/1 for active vertices. On an odd cycle, returns its vertex
/// list (closed walk of odd length) extracted from the BFS tree.
fn color_active(
    g: &GeneralGraph,
    active: &[bool],
    color: &mut [u8],
    parent: &mut [u32],
    depth: &mut [u32],
) -> Result<(), Vec<u32>> {
    const UNSET: u8 = 2;
    for c in color.iter_mut() {
        *c = UNSET;
    }
    let n = g.num_vertices();
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if !active[root as usize] || color[root as usize] != UNSET {
            continue;
        }
        color[root as usize] = 0;
        parent[root as usize] = root;
        depth[root as usize] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &w in g.nbr(u) {
                if !active[w as usize] {
                    continue;
                }
                if color[w as usize] == UNSET {
                    color[w as usize] = 1 - color[u as usize];
                    parent[w as usize] = u;
                    depth[w as usize] = depth[u as usize] + 1;
                    queue.push_back(w);
                } else if color[w as usize] == color[u as usize] {
                    return Err(extract_cycle(u, w, parent, depth));
                }
            }
        }
    }
    Ok(())
}

/// Walks BFS-tree parents from the endpoints of conflict edge `(u, w)`
/// up to their lowest common ancestor; the two paths plus the edge form
/// an odd cycle (both endpoints have equal-parity depth).
fn extract_cycle(u: u32, w: u32, parent: &[u32], depth: &[u32]) -> Vec<u32> {
    let (mut a, mut b) = (u, w);
    let mut path_a = vec![a];
    let mut path_b = vec![b];
    while depth[a as usize] > depth[b as usize] {
        a = parent[a as usize];
        path_a.push(a);
    }
    while depth[b as usize] > depth[a as usize] {
        b = parent[b as usize];
        path_b.push(b);
    }
    while a != b {
        a = parent[a as usize];
        path_a.push(a);
        b = parent[b as usize];
        path_b.push(b);
    }
    // `a == b` is the LCA, present once in each path; drop one copy.
    path_b.pop();
    path_b.reverse();
    path_a.extend(path_b);
    path_a
}

/// Computes the certificate bipartition of a bipartite graph, or `None`
/// if the graph contains an odd cycle. Deterministic: BFS components
/// are rooted at the lowest unvisited id and roots are colored 0.
pub fn two_color(g: &GeneralGraph) -> Option<Vec<u8>> {
    let n = g.num_vertices() as usize;
    let active = vec![true; n];
    let mut color = vec![0u8; n];
    let mut parent = vec![0u32; n];
    let mut depth = vec![0u32; n];
    color_active(g, &active, &mut color, &mut parent, &mut depth).ok().map(|()| color)
}

/// Computes an odd cycle transversal by peeling plus bounded swap
/// improvement (see the module docs). The result is always valid;
/// bipartite inputs yield an empty transversal and their exact
/// certificate bipartition.
pub fn decompose(g: &GeneralGraph) -> Decomposition {
    let n = g.num_vertices() as usize;
    let mut active = vec![true; n];
    let mut color = vec![0u8; n];
    let mut parent = vec![0u32; n];
    let mut depth = vec![0u32; n];
    let mut oct: Vec<u32> = Vec::new();

    let colorable = |active: &[bool],
                     color: &mut [u8],
                     parent: &mut [u32],
                     depth: &mut [u32]|
     -> Result<(), Vec<u32>> { color_active(g, active, color, parent, depth) };

    // Peeling: on each odd cycle, transfer the cycle vertex with the
    // highest remaining degree (lowest id on ties) into the transversal.
    while let Err(cycle) = colorable(&active, &mut color, &mut parent, &mut depth) {
        let pick = cycle
            .iter()
            .copied()
            .max_by_key(|&v| {
                let d = g.nbr(v).iter().filter(|&&w| active[w as usize]).count();
                (d, std::cmp::Reverse(v))
            })
            .unwrap_or(cycle[0]);
        active[pick as usize] = false;
        oct.push(pick);
    }

    // Bounded local search: each bipartiteness re-check spends one unit
    // of budget, so the improvement phase is O((n + budget) · (n + m)).
    let mut budget: u64 = 64 + 8 * n as u64;
    loop {
        // Drop pass: re-admit any vertex whose return keeps the
        // remainder bipartite.
        let mut dropped = false;
        let mut i = 0;
        while i < oct.len() {
            if budget == 0 {
                break;
            }
            let v = oct[i];
            active[v as usize] = true;
            budget -= 1;
            if colorable(&active, &mut color, &mut parent, &mut depth).is_ok() {
                oct.remove(i);
                dropped = true;
            } else {
                active[v as usize] = false;
                i += 1;
            }
        }
        if dropped {
            continue;
        }
        // Swap pass: trade a transversal vertex for a neighbor when the
        // trade keeps the remainder bipartite AND unlocks a drop — a
        // strict size improvement; equal-size churn is rejected so the
        // search terminates.
        let mut improved = false;
        'swap: for i in 0..oct.len() {
            let s = oct[i];
            for &w in g.nbr(s) {
                if !active[w as usize] || budget < 2 {
                    continue;
                }
                active[w as usize] = false;
                active[s as usize] = true;
                budget -= 1;
                if colorable(&active, &mut color, &mut parent, &mut depth).is_ok() {
                    // Equal-size trade is valid; keep it only if it
                    // unlocks a drop (strict improvement).
                    oct[i] = w;
                    let mut j = 0;
                    while j < oct.len() && budget > 0 {
                        let t = oct[j];
                        active[t as usize] = true;
                        budget -= 1;
                        if colorable(&active, &mut color, &mut parent, &mut depth).is_ok() {
                            oct.remove(j);
                            improved = true;
                            break 'swap;
                        }
                        active[t as usize] = false;
                        j += 1;
                    }
                    oct[i] = s;
                }
                active[w as usize] = true;
                active[s as usize] = false;
            }
        }
        if !improved || budget == 0 {
            break;
        }
    }

    // Final certificate coloring of the remainder.
    let ok = colorable(&active, &mut color, &mut parent, &mut depth).is_ok();
    debug_assert!(ok, "peeling must terminate with a bipartite remainder");
    if !ok {
        // Defensive: fall back to an all-OCT decomposition rather than
        // returning an invalid certificate.
        return Decomposition { class: vec![Class::Oct; n], oct: (0..n as u32).collect() };
    }
    oct.sort_unstable();
    let class: Vec<Class> = (0..n)
        .map(|v| {
            if !active[v] {
                Class::Oct
            } else if color[v] == 0 {
                Class::Left
            } else {
                Class::Right
            }
        })
        .collect();
    Decomposition { class, oct }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_graph_two_colors() {
        // A 6-cycle: bipartite.
        let g =
            GeneralGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let colors = two_color(&g).unwrap();
        for (a, b) in g.edges() {
            assert_ne!(colors[a as usize], colors[b as usize]);
        }
        let d = decompose(&g);
        assert!(d.oct.is_empty());
        assert!(d.is_valid(&g));
    }

    #[test]
    fn triangle_needs_one() {
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(two_color(&g).is_none());
        let d = decompose(&g);
        assert_eq!(d.oct.len(), 1);
        assert!(d.is_valid(&g));
    }

    #[test]
    fn five_cycle_needs_one() {
        let g = GeneralGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = decompose(&g);
        assert_eq!(d.oct.len(), 1);
        assert!(d.is_valid(&g));
    }

    #[test]
    fn two_disjoint_triangles_need_two() {
        let g =
            GeneralGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let d = decompose(&g);
        assert_eq!(d.oct.len(), 2);
        assert!(d.is_valid(&g));
    }

    #[test]
    fn complete_graph_k4() {
        // K4 has OCT number 2 (removing any two vertices leaves one edge).
        let g =
            GeneralGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let d = decompose(&g);
        assert_eq!(d.oct.len(), 2);
        assert!(d.is_valid(&g));
    }

    #[test]
    fn deterministic() {
        let edges =
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (0, 5), (1, 4), (2, 5)];
        let g = GeneralGraph::from_edges(6, &edges).unwrap();
        let d1 = decompose(&g);
        let d2 = decompose(&g);
        assert_eq!(d1.oct, d2.oct);
        assert_eq!(d1.left(), d2.left());
        assert_eq!(d1.right(), d2.right());
    }

    #[test]
    fn empty_and_singleton() {
        let g = GeneralGraph::from_edges(0, &[]).unwrap();
        let d = decompose(&g);
        assert!(d.oct.is_empty());
        let g = GeneralGraph::from_edges(1, &[]).unwrap();
        let d = decompose(&g);
        assert!(d.oct.is_empty());
        assert_eq!(d.class, vec![Class::Left]);
    }
}
