//! The OCT enumeration driver.
//!
//! Lifts bipartite maximal biclique enumeration to general graphs by
//! iterating over the ≤ `3^|OCT|` side assignments of the odd cycle
//! transversal. Each transversal vertex is assigned *excluded*, *left*
//! or *right*; assignments violating an adjacency constraint (two
//! same-side transversal vertices adjacent, or a left/right pair
//! non-adjacent) are pruned wholesale. A valid assignment
//! `(S_L, S_R)` contributes up to two *enumeration units*:
//!
//! * **crossing** — a bipartite instance over
//!   `L_X = {x ∈ X : x ⊥ S_L, x ~ all S_R}` and
//!   `R_Y = {y ∈ Y : y ⊥ S_R, y ~ all S_L}` with the original edges;
//!   its maximal bicliques `(P, Q)` yield candidates
//!   `(S_L ∪ P, S_R ∪ Q)` — every maximal induced biclique whose two
//!   sides both contain remainder vertices is found here (remainder
//!   parts of the two sides necessarily lie in opposite certificate
//!   classes);
//! * **same-side** (only when `S_R ≠ ∅`) — covers bicliques whose
//!   second side lies *entirely inside the transversal*: the first
//!   side is `S_L ∪ M` where `M` is a maximal independent set of the
//!   bipartite graph on `{v ∈ X ∪ Y : v ⊥ S_L, v ~ all S_R}`. Maximal
//!   independent sets of a bipartite graph are exactly the maximal
//!   bicliques of its **bipartite complement** (plus the two one-class
//!   extremes, handled directly), so the same stock engine runs here
//!   too.
//!
//! Candidates are deduplicated across assignments through a
//! [`TrieSink`]-backed R-set trie keyed by the sorted vertex set
//! `A ∪ B` — for a biclique with two non-empty sides the union
//! determines the pair, because a complete bipartite graph with two
//! non-empty sides is connected and its bipartition is unique. A fresh
//! candidate may still be *non-maximal in the full graph* (it was
//! maximal only within its assignment's instance), so each one is
//! maximality-checked against the general graph before being emitted.

use crate::checkpoint::{OctCheckpoint, OctCheckpointError};
use crate::decompose::{decompose, Decomposition};
use bigraph::general::GeneralGraph;
use bigraph::order::VertexOrder;
use bigraph::{BipartiteGraph, GraphBuilder, LocalGraph};
use mbe::{Algorithm, Biclique, Enumeration, MbeError, Observer, RunControl, StopReason, TrieSink};
use std::time::{Duration, Instant};

/// Default cap on the transversal size the driver will accept.
pub const DEFAULT_MAX_OCT: u32 = 12;

/// Hard ceiling on [`OctEnumeration::max_oct`]: beyond this the
/// `3^|OCT|` assignment space cannot be iterated in reasonable time.
pub const MAX_OCT_LIMIT: u32 = 14;

/// Errors from the OCT driver.
#[derive(Debug)]
pub enum OctError {
    /// The heuristic transversal exceeds the configured cap; the
    /// `3^|OCT|` assignment sweep would be intractable.
    TransversalTooLarge {
        /// Size of the transversal the heuristic found.
        size: u32,
        /// The configured cap it exceeded.
        limit: u32,
    },
    /// A builder option combination is invalid.
    InvalidConfig(&'static str),
    /// An inner bipartite enumeration failed.
    Engine(MbeError),
    /// A resume checkpoint could not be validated or applied.
    Checkpoint(OctCheckpointError),
}

impl std::fmt::Display for OctError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OctError::TransversalTooLarge { size, limit } => {
                write!(f, "odd cycle transversal of size {size} exceeds the cap of {limit}")
            }
            OctError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OctError::Engine(e) => write!(f, "inner enumeration failed: {e}"),
            OctError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for OctError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OctError::Engine(e) => Some(e),
            OctError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MbeError> for OctError {
    fn from(e: MbeError) -> Self {
        OctError::Engine(e)
    }
}

impl From<OctCheckpointError> for OctError {
    fn from(e: OctCheckpointError) -> Self {
        OctError::Checkpoint(e)
    }
}

/// Counters describing one OCT driver run.
#[derive(Debug, Clone, Default)]
pub struct OctStats {
    /// Transversal size the decomposition produced.
    pub oct_size: u32,
    /// Remainder vertices in the `X` (left) certificate class.
    pub left_size: u32,
    /// Remainder vertices in the `Y` (right) class.
    pub right_size: u32,
    /// Valid (unpruned) assignments visited this run.
    pub assignments: u64,
    /// Enumeration units executed this run.
    pub units_run: u64,
    /// Inner engine invocations (units can skip the engine when an
    /// instance side is empty).
    pub inner_runs: u64,
    /// Bicliques the inner engines emitted (pre-dedup).
    pub inner_emitted: u64,
    /// Candidates examined (inner emissions plus direct candidates).
    pub candidates: u64,
    /// Candidates suppressed as cross-assignment duplicates.
    pub duplicates: u64,
    /// Fresh candidates rejected by the full-graph maximality check.
    pub nonmaximal: u64,
    /// Bicliques emitted, cumulative across resumed runs.
    pub emitted: u64,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
}

/// The outcome of an OCT driver run.
#[derive(Debug)]
pub struct OctReport {
    /// Maximal induced bicliques emitted by *this* run (empty under
    /// [`OctEnumeration::count`]). Each [`Biclique`]'s `left` side is
    /// the one containing the smaller minimum vertex id.
    pub bicliques: Vec<Biclique>,
    /// The transversal the decomposition produced, sorted.
    pub oct: Vec<u32>,
    /// Run counters.
    pub stats: OctStats,
    /// Why the run stopped.
    pub stop: StopReason,
    /// A resumable position, present iff the run stopped early.
    pub checkpoint: Option<OctCheckpoint>,
    /// Worker telemetry folded across all inner engine runs: one entry
    /// per worker index, counters summed and histograms merged.
    pub metrics: mbe::metrics::RunMetrics,
}

impl OctReport {
    /// `true` iff the run covered the whole assignment space.
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete()
    }
}

/// Builder for an OCT enumeration run, mirroring [`Enumeration`].
///
/// ```
/// use bigraph::general::GeneralGraph;
/// use oct::OctEnumeration;
///
/// // A triangle with a pendant: bicliques are the three edges of the
/// // triangle, the pendant edge, and the path-center pair {0,2}-{1}...
/// let g = GeneralGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// let report = OctEnumeration::new(&g).collect().unwrap();
/// assert!(report.is_complete());
/// ```
pub struct OctEnumeration<'g> {
    g: &'g GeneralGraph,
    algorithm: Algorithm,
    order: VertexOrder,
    threads: usize,
    control: RunControl,
    max_bicliques: Option<u64>,
    max_oct: u32,
    resume: Option<OctCheckpoint>,
    observer: Option<&'g dyn Observer>,
}

/// Unit kinds, in execution order within one assignment code.
const KIND_CROSSING: u8 = 0;
const KIND_SAME_SIDE: u8 = 1;

impl<'g> OctEnumeration<'g> {
    /// A driver over `g` with default options (MBET, ascending degree,
    /// serial, no budgets).
    pub fn new(g: &'g GeneralGraph) -> Self {
        OctEnumeration {
            g,
            algorithm: Algorithm::Mbet,
            order: VertexOrder::AscendingDegree,
            threads: 1,
            control: RunControl::new(),
            max_bicliques: None,
            max_oct: DEFAULT_MAX_OCT,
            resume: None,
            observer: None,
        }
    }

    /// Selects the inner bipartite engine.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the vertex order applied inside each instance.
    pub fn order(mut self, o: VertexOrder) -> Self {
        self.order = o;
        self
    }

    /// Worker threads for each inner enumeration (1 = serial).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Shares a control handle: its cancel flag and deadline are
    /// propagated into every inner run and observed between units.
    /// Prefer [`OctEnumeration::max_bicliques`] over the control's
    /// emission budget — the latter would gate raw *candidate*
    /// emissions before dedup.
    pub fn control(mut self, c: RunControl) -> Self {
        self.control = c;
        self
    }

    /// Convenience: sets a wall-clock deadline on the control.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.control = self.control.timeout(d);
        self
    }

    /// Stops after emitting this many (deduplicated, maximal)
    /// bicliques in this run.
    pub fn max_bicliques(mut self, n: u64) -> Self {
        self.max_bicliques = Some(n);
        self
    }

    /// Caps the accepted transversal size (default
    /// [`DEFAULT_MAX_OCT`], at most [`MAX_OCT_LIMIT`]). A larger
    /// transversal fails with [`OctError::TransversalTooLarge`].
    pub fn max_oct(mut self, n: u32) -> Self {
        self.max_oct = n;
        self
    }

    /// Resumes from a checkpoint: pinned algorithm/order are copied
    /// from it and the dedup state is restored, so
    /// `stopped ∪ resumed` equals the complete run duplicate-free.
    pub fn resume(mut self, c: OctCheckpoint) -> Self {
        self.algorithm = c.algorithm;
        self.order = c.order;
        self.resume = Some(c);
        self
    }

    /// Forwards an observer to every inner enumeration (one trace/
    /// progress bracket per unit).
    pub fn observer(mut self, obs: &'g dyn Observer) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Runs the driver, collecting emitted bicliques.
    pub fn collect(self) -> Result<OctReport, OctError> {
        self.run(true)
    }

    /// Runs the driver, counting without storing bicliques.
    pub fn count(self) -> Result<OctReport, OctError> {
        self.run(false)
    }

    fn run(self, keep: bool) -> Result<OctReport, OctError> {
        let started = Instant::now();
        if self.max_oct > MAX_OCT_LIMIT {
            return Err(OctError::InvalidConfig("max_oct above the supported limit"));
        }
        if self.threads == 0 {
            return Err(OctError::InvalidConfig("threads must be at least 1"));
        }
        let fingerprint = self.g.fingerprint();
        let decomp = decompose(self.g);
        let k = decomp.oct.len() as u32;
        if k > self.max_oct {
            return Err(OctError::TransversalTooLarge { size: k, limit: self.max_oct });
        }
        let mut driver = Driver::new(self.g, &decomp, keep);
        driver.stats.oct_size = k;
        driver.stats.left_size = driver.x.len() as u32;
        driver.stats.right_size = driver.y.len() as u32;

        let (start_code, start_kind, emitted_base) = match &self.resume {
            Some(c) => {
                if c.fingerprint != fingerprint {
                    return Err(OctError::Checkpoint(OctCheckpointError::FingerprintMismatch));
                }
                for key in &c.keys {
                    driver.restore_key(key);
                }
                (c.next_code, c.next_kind, c.emitted)
            }
            None => (0, KIND_CROSSING, 0),
        };

        let total_codes = 3u64.checked_pow(k).unwrap_or(u64::MAX);
        let mut stop = StopReason::Completed;
        let mut ckpt_at: Option<(u64, u8)> = None;

        'codes: for code in start_code..total_codes {
            let (l_mask, r_mask) = decode_assignment(code, k);
            if !driver.assignment_valid(l_mask, r_mask) {
                continue;
            }
            driver.stats.assignments += 1;
            for kind in [KIND_CROSSING, KIND_SAME_SIDE] {
                if code == start_code && kind < start_kind {
                    continue;
                }
                if kind == KIND_SAME_SIDE && r_mask == 0 {
                    continue;
                }
                if self.control.is_cancelled() {
                    stop = StopReason::Cancelled;
                    ckpt_at = Some((code, kind));
                    break 'codes;
                }
                let unit_stop = driver.run_unit(
                    code,
                    kind,
                    l_mask,
                    r_mask,
                    self.algorithm,
                    self.order,
                    self.threads,
                    &self.control,
                    self.observer,
                    self.max_bicliques,
                )?;
                if let Some(reason) = unit_stop {
                    stop = reason;
                    ckpt_at = Some((code, kind));
                    break 'codes;
                }
            }
        }

        let emitted_run = driver.emitted;
        let checkpoint = ckpt_at.map(|(next_code, next_kind)| OctCheckpoint {
            fingerprint,
            algorithm: self.algorithm,
            order: self.order,
            next_code,
            next_kind,
            emitted: emitted_base + emitted_run,
            keys: driver.keys_log.clone(),
        });
        let mut stats = driver.stats;
        stats.emitted = emitted_base + emitted_run;
        stats.elapsed = started.elapsed();
        let metrics = mbe::metrics::RunMetrics { workers: driver.metrics };
        Ok(OctReport {
            bicliques: driver.out,
            oct: decomp.oct.clone(),
            stats,
            stop,
            checkpoint,
            metrics,
        })
    }
}

/// Decodes a ternary assignment code into (left, right) bit masks over
/// the sorted transversal: digit 0 = excluded, 1 = left, 2 = right.
fn decode_assignment(code: u64, k: u32) -> (u32, u32) {
    let (mut l, mut r) = (0u32, 0u32);
    let mut c = code;
    for i in 0..k {
        match c % 3 {
            1 => l |= 1 << i,
            2 => r |= 1 << i,
            _ => {}
        }
        c /= 3;
    }
    (l, r)
}

/// Merges two sorted, disjoint id lists.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Per-run state shared by all units.
struct Driver<'g> {
    g: &'g GeneralGraph,
    /// Sorted transversal ids.
    s: Vec<u32>,
    /// Sorted `X`-class remainder ids.
    x: Vec<u32>,
    /// Sorted `Y`-class remainder ids.
    y: Vec<u32>,
    /// Adjacency masks among transversal vertices.
    adj_s: Vec<u32>,
    /// For every vertex: bitmask of adjacent transversal positions.
    oct_mask: Vec<u32>,
    /// The bipartite remainder graph: `U` = index into `x`, `V` = index
    /// into `y`.
    g_xy: BipartiteGraph,
    /// Reused compaction buffers for per-unit instances.
    lg: LocalGraph,
    /// Global dedup trie over `A ∪ B` keys.
    dedup: TrieSink,
    /// Every key inserted, for checkpoint serialization.
    keys_log: Vec<Vec<u32>>,
    stats: OctStats,
    /// Worker telemetry folded across inner runs, indexed by worker.
    metrics: Vec<mbe::metrics::WorkerMetrics>,
    emitted: u64,
    keep: bool,
    out: Vec<Biclique>,
}

impl<'g> Driver<'g> {
    fn new(g: &'g GeneralGraph, decomp: &Decomposition, keep: bool) -> Self {
        let s = decomp.oct.clone();
        let x = decomp.left();
        let y = decomp.right();
        let n = g.num_vertices() as usize;
        let mut adj_s = vec![0u32; s.len()];
        let mut oct_mask = vec![0u32; n];
        for (i, &si) in s.iter().enumerate() {
            for &w in g.nbr(si) {
                oct_mask[w as usize] |= 1 << i;
            }
        }
        for (i, &si) in s.iter().enumerate() {
            adj_s[i] = oct_mask[si as usize];
        }
        // Positions of remainder vertices inside x / y.
        let mut y_pos = vec![u32::MAX; n];
        for (j, &v) in y.iter().enumerate() {
            y_pos[v as usize] = j as u32;
        }
        let mut edges = Vec::new();
        for (xi, &v) in x.iter().enumerate() {
            for &w in g.nbr(v) {
                let yj = y_pos[w as usize];
                if yj != u32::MAX {
                    edges.push((xi as u32, yj));
                }
            }
        }
        let g_xy = BipartiteGraph::from_edges(x.len() as u32, y.len() as u32, &edges)
            .expect("remainder indices are dense by construction");
        Driver {
            g,
            s,
            x,
            y,
            adj_s,
            oct_mask,
            g_xy,
            lg: LocalGraph::new(setops::Kernel::SortedOnly),
            dedup: TrieSink::unbounded(),
            keys_log: Vec::new(),
            stats: OctStats::default(),
            metrics: Vec::new(),
            emitted: 0,
            keep,
            out: Vec::new(),
        }
    }

    /// Folds one inner run's worker telemetry into the per-worker
    /// aggregate: counters sum, histograms merge, peaks take the max.
    fn fold_metrics(&mut self, m: &mbe::metrics::RunMetrics) {
        for wm in &m.workers {
            if self.metrics.len() <= wm.worker {
                self.metrics
                    .extend((self.metrics.len()..=wm.worker).map(mbe::metrics::WorkerMetrics::new));
            }
            let agg = &mut self.metrics[wm.worker];
            agg.tasks += wm.tasks;
            agg.steals += wm.steals;
            agg.idle_wakeups += wm.idle_wakeups;
            agg.emitted += wm.emitted;
            agg.peak_depth = agg.peak_depth.max(wm.peak_depth);
            agg.peak_trie_nodes = agg.peak_trie_nodes.max(wm.peak_trie_nodes);
            agg.task_latency_us.merge(&wm.task_latency_us);
            agg.depth.merge(&wm.depth);
        }
    }

    /// Re-inserts a checkpointed dedup key.
    fn restore_key(&mut self, key: &[u32]) {
        use mbe::BicliqueSink;
        let _ = self.dedup.emit(&[], key);
        self.keys_log.push(key.to_vec());
    }

    /// An assignment is valid iff both sides are independent in `G[S]`
    /// and every left/right pair is adjacent.
    fn assignment_valid(&self, l_mask: u32, r_mask: u32) -> bool {
        let mut m = l_mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.adj_s[i] & l_mask != 0 || self.adj_s[i] & r_mask != r_mask {
                return false;
            }
        }
        let mut m = r_mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.adj_s[i] & r_mask != 0 {
                return false;
            }
        }
        true
    }

    /// Transversal vertices selected by `mask`, sorted (the transversal
    /// itself is sorted, so a mask scan preserves order).
    fn s_of(&self, mask: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(mask.count_ones() as usize);
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            out.push(self.s[i]);
        }
        out
    }

    /// Remainder candidates from `pool` (indices into `ids`) that are
    /// adjacent to every `need`-side transversal vertex and to no
    /// `avoid`-side one.
    fn filter_candidates(&self, ids: &[u32], need: u32, avoid: u32) -> Vec<u32> {
        ids.iter()
            .enumerate()
            .filter(|&(_, &v)| {
                let m = self.oct_mask[v as usize];
                m & need == need && m & avoid == 0
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Runs one enumeration unit. Returns `Ok(Some(reason))` when the
    /// run must stop (the unit should be re-run on resume).
    #[allow(clippy::too_many_arguments)]
    fn run_unit(
        &mut self,
        _code: u64,
        kind: u8,
        l_mask: u32,
        r_mask: u32,
        algorithm: Algorithm,
        order: VertexOrder,
        threads: usize,
        control: &RunControl,
        observer: Option<&dyn Observer>,
        max_bicliques: Option<u64>,
    ) -> Result<Option<StopReason>, OctError> {
        self.stats.units_run += 1;
        let s_l = self.s_of(l_mask);
        let s_r = self.s_of(r_mask);
        if kind == KIND_CROSSING {
            let lx = self.filter_candidates(&self.x, r_mask, l_mask);
            let ry = self.filter_candidates(&self.y, l_mask, r_mask);
            if lx.is_empty() || ry.is_empty() {
                return Ok(None);
            }
            self.lg.localize(&self.g_xy, &lx, &ry);
            let mut b = GraphBuilder::new(lx.len() as u32, ry.len() as u32);
            for j in 0..self.lg.num_right() as u32 {
                for &lid in self.lg.row(j) {
                    b.add_edge(lid, j).expect("local ids are dense");
                }
            }
            let inst = b.build();
            let left_globals: Vec<u32> = lx.iter().map(|&i| self.x[i as usize]).collect();
            let right_globals: Vec<u32> = ry.iter().map(|&j| self.y[j as usize]).collect();
            let report = run_engine(&inst, algorithm, order, threads, control, observer)?;
            self.stats.inner_runs += 1;
            self.stats.inner_emitted += report.bicliques.len() as u64;
            self.fold_metrics(&report.metrics);
            for bic in &report.bicliques {
                let p: Vec<u32> = bic.left.iter().map(|&l| left_globals[l as usize]).collect();
                let q: Vec<u32> = bic.right.iter().map(|&r| right_globals[r as usize]).collect();
                let a = merge_sorted(&s_l, &p);
                let bb = merge_sorted(&s_r, &q);
                if self.consider(a, bb, max_bicliques) {
                    return Ok(Some(StopReason::EmitBudget));
                }
            }
            if report.stop != StopReason::Completed {
                return Ok(Some(report.stop));
            }
            return Ok(None);
        }

        // Same-side unit: the second side is exactly S_R; the first is
        // S_L ∪ M for M a maximal independent set of the bipartite
        // graph on XA ∪ YA.
        let xa = self.filter_candidates(&self.x, r_mask, l_mask);
        let ya = self.filter_candidates(&self.y, r_mask, l_mask);
        let xa_globals: Vec<u32> = xa.iter().map(|&i| self.x[i as usize]).collect();
        let ya_globals: Vec<u32> = ya.iter().map(|&j| self.y[j as usize]).collect();

        if xa.is_empty() && ya.is_empty() {
            if !s_l.is_empty() && self.consider(s_l.clone(), s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
            return Ok(None);
        }
        if ya.is_empty() {
            // Only M = XA is maximal: any further x is same-class.
            let a = merge_sorted(&s_l, &xa_globals);
            if self.consider(a, s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
            return Ok(None);
        }
        if xa.is_empty() {
            let a = merge_sorted(&s_l, &ya_globals);
            if self.consider(a, s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
            return Ok(None);
        }

        self.lg.localize(&self.g_xy, &xa, &ya);
        // M = XA is a maximal independent set iff every YA vertex has a
        // neighbor in XA; M = YA symmetrically (coverage of XA by rows).
        let mut covered = vec![false; xa.len()];
        let mut all_rows_nonempty = true;
        for j in 0..self.lg.num_right() as u32 {
            let row = self.lg.row(j);
            if row.is_empty() {
                all_rows_nonempty = false;
            }
            for &lid in row {
                covered[lid as usize] = true;
            }
        }
        if all_rows_nonempty {
            let a = merge_sorted(&s_l, &xa_globals);
            if self.consider(a, s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
        }
        if covered.iter().all(|&c| c) {
            let a = merge_sorted(&s_l, &ya_globals);
            if self.consider(a, s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
        }
        // Mixed maximal independent sets = maximal bicliques of the
        // bipartite complement with both sides non-empty.
        let mut b = GraphBuilder::new(xa.len() as u32, ya.len() as u32);
        for j in 0..self.lg.num_right() as u32 {
            let row = self.lg.row(j);
            let mut r = 0usize;
            for lid in 0..xa.len() as u32 {
                if r < row.len() && row[r] == lid {
                    r += 1;
                } else {
                    b.add_edge(lid, j).expect("local ids are dense");
                }
            }
        }
        let comp = b.build();
        if comp.num_edges() == 0 {
            return Ok(None);
        }
        let report = run_engine(&comp, algorithm, order, threads, control, observer)?;
        self.stats.inner_runs += 1;
        self.stats.inner_emitted += report.bicliques.len() as u64;
        self.fold_metrics(&report.metrics);
        for bic in &report.bicliques {
            let p: Vec<u32> = bic.left.iter().map(|&l| xa_globals[l as usize]).collect();
            let q: Vec<u32> = bic.right.iter().map(|&r| ya_globals[r as usize]).collect();
            let m = merge_sorted(&p, &q);
            let a = merge_sorted(&s_l, &m);
            if self.consider(a, s_r.clone(), max_bicliques) {
                return Ok(Some(StopReason::EmitBudget));
            }
        }
        if report.stop != StopReason::Completed {
            return Ok(Some(report.stop));
        }
        Ok(None)
    }

    /// Dedups, maximality-checks, and (maybe) emits one candidate.
    /// Returns `true` when the emission budget was just exhausted.
    fn consider(&mut self, a: Vec<u32>, b: Vec<u32>, max_bicliques: Option<u64>) -> bool {
        use mbe::BicliqueSink;
        debug_assert!(!a.is_empty() && !b.is_empty());
        self.stats.candidates += 1;
        let key = merge_sorted(&a, &b);
        let before = self.dedup.duplicates();
        let _ = self.dedup.emit(&[], &key);
        if self.dedup.duplicates() > before {
            self.stats.duplicates += 1;
            return false;
        }
        self.keys_log.push(key);
        if !self.is_maximal(&a, &b) {
            self.stats.nonmaximal += 1;
            return false;
        }
        self.emitted += 1;
        if self.keep {
            let (first, second) = if a[0] < b[0] { (a, b) } else { (b, a) };
            self.out.push(Biclique::new(first, second));
        }
        matches!(max_bicliques, Some(limit) if self.emitted >= limit)
    }

    /// `true` iff no vertex outside `a ∪ b` can join either side in the
    /// full general graph.
    fn is_maximal(&self, a: &[u32], b: &[u32]) -> bool {
        let g = self.g;
        // A vertex joining side `a` must be adjacent to all of `b`, so
        // it lives in N(b[0]); symmetrically for side `b`.
        for &v in g.nbr(b[0]) {
            if a.binary_search(&v).is_ok() || b.binary_search(&v).is_ok() {
                continue;
            }
            if b.iter().all(|&w| g.has_edge(v, w)) && a.iter().all(|&w| !g.has_edge(v, w)) {
                return false;
            }
        }
        for &v in g.nbr(a[0]) {
            if a.binary_search(&v).is_ok() || b.binary_search(&v).is_ok() {
                continue;
            }
            if a.iter().all(|&w| g.has_edge(v, w)) && b.iter().all(|&w| !g.has_edge(v, w)) {
                return false;
            }
        }
        true
    }
}

/// One inner bipartite run with the shared control plane.
fn run_engine(
    inst: &BipartiteGraph,
    algorithm: Algorithm,
    order: VertexOrder,
    threads: usize,
    control: &RunControl,
    observer: Option<&dyn Observer>,
) -> Result<mbe::Report, MbeError> {
    let mut run = Enumeration::new(inst)
        .algorithm(algorithm)
        .order(order)
        .threads(threads)
        .control(control.clone());
    if let Some(obs) = observer {
        run = run.observer(obs);
    }
    run.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_assignment_roundtrip() {
        // k = 3: code 0 = all excluded; code 1 = s0 left; code 2 = s0
        // right; code 5 = 2*1 + 1*3 → s0 right, s1 left.
        assert_eq!(decode_assignment(0, 3), (0, 0));
        assert_eq!(decode_assignment(1, 3), (0b001, 0));
        assert_eq!(decode_assignment(2, 3), (0, 0b001));
        assert_eq!(decode_assignment(5, 3), (0b010, 0b001));
        assert_eq!(decode_assignment(26, 3), (0, 0b111));
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(merge_sorted(&[1, 4, 9], &[2, 3, 10]), vec![1, 2, 3, 4, 9, 10]);
        assert_eq!(merge_sorted(&[], &[5]), vec![5]);
    }

    #[test]
    fn single_edge() {
        let g = GeneralGraph::from_edges(2, &[(0, 1)]).unwrap();
        let r = OctEnumeration::new(&g).collect().unwrap();
        assert!(r.is_complete());
        assert_eq!(r.bicliques.len(), 1);
        assert_eq!(r.bicliques[0].left, vec![0]);
        assert_eq!(r.bicliques[0].right, vec![1]);
    }

    #[test]
    fn triangle_has_three_edge_bicliques() {
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let r = OctEnumeration::new(&g).collect().unwrap();
        assert!(r.is_complete());
        assert_eq!(r.stats.oct_size, 1);
        // In a triangle every edge is a maximal induced biclique.
        assert_eq!(r.bicliques.len(), 3);
    }

    #[test]
    fn star_mixes_leaf_classes() {
        // K_{1,3}: bipartite; the unique maximal biclique is the star.
        let g = GeneralGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let r = OctEnumeration::new(&g).collect().unwrap();
        assert_eq!(r.bicliques.len(), 1);
        assert_eq!(r.bicliques[0].left, vec![0]);
        assert_eq!(r.bicliques[0].right, vec![1, 2, 3]);
    }

    #[test]
    fn five_cycle() {
        // C5: OCT size 1; the maximal induced bicliques of C5 are its
        // five paths of length 2 (center + two neighbors) — each P3
        // {center}-{two endpoints} — and no edges (every edge extends).
        let g = GeneralGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let r = OctEnumeration::new(&g).collect().unwrap();
        assert!(r.is_complete());
        assert_eq!(r.bicliques.len(), 5);
        for b in &r.bicliques {
            assert_eq!(b.left.len() + b.right.len(), 3);
        }
    }

    #[test]
    fn transversal_cap_enforced() {
        // K5 needs an OCT of size 3.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push((i, j));
            }
        }
        let g = GeneralGraph::from_edges(5, &edges).unwrap();
        match OctEnumeration::new(&g).max_oct(2).collect() {
            Err(OctError::TransversalTooLarge { size, limit: 2 }) => assert!(size >= 3),
            other => panic!("expected TransversalTooLarge, got {other:?}"),
        }
        assert!(OctEnumeration::new(&g).collect().unwrap().is_complete());
    }

    #[test]
    fn count_matches_collect() {
        let g = GeneralGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (0, 4)],
        )
        .unwrap();
        let collected = OctEnumeration::new(&g).collect().unwrap();
        let counted = OctEnumeration::new(&g).count().unwrap();
        assert_eq!(collected.stats.emitted, counted.stats.emitted);
        assert!(counted.bicliques.is_empty());
        assert_eq!(collected.bicliques.len() as u64, collected.stats.emitted);
    }
}
