//! Brute-force oracle for maximal induced bicliques, used by the
//! differential tests. Exponential in `|V|` — callers must keep `n`
//! small (the function rejects `n > 20`).

use bigraph::general::GeneralGraph;

/// All maximal induced bicliques of `g`, each returned as the sorted
/// vertex set `A ∪ B` (the union determines the pair: a complete
/// bipartite graph with two non-empty sides is connected and has a
/// unique bipartition). The result is sorted lexicographically.
///
/// # Panics
///
/// Panics if `g` has more than 20 vertices — the `2^n` subset sweep is
/// only meant for test-sized graphs.
pub fn maximal_induced_bicliques(g: &GeneralGraph) -> Vec<Vec<u32>> {
    let n = g.num_vertices();
    assert!(n <= 20, "reference oracle is exponential; n = {n} is too large");
    let mut out: Vec<Vec<u32>> = Vec::new();
    for set in 1u32..(1u32 << n) {
        if let Some((a, b)) = split_biclique(g, set) {
            if is_maximal(g, &a, &b) {
                let mut key: Vec<u32> = (0..n).filter(|&v| set >> v & 1 == 1).collect();
                key.sort_unstable();
                out.push(key);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Tries to split the vertex subset `set` into an induced biclique
/// `(A, B)` with both sides non-empty. Picks the lowest vertex `v0`,
/// puts its in-set neighbors in `B` and the rest (including `v0`) in
/// `A`, then verifies independence of both sides and completeness
/// between them — for a valid biclique this recovers the unique
/// bipartition.
fn split_biclique(g: &GeneralGraph, set: u32) -> Option<(Vec<u32>, Vec<u32>)> {
    let v0 = set.trailing_zeros();
    let mut a = vec![v0];
    let mut b = Vec::new();
    let mut rest = set & !(1 << v0);
    while rest != 0 {
        let v = rest.trailing_zeros();
        rest &= rest - 1;
        if g.has_edge(v0, v) {
            b.push(v);
        } else {
            a.push(v);
        }
    }
    if b.is_empty() {
        return None;
    }
    for (i, &u) in a.iter().enumerate() {
        for &w in &a[i + 1..] {
            if g.has_edge(u, w) {
                return None;
            }
        }
    }
    for (i, &u) in b.iter().enumerate() {
        for &w in &b[i + 1..] {
            if g.has_edge(u, w) {
                return None;
            }
        }
    }
    for &u in &a {
        for &w in &b {
            if !g.has_edge(u, w) {
                return None;
            }
        }
    }
    Some((a, b))
}

/// `true` iff no outside vertex extends either side of `(a, b)`.
fn is_maximal(g: &GeneralGraph, a: &[u32], b: &[u32]) -> bool {
    for v in 0..g.num_vertices() {
        if a.contains(&v) || b.contains(&v) {
            continue;
        }
        if b.iter().all(|&w| g.has_edge(v, w)) && a.iter().all(|&w| !g.has_edge(v, w)) {
            return false;
        }
        if a.iter().all(|&w| g.has_edge(v, w)) && b.iter().all(|&w| !g.has_edge(v, w)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_is_its_own_biclique() {
        let g = GeneralGraph::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(maximal_induced_bicliques(&g), vec![vec![0, 1]]);
    }

    #[test]
    fn triangle_edges_are_maximal() {
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(maximal_induced_bicliques(&g), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn path_three_center_pair() {
        // P3 0-1-2: the only maximal induced biclique is {1}-{0,2}.
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(maximal_induced_bicliques(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn independent_set_has_none() {
        let g = GeneralGraph::from_edges(3, &[]).unwrap();
        assert!(maximal_induced_bicliques(&g).is_empty());
    }
}
