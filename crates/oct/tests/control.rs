//! Stop/resume contract tests: budget, cancel, and deadline stops must
//! yield a checkpoint from which the resumed run completes the exact
//! remaining work — `stopped ∪ resumed == complete`, duplicate-free.

use bigraph::general::GeneralGraph;
use mbe::{RunControl, StopReason};
use oct::{OctCheckpoint, OctEnumeration, OctError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn test_graph(seed: u64) -> GeneralGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = gen::NearBipartiteConfig::new(10, 9, 40, 4);
    let (g, _) = gen::near_bipartite(&mut rng, &cfg);
    g
}

fn keys_of(report: &oct::OctReport) -> Vec<Vec<u32>> {
    report
        .bicliques
        .iter()
        .map(|b| {
            let mut k: Vec<u32> = b.left.iter().chain(b.right.iter()).copied().collect();
            k.sort_unstable();
            k
        })
        .collect()
}

#[test]
fn budget_stop_then_resume_matches_complete_run() {
    let g = test_graph(5);
    let complete = OctEnumeration::new(&g).collect().expect("complete run");
    assert!(complete.is_complete());
    let total = complete.stats.emitted;
    assert!(total > 4, "need a non-trivial instance, got {total}");

    // Stop at every possible budget point and resume to the end.
    for budget in 1..total {
        let first = OctEnumeration::new(&g).max_bicliques(budget).collect().expect("first run");
        assert_eq!(first.stop, StopReason::EmitBudget, "budget {budget}");
        assert_eq!(first.stats.emitted, budget);
        let ckpt = first.checkpoint.clone().expect("stopped run must carry a checkpoint");
        assert_eq!(ckpt.emitted, budget);

        let second = OctEnumeration::new(&g).resume(ckpt).collect().expect("resumed run");
        assert!(second.is_complete(), "budget {budget}");
        assert!(second.checkpoint.is_none(), "completed run must not carry a checkpoint");
        assert_eq!(second.stats.emitted, total, "cumulative emitted, budget {budget}");

        let mut union = keys_of(&first);
        union.extend(keys_of(&second));
        let before = union.len();
        union.sort();
        union.dedup();
        assert_eq!(union.len(), before, "duplicates across stop/resume, budget {budget}");
        let mut expect = keys_of(&complete);
        expect.sort();
        assert_eq!(union, expect, "budget {budget}");
    }
}

#[test]
fn chained_resume_through_many_stops() {
    let g = test_graph(6);
    let complete = OctEnumeration::new(&g).collect().expect("complete run");
    let total = complete.stats.emitted;
    assert!(total > 6);

    // Walk the whole enumeration two bicliques at a time.
    let mut all: Vec<Vec<u32>> = Vec::new();
    let mut ckpt: Option<OctCheckpoint> = None;
    loop {
        let mut run = OctEnumeration::new(&g).max_bicliques(2);
        if let Some(c) = ckpt.take() {
            run = run.resume(c);
        }
        let report = run.collect().expect("chained run");
        all.extend(keys_of(&report));
        match report.checkpoint {
            Some(c) => ckpt = Some(c),
            None => {
                assert!(report.is_complete());
                break;
            }
        }
    }
    let before = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), before, "duplicates across chained resumes");
    let mut expect = keys_of(&complete);
    expect.sort();
    assert_eq!(all, expect);
    assert_eq!(before as u64, total);
}

#[test]
fn cancel_before_start_stops_immediately() {
    let g = test_graph(7);
    let control = RunControl::new();
    control.cancel();
    let report = OctEnumeration::new(&g).control(control).collect().expect("cancelled run");
    assert_eq!(report.stop, StopReason::Cancelled);
    assert!(report.bicliques.is_empty());
    let ckpt = report.checkpoint.expect("cancelled run carries a checkpoint");
    assert_eq!(ckpt.emitted, 0);

    // Resuming from the immediate-cancel checkpoint yields the full run.
    let resumed = OctEnumeration::new(&g).resume(ckpt).collect().expect("resume");
    assert!(resumed.is_complete());
    let complete = OctEnumeration::new(&g).collect().expect("complete");
    assert_eq!(resumed.stats.emitted, complete.stats.emitted);
}

#[test]
fn expired_deadline_stops_with_checkpoint() {
    let g = test_graph(8);
    let report = OctEnumeration::new(&g).timeout(Duration::ZERO).collect().expect("deadline run");
    assert_eq!(report.stop, StopReason::Deadline);
    let ckpt = report.checkpoint.clone().expect("deadline stop carries a checkpoint");

    let complete = OctEnumeration::new(&g).collect().expect("complete");
    let resumed = OctEnumeration::new(&g).resume(ckpt).collect().expect("resume");
    assert!(resumed.is_complete());
    let mut union = keys_of(&report);
    union.extend(keys_of(&resumed));
    union.sort();
    union.dedup();
    let mut expect = keys_of(&complete);
    expect.sort();
    assert_eq!(union, expect);
}

#[test]
fn checkpoint_rejects_wrong_graph() {
    let g = test_graph(9);
    let other = test_graph(10);
    let stopped = OctEnumeration::new(&g).max_bicliques(1).collect().expect("run");
    let ckpt = stopped.checkpoint.expect("checkpoint");
    match OctEnumeration::new(&other).resume(ckpt).collect() {
        Err(OctError::Checkpoint(oct::OctCheckpointError::FingerprintMismatch)) => {}
        other => panic!("expected FingerprintMismatch, got {:?}", other.map(|r| r.stop)),
    }
}

#[test]
fn checkpoint_serialization_roundtrip_preserves_resume() {
    let g = test_graph(11);
    let complete = OctEnumeration::new(&g).collect().expect("complete");
    let total = complete.stats.emitted;
    let stopped = OctEnumeration::new(&g).max_bicliques(total / 2).collect().expect("stopped");
    let ckpt = stopped.checkpoint.clone().expect("checkpoint");

    // Through bytes, as the CLI does.
    let bytes = ckpt.to_bytes();
    let restored = OctCheckpoint::from_bytes(&bytes).expect("decode");
    let resumed = OctEnumeration::new(&g).resume(restored).collect().expect("resume");
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats.emitted, total);

    let mut union = keys_of(&stopped);
    union.extend(keys_of(&resumed));
    let before = union.len();
    union.sort();
    union.dedup();
    assert_eq!(union.len(), before);
    assert_eq!(union.len() as u64, total);
}

#[test]
fn invalid_configs_rejected() {
    let g = test_graph(12);
    assert!(matches!(
        OctEnumeration::new(&g).threads(0).collect(),
        Err(OctError::InvalidConfig(_))
    ));
    assert!(matches!(
        OctEnumeration::new(&g).max_oct(15).collect(),
        Err(OctError::InvalidConfig(_))
    ));
}
