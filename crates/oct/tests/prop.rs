//! Property tests for the decomposition heuristic.

use bigraph::general::GeneralGraph;
use gen::gnp_general;
use oct::decompose::{decompose, two_color, Class};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The heuristic's output is always a *valid* transversal: the
    /// classes certify a 2-coloring of the graph minus the OCT set.
    #[test]
    fn heuristic_output_is_a_valid_transversal(seed in 0u64..500, n in 1u32..40, pm in 0u32..100) {
        let p = pm as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_general(&mut rng, n, p);
        let d = decompose(&g);
        prop_assert!(d.is_valid(&g), "invalid decomposition for n={n} p={p} seed={seed}");
        // Every vertex is classified exactly once.
        prop_assert_eq!(d.class.len(), n as usize);
        let oct_count = d.class.iter().filter(|&&c| c == Class::Oct).count();
        prop_assert_eq!(oct_count, d.oct.len());
    }

    /// Bipartite inputs always decompose with an empty transversal.
    #[test]
    fn bipartite_inputs_need_no_transversal(seed in 0u64..200, nu in 1u32..20, nv in 1u32..20, m in 0usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = gen::er::gnm(&mut rng, nu, nv, m);
        let g = GeneralGraph::from_bipartite(&bg);
        prop_assert!(two_color(&g).is_some(), "bipartite graph must 2-color");
        let d = decompose(&g);
        prop_assert!(d.oct.is_empty(), "bipartite input produced |OCT| = {}", d.oct.len());
    }

    /// On odd-cycle-free graphs the two_color certificate is a real
    /// proper coloring.
    #[test]
    fn two_color_certificate_is_proper(seed in 0u64..200, nu in 1u32..16, nv in 1u32..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = gen::er::gnm(&mut rng, nu, nv, (nu * nv / 3) as usize);
        let g = GeneralGraph::from_bipartite(&bg);
        let color = two_color(&g).expect("bipartite");
        for (u, v) in g.edges() {
            prop_assert_ne!(color[u as usize], color[v as usize]);
        }
    }

    /// Graphs with odd cycles are never falsely certified bipartite.
    #[test]
    fn odd_cycles_are_detected(seed in 0u64..200, n in 3u32..20) {
        // A random graph plus a forced triangle on {0, 1, 2}.
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gnp_general(&mut rng, n, 0.2);
        let mut edges: Vec<(u32, u32)> = base.edges().collect();
        edges.extend_from_slice(&[(0, 1), (1, 2), (0, 2)]);
        let g = GeneralGraph::from_edges(n, &edges).expect("in range");
        prop_assert!(two_color(&g).is_none());
        let d = decompose(&g);
        prop_assert!(!d.oct.is_empty());
        prop_assert!(d.is_valid(&g));
    }
}
