//! Differential tests: the OCT driver must match the brute-force
//! oracle exactly on small random general graphs, serially and with
//! worker threads, and must match the direct bipartite engine when the
//! input happens to be bipartite.

use bigraph::general::GeneralGraph;
use gen::gnp_general;
use oct::reference::maximal_induced_bicliques;
use oct::OctEnumeration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sorted union keys from a driver run.
fn driver_keys(g: &GeneralGraph, threads: usize) -> Vec<Vec<u32>> {
    let report = OctEnumeration::new(g).threads(threads).max_oct(14).collect().expect("driver run");
    assert!(report.is_complete(), "run should complete");
    let mut keys: Vec<Vec<u32>> = report
        .bicliques
        .iter()
        .map(|b| {
            let mut k: Vec<u32> = b.left.iter().chain(b.right.iter()).copied().collect();
            k.sort_unstable();
            k
        })
        .collect();
    let before = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), before, "driver emitted duplicates");
    assert_eq!(report.stats.emitted, before as u64);
    keys
}

#[test]
fn matches_oracle_on_er_graphs_serial() {
    for n in [4u32, 6, 8, 10, 12, 14] {
        for (si, p) in [(0u64, 0.15), (1, 0.3), (2, 0.45), (3, 0.6)] {
            let mut rng = StdRng::seed_from_u64(n as u64 * 100 + si);
            let g = gnp_general(&mut rng, n, p);
            let expect = maximal_induced_bicliques(&g);
            let got = driver_keys(&g, 1);
            assert_eq!(got, expect, "n={n} seed={si} p={p}");
        }
    }
}

#[test]
fn matches_oracle_on_er_graphs_threaded() {
    for threads in [2usize, 4] {
        for (si, p) in [(10u64, 0.25), (11, 0.5)] {
            let mut rng = StdRng::seed_from_u64(777 + si);
            let g = gnp_general(&mut rng, 12, p);
            let expect = maximal_induced_bicliques(&g);
            let got = driver_keys(&g, threads);
            assert_eq!(got, expect, "threads={threads} seed={si}");
        }
    }
}

#[test]
fn matches_oracle_on_dense_small_graphs() {
    // Dense graphs push the transversal size up and exercise the
    // assignment pruning hard.
    for si in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(4242 + si);
        let g = gnp_general(&mut rng, 9, 0.75);
        let expect = maximal_induced_bicliques(&g);
        let got = driver_keys(&g, 1);
        assert_eq!(got, expect, "seed={si}");
    }
}

#[test]
fn matches_oracle_on_planted_instances() {
    for si in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(99 + si);
        let cfg = gen::NearBipartiteConfig::new(6, 5, 14, 3);
        let (g, _) = gen::near_bipartite(&mut rng, &cfg);
        let expect = maximal_induced_bicliques(&g);
        let got = driver_keys(&g, 1);
        assert_eq!(got, expect, "seed={si}");
    }
}

#[test]
fn bipartite_input_matches_direct_engine() {
    // Route a bipartite graph through the OCT path; it must agree with
    // the stock bipartite engine run on the same graph (modulo the
    // general-graph id mapping u -> u, v -> num_u + v).
    let mut rng = StdRng::seed_from_u64(31);
    let bg = gen::er::gnm(&mut rng, 9, 8, 30);
    let g = GeneralGraph::from_bipartite(&bg);

    let direct = mbe::Enumeration::new(&bg)
        .algorithm(mbe::Algorithm::Mbet)
        .collect()
        .expect("bipartite run");
    let shift = bg.num_u();
    let mut expect: Vec<Vec<u32>> = direct
        .bicliques
        .iter()
        .map(|b| {
            let mut k: Vec<u32> =
                b.left.iter().copied().chain(b.right.iter().map(|&v| v + shift)).collect();
            k.sort_unstable();
            k
        })
        .collect();
    expect.sort();

    let report = OctEnumeration::new(&g).collect().expect("oct run");
    assert_eq!(report.stats.oct_size, 0, "bipartite input must decompose with an empty OCT");
    let got = driver_keys(&g, 1);
    assert_eq!(got, expect);
}
