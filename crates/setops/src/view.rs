//! A unified view over the two set representations the enumeration
//! kernels work with: strictly increasing `u32` slices and packed
//! `u64` bitmap rows over a small dense universe.
//!
//! Every driver used to hand-pick among `intersect_into` /
//! `intersect_count` / `intersect_first` / `is_subset` on raw slices.
//! [`SetView`] closes that choice behind one operation set: the caller
//! holds a view of a neighborhood (however it is represented) and asks
//! for the operation it needs against a sorted probe slice; the view
//! dispatches to the merge/gallop kernels or to word probes.
//!
//! The probe operand is always a strictly increasing slice — in the
//! enumeration loops it is the current `L` set (or a derived candidate
//! list), which stays materialized as a sorted vector in every
//! algorithm. Outputs are strictly increasing slices too, so a bitmap
//! row and a sorted row of the same set are observably interchangeable
//! (property-tested below).

/// Which intersection kernels an enumeration run may use.
///
/// This is an execution hint: it never changes which bicliques are
/// produced or in which order, only how the set intersections inside
/// the hot loop are computed. The differential tests force the two
/// pure variants against each other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// Choose per node: bitmap rows where the local universe is small
    /// and the probe/row size ratio favors word probes, sorted slices
    /// (merge/gallop adaptive) elsewhere. The production default.
    #[default]
    Adaptive,
    /// Sorted-slice kernels only; bitmap rows are never built.
    SortedOnly,
    /// Bitmap rows whenever a local universe exists (local-graph rows
    /// are always packed); slices remain only where no dense universe
    /// is available (global adjacency).
    BitmapOnly,
}

/// A borrowed, read-only view of a vertex set in one of the two
/// kernel representations.
///
/// `Sorted` wraps a strictly increasing id slice. `Bits` wraps packed
/// 64-bit words over a dense local universe: bit `i` of word `i / 64`
/// is set iff local id `i` is a member; trailing bits of the last
/// word are zero.
#[derive(Clone, Copy, Debug)]
pub enum SetView<'a> {
    /// Strictly increasing ids (global or local — the view does not
    /// care, only that probes use the same id space).
    Sorted(&'a [u32]),
    /// Packed membership words over a dense local universe.
    Bits(&'a [u64]),
}

/// A strictly increasing probe whose last element is `len - 1` can
/// only be the identity range `[0..len)` — intersecting with it is a
/// prefix cut. Localized enumeration probes with the full left
/// universe at every root node, so this single compare converts the
/// hottest probe shape into a binary search.
#[inline]
fn is_identity_range(probe: &[u32]) -> bool {
    probe.last().is_some_and(|&m| m as usize == probe.len() - 1)
}

impl<'a> SetView<'a> {
    /// Membership test for one id.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        match *self {
            SetView::Sorted(s) => s.binary_search(&x).is_ok(),
            SetView::Bits(w) => {
                let word = (x >> 6) as usize;
                word < w.len() && w[word] >> (x & 63) & 1 == 1
            }
        }
    }

    /// `probe ⊆ self`. `probe` must be strictly increasing.
    ///
    /// Replaces the call-site pattern `is_subset(l_new, nbr)`.
    #[inline]
    pub fn contains_all(&self, probe: &[u32]) -> bool {
        match *self {
            SetView::Sorted(s) => crate::is_subset(probe, s),
            SetView::Bits(_) => probe.iter().all(|&x| self.contains(x)),
        }
    }

    /// `|self ∩ probe|` without materializing the intersection.
    #[inline]
    pub fn intersect_count(&self, probe: &[u32]) -> usize {
        match *self {
            SetView::Sorted(s) if is_identity_range(probe) => {
                s.partition_point(|&x| (x as usize) < probe.len())
            }
            SetView::Sorted(s) => crate::intersect_count(s, probe),
            SetView::Bits(_) => probe.iter().filter(|&&x| self.contains(x)).count(),
        }
    }

    /// First element of `probe` that is also in `self`, if any.
    ///
    /// For `Sorted` this is the plain two-pointer [`crate::intersect_first`]
    /// (identical early-exit behavior to the historical call sites).
    #[inline]
    pub fn intersect_first(&self, probe: &[u32]) -> Option<u32> {
        match *self {
            SetView::Sorted(s) => crate::intersect_first(s, probe),
            SetView::Bits(_) => probe.iter().copied().find(|&x| self.contains(x)),
        }
    }

    /// `self ∩ probe → out` (cleared first), strictly increasing.
    #[inline]
    pub fn intersect_into(&self, probe: &[u32], out: &mut Vec<u32>) {
        match *self {
            SetView::Sorted(s) if is_identity_range(probe) => {
                out.clear();
                let cut = s.partition_point(|&x| (x as usize) < probe.len());
                out.extend_from_slice(&s[..cut]);
            }
            SetView::Sorted(s) => crate::intersect_into(s, probe, out),
            SetView::Bits(_) => {
                out.clear();
                out.extend(probe.iter().copied().filter(|&x| self.contains(x)));
            }
        }
    }

    /// Ranks (positions) within `probe` of the elements of
    /// `self ∩ probe`, strictly increasing, into `out` (cleared first).
    ///
    /// The `SetView` form of [`crate::intersect_ranks`].
    #[inline]
    pub fn intersect_ranks(&self, probe: &[u32], out: &mut Vec<u32>) {
        match *self {
            SetView::Sorted(s) => crate::intersect_ranks(s, probe, out),
            SetView::Bits(_) => {
                out.clear();
                for (i, &x) in probe.iter().enumerate() {
                    if self.contains(x) {
                        out.push(i as u32);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Packs a sorted id set into bitmap words over universe `n`.
    fn pack(s: &[u32], n: u32) -> Vec<u64> {
        let mut words = vec![0u64; (n as usize).div_ceil(64)];
        for &x in s {
            words[(x >> 6) as usize] |= 1u64 << (x & 63);
        }
        words
    }

    fn sorted_set(max: u32) -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..max, 0..70)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn bits_and_sorted_views_agree(a in sorted_set(300), probe in sorted_set(300)) {
            let words = pack(&a, 300);
            let sv = SetView::Sorted(&a);
            let bv = SetView::Bits(&words);
            prop_assert_eq!(sv.contains_all(&probe), bv.contains_all(&probe));
            prop_assert_eq!(sv.intersect_count(&probe), bv.intersect_count(&probe));
            prop_assert_eq!(sv.intersect_first(&probe), bv.intersect_first(&probe));
            let (mut s_out, mut b_out) = (Vec::new(), Vec::new());
            sv.intersect_into(&probe, &mut s_out);
            bv.intersect_into(&probe, &mut b_out);
            prop_assert_eq!(&s_out, &b_out);
            prop_assert!(crate::is_strictly_increasing(&s_out));
            sv.intersect_ranks(&probe, &mut s_out);
            bv.intersect_ranks(&probe, &mut b_out);
            prop_assert_eq!(&s_out, &b_out);
        }

        #[test]
        fn identity_probes_agree_with_general_path(a in sorted_set(300), n in 0u32..300) {
            let probe: Vec<u32> = (0..n).collect();
            let want: Vec<u32> = a.iter().copied().filter(|&x| x < n).collect();
            let mut out = Vec::new();
            SetView::Sorted(&a).intersect_into(&probe, &mut out);
            prop_assert_eq!(&out, &want);
            prop_assert_eq!(SetView::Sorted(&a).intersect_count(&probe), want.len());
        }

        #[test]
        fn contains_matches_slice(a in sorted_set(300), x in 0u32..310) {
            let words = pack(&a, 300);
            prop_assert_eq!(SetView::Sorted(&a).contains(x), a.contains(&x));
            prop_assert_eq!(SetView::Bits(&words).contains(x), a.contains(&x));
        }
    }

    #[test]
    fn bits_out_of_universe_probe_is_absent() {
        let words = pack(&[1, 63], 64);
        let v = SetView::Bits(&words);
        assert!(v.contains(63));
        assert!(!v.contains(64), "past the packed words");
        assert!(!v.contains(1000));
        assert_eq!(v.intersect_count(&[1, 64, 1000]), 1);
    }

    #[test]
    fn kernel_default_is_adaptive() {
        assert_eq!(Kernel::default(), Kernel::Adaptive);
    }
}
