//! k-way set operations over sorted slices.
//!
//! `C(L) = ∩_{u∈L} N(u)` and `N²(v) = ∪_{u∈N(v)} N(u)` are the two
//! k-way operations at the heart of MBE. Both are implemented with
//! size-aware strategies: intersections start from the smallest input
//! and shrink monotonically (with early exit on empty), unions use a
//! pairwise fold for few inputs and a mark-free multiway merge when many
//! inputs would make repeated folding quadratic.

/// Intersection of all input slices into `out` (cleared first).
///
/// Starts from the smallest input (the result can never be larger) and
/// intersects in ascending size order, exiting as soon as the
/// accumulator empties. With `k` inputs of max length `d`, worst case is
/// `O(k·d)` but typical cost collapses with the first small input.
pub fn intersect_k_into(inputs: &[&[u32]], out: &mut Vec<u32>) {
    out.clear();
    let Some(&smallest) = inputs.iter().min_by_key(|s| s.len()) else {
        return; // empty intersection of zero sets is conventionally empty
    };
    out.extend_from_slice(smallest);
    let mut tmp = Vec::with_capacity(smallest.len());
    // Ascending size order tightens the accumulator fastest.
    let mut order: Vec<&[u32]> = inputs.to_vec();
    order.sort_by_key(|s| s.len());
    for s in order {
        if std::ptr::eq(s.as_ptr(), smallest.as_ptr()) && s.len() == smallest.len() {
            continue; // the seed itself
        }
        crate::intersect_into(out, s, &mut tmp);
        std::mem::swap(out, &mut tmp);
        if out.is_empty() {
            return;
        }
    }
}

/// Union of all input slices into `out` (cleared first).
///
/// Pairwise fold for up to 4 inputs; heap-free k-way cursor merge
/// beyond that (`O(total · k)` comparisons with tiny constants — the
/// cursor scan beats a binary heap for the `k ≤ 64` range MBE sees).
pub fn union_k_into(inputs: &[&[u32]], out: &mut Vec<u32>) {
    out.clear();
    match inputs.len() {
        0 => {}
        // Match arms guarantee the length. xtask-allow: index-literal
        1 => out.extend_from_slice(inputs[0]),
        2..=4 => {
            let mut tmp = Vec::new();
            // xtask-allow: index-literal
            out.extend_from_slice(inputs[0]);
            for s in &inputs[1..] {
                crate::union_into(out, s, &mut tmp);
                std::mem::swap(out, &mut tmp);
            }
        }
        _ => {
            let mut cursors = vec![0usize; inputs.len()];
            loop {
                // Smallest head across all cursors.
                let mut min: Option<u32> = None;
                for (s, &c) in inputs.iter().zip(&cursors) {
                    if c < s.len() {
                        min = Some(match min {
                            None => s[c],
                            Some(m) => m.min(s[c]),
                        });
                    }
                }
                let Some(m) = min else { break };
                out.push(m);
                for (s, c) in inputs.iter().zip(cursors.iter_mut()) {
                    if *c < s.len() && s[*c] == m {
                        *c += 1;
                    }
                }
            }
        }
    }
}

/// Size of the k-way intersection without materializing it.
pub fn intersect_k_count(inputs: &[&[u32]]) -> usize {
    let mut out = Vec::new();
    intersect_k_into(inputs, &mut out);
    out.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        let mut out = Vec::new();
        intersect_k_into(&[&[1, 2, 3], &[2, 3, 4], &[0, 2, 3, 9]], &mut out);
        assert_eq!(out, [2, 3]);
        intersect_k_into(&[], &mut out);
        assert!(out.is_empty());
        intersect_k_into(&[&[5, 7]], &mut out);
        assert_eq!(out, [5, 7]);
        intersect_k_into(&[&[1], &[2]], &mut out);
        assert!(out.is_empty());

        union_k_into(&[&[1, 5], &[2, 5], &[0]], &mut out);
        assert_eq!(out, [0, 1, 2, 5]);
        union_k_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn early_exit_on_empty_input() {
        let mut out = vec![9];
        intersect_k_into(&[&[1, 2], &[], &[1, 2]], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn many_way_union_uses_cursor_path() {
        let sets: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i, i + 10, i + 20]).collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let mut out = Vec::new();
        union_k_into(&refs, &mut out);
        let want: Vec<u32> = (0..30).collect();
        assert_eq!(out, want);
    }

    fn sets_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..60, 0..20)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            0..8,
        )
    }

    proptest! {
        #[test]
        fn k_way_matches_folds(sets in sets_strategy()) {
            let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let mut got = Vec::new();

            intersect_k_into(&refs, &mut got);
            let want_i: Vec<u32> = if sets.is_empty() {
                Vec::new()
            } else {
                sets[0]
                    .iter()
                    .copied()
                    .filter(|x| sets.iter().all(|s| s.contains(x)))
                    .collect()
            };
            prop_assert_eq!(&got, &want_i);
            prop_assert_eq!(intersect_k_count(&refs), want_i.len());

            union_k_into(&refs, &mut got);
            let mut want_u: Vec<u32> =
                sets.iter().flatten().copied().collect();
            want_u.sort_unstable();
            want_u.dedup();
            prop_assert_eq!(&got, &want_u);
            prop_assert!(crate::is_strictly_increasing(&got));
        }
    }
}
