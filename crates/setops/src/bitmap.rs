//! Dense fixed-universe bitsets for *local* neighborhoods.
//!
//! During enumeration the interesting sets are subsets of the current `L`,
//! whose size is bounded by `D(V)` (a few thousand at most on the benchmark
//! graphs, usually tens). Re-encoding local neighborhoods as ranks within
//! `L` lets all containment/equality tests run as word-wide bitwise ops —
//! the CPU analogue of the bitmap trick in the GPU follow-up literature.

/// A growable bitset over a small universe `0..len`.
///
/// Words are `u64`; trailing bits of the last word are kept zero so that
/// whole-word comparisons are valid (`eq`, `is_subset_of`, hashing).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap over a universe of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Universe size in bits.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Resets to the empty set, keeping the allocation; optionally resizes
    /// the universe. This is the workhorse-reuse entry point for hot loops.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        let need = len.div_ceil(64);
        self.words.truncate(need);
        self.words.iter_mut().for_each(|w| *w = 0);
        self.words.resize(need, 0);
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`. Panics in debug builds on universe mismatch.
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// `|self ∩ other|`.
    pub fn intersect_count(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects set bits as `u32` ranks into `out` (cleared first).
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.iter().map(|i| i as u32));
    }

    /// Raw words, for hashing/trie keys. Trailing bits are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a bitmap over universe `len` from a slice of ranks.
    pub fn from_ranks(len: usize, ranks: &[u32]) -> Self {
        let mut bm = Bitmap::new(len);
        for &r in ranks {
            bm.insert(r as usize);
        }
        bm
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over set bit positions, lowest first.
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut bm = Bitmap::new(130);
        assert!(bm.is_empty());
        bm.insert(0);
        bm.insert(63);
        bm.insert(64);
        bm.insert(129);
        assert!(bm.contains(0) && bm.contains(63) && bm.contains(64) && bm.contains(129));
        assert!(!bm.contains(1) && !bm.contains(128));
        assert_eq!(bm.count(), 4);
        bm.remove(63);
        assert!(!bm.contains(63));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn iter_order() {
        let bm = Bitmap::from_ranks(200, &[190, 0, 64, 65, 3]);
        let got: Vec<usize> = bm.iter().collect();
        assert_eq!(got, [0, 3, 64, 65, 190]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut bm = Bitmap::new(512);
        bm.insert(500);
        bm.reset(64);
        assert!(bm.is_empty());
        assert_eq!(bm.universe(), 64);
        bm.insert(63);
        assert!(bm.contains(63));
    }

    #[test]
    fn empty_universe() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter().count(), 0);
        assert_eq!(bm.count(), 0);
    }

    fn ranks(max: u32) -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..max, 0..40)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn ops_match_slice_kernels(a in ranks(150), b in ranks(150)) {
            let ba = Bitmap::from_ranks(150, &a);
            let bb = Bitmap::from_ranks(150, &b);

            prop_assert_eq!(
                ba.is_subset_of(&bb),
                crate::is_subset(&a, &b)
            );
            prop_assert_eq!(
                ba.intersect_count(&bb),
                crate::intersect_count(&a, &b)
            );

            let mut inter = ba.clone();
            inter.intersect_with(&bb);
            let mut want = Vec::new();
            crate::intersect_into(&a, &b, &mut want);
            let mut got = Vec::new();
            inter.collect_into(&mut got);
            prop_assert_eq!(&got, &want);

            let mut uni = ba.clone();
            uni.union_with(&bb);
            crate::union_into(&a, &b, &mut want);
            uni.collect_into(&mut got);
            prop_assert_eq!(&got, &want);

            let mut diff = ba.clone();
            diff.difference_with(&bb);
            crate::difference_into(&a, &b, &mut want);
            diff.collect_into(&mut got);
            prop_assert_eq!(&got, &want);
        }

        #[test]
        fn equality_is_set_equality(a in ranks(99), b in ranks(99)) {
            let ba = Bitmap::from_ranks(99, &a);
            let bb = Bitmap::from_ranks(99, &b);
            prop_assert_eq!(ba == bb, a == b);
        }
    }
}
