//! Galloping (exponential + binary search) kernels for size-skewed inputs.
//!
//! When `|small| ≪ |large|`, probing each element of `small` into `large`
//! with an exponential search costs `O(|small| · log(|large| / |small|))`,
//! which beats a linear merge once the ratio exceeds [`crate::GALLOP_RATIO`].
//! Successive probes resume from the previous position so a full pass over
//! `small` never rescans `large` from the start.

/// Smallest index `i ≥ from` with `hay[i] >= needle`, or `hay.len()`.
///
/// Exponential (doubling) search from `from`, then binary search within the
/// located window. This is the standard "gallop" primitive.
#[inline]
pub fn gallop_to(hay: &[u32], needle: u32, from: usize) -> usize {
    let mut lo = from;
    if lo >= hay.len() || hay[lo] >= needle {
        return lo;
    }
    // Invariant: hay[lo] < needle. Double the step until we overshoot.
    let mut step = 1;
    let mut hi = lo + 1;
    while hi < hay.len() && hay[hi] < needle {
        lo = hi;
        step *= 2;
        hi = lo.saturating_add(step).min(hay.len());
        if hi == hay.len() {
            break;
        }
    }
    // Binary search in (lo, hi].
    let mut left = lo + 1;
    let mut right = hi;
    while left < right {
        let mid = left + (right - left) / 2;
        if hay[mid] < needle {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    left
}

/// `small ∩ large → out`, galloping through `large`. `out` cleared first.
pub fn intersect_gallop_into(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    debug_assert!(small.len() <= large.len());
    out.clear();
    let mut pos = 0;
    for &x in small {
        pos = gallop_to(large, x, pos);
        if pos == large.len() {
            break;
        }
        if large[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
}

/// `|small ∩ large|`, galloping through `large`.
pub fn intersect_gallop_count(small: &[u32], large: &[u32]) -> usize {
    debug_assert!(small.len() <= large.len());
    let mut n = 0;
    let mut pos = 0;
    for &x in small {
        pos = gallop_to(large, x, pos);
        if pos == large.len() {
            break;
        }
        if large[pos] == x {
            n += 1;
            pos += 1;
        }
    }
    n
}

/// `small ⊆ large`, galloping through `large`; exits on the first miss.
pub fn is_subset_gallop(small: &[u32], large: &[u32]) -> bool {
    let mut pos = 0;
    for &x in small {
        pos = gallop_to(large, x, pos);
        if pos == large.len() || large[pos] != x {
            return false;
        }
        pos += 1;
    }
    true
}

/// Ranks within `l` of `a ∩ l` when `|a| ≪ |l|`: each element of `a`
/// gallops through `l` and its landing index is the rank.
pub fn intersect_ranks_gallop_probe(a: &[u32], l: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let mut pos = 0;
    for &x in a {
        pos = gallop_to(l, x, pos);
        if pos == l.len() {
            break;
        }
        if l[pos] == x {
            out.push(pos as u32);
            pos += 1;
        }
    }
}

/// Ranks within `l` of `a ∩ l` when `|l| ≪ |a|`: each element of `l`
/// gallops through `a`, and hits record their own index in `l`.
pub fn intersect_ranks_gallop_scan(a: &[u32], l: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let mut pos = 0;
    for (j, &y) in l.iter().enumerate() {
        pos = gallop_to(a, y, pos);
        if pos == a.len() {
            break;
        }
        if a[pos] == y {
            out.push(j as u32);
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gallop_to_positions() {
        let hay = [2u32, 4, 6, 8, 10];
        assert_eq!(gallop_to(&hay, 1, 0), 0);
        assert_eq!(gallop_to(&hay, 2, 0), 0);
        assert_eq!(gallop_to(&hay, 3, 0), 1);
        assert_eq!(gallop_to(&hay, 10, 0), 4);
        assert_eq!(gallop_to(&hay, 11, 0), 5);
        assert_eq!(gallop_to(&hay, 5, 3), 3, "never moves left of `from`");
        assert_eq!(gallop_to(&[], 5, 0), 0);
    }

    #[test]
    fn gallop_resumes_from_position() {
        let hay: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let mut pos = 0;
        for needle in [0u32, 30, 31, 2997] {
            pos = gallop_to(&hay, needle, pos);
            assert_eq!(hay[pos], needle.div_ceil(3) * 3);
        }
    }

    fn sorted_set(max: u32) -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..max, 0..80)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn gallop_intersect_matches_merge(
            a in sorted_set(2000), b in sorted_set(2000)
        ) {
            let (small, large) =
                if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            let mut got = Vec::new();
            intersect_gallop_into(small, large, &mut got);
            let mut want = Vec::new();
            crate::merge::intersect_merge_into(&a, &b, &mut want);
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(intersect_gallop_count(small, large), want.len());
        }

        #[test]
        fn gallop_subset_matches_merge(
            a in sorted_set(300), b in sorted_set(300)
        ) {
            prop_assert_eq!(
                is_subset_gallop(&a, &b),
                crate::merge::is_subset_merge(&a, &b)
            );
        }

        #[test]
        fn rank_kernels_match_merge(a in sorted_set(600), l in sorted_set(600)) {
            let mut want = Vec::new();
            crate::merge::intersect_ranks_merge(&a, &l, &mut want);
            let mut got = Vec::new();
            intersect_ranks_gallop_probe(&a, &l, &mut got);
            prop_assert_eq!(&got, &want);
            intersect_ranks_gallop_scan(&a, &l, &mut got);
            prop_assert_eq!(&got, &want);
        }

        #[test]
        fn gallop_to_is_lower_bound(
            hay in sorted_set(500), needle in 0u32..500, from in 0usize..80
        ) {
            let from = from.min(hay.len());
            let got = gallop_to(&hay, needle, from);
            // Lower bound within hay[from..].
            let want = from
                + hay[from..].partition_point(|&x| x < needle);
            prop_assert_eq!(got, want);
        }
    }
}
