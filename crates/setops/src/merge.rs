//! Linear two-pointer kernels over strictly increasing slices.
//!
//! These are the workhorses when both inputs have comparable lengths: each
//! element of each input is inspected at most once, so the cost is
//! `O(|a| + |b|)` with branch-predictable inner loops.

/// `a ∩ b → out`. `out` is cleared first and its capacity reused.
pub fn intersect_merge_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    debug_assert!(crate::is_strictly_increasing(a));
    debug_assert!(crate::is_strictly_increasing(b));
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if x > y {
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
}

/// `|a ∩ b|` without materializing the intersection.
pub fn intersect_merge_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if x > y {
            j += 1;
        } else {
            n += 1;
            i += 1;
            j += 1;
        }
    }
    n
}

/// `a ⊆ b` via a single forward scan of both slices.
pub fn is_subset_merge(a: &[u32], b: &[u32]) -> bool {
    let mut j = 0;
    'outer: for &x in a {
        while j < b.len() {
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// `a ∪ b → out`. `out` is cleared first.
pub fn union_merge_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    debug_assert!(crate::is_strictly_increasing(a));
    debug_assert!(crate::is_strictly_increasing(b));
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            out.push(x);
            i += 1;
        } else if x > y {
            out.push(y);
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Ranks (positions) within `l` of the elements of `a ∩ l`, strictly
/// increasing, into `out` (cleared first). Linear two-pointer scan.
pub fn intersect_ranks_merge(a: &[u32], l: &[u32], out: &mut Vec<u32>) {
    debug_assert!(crate::is_strictly_increasing(a));
    debug_assert!(crate::is_strictly_increasing(l));
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < l.len() {
        let (x, y) = (a[i], l[j]);
        if x < y {
            i += 1;
        } else if x > y {
            j += 1;
        } else {
            out.push(j as u32);
            i += 1;
            j += 1;
        }
    }
}

/// `a \ b → out`. `out` is cleared first.
pub fn difference_merge_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    debug_assert!(crate::is_strictly_increasing(a));
    debug_assert!(crate::is_strictly_increasing(b));
    out.clear();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            out.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..400, 0..60)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn intersect_matches_naive(a in sorted_set(), b in sorted_set()) {
            let mut out = Vec::new();
            intersect_merge_into(&a, &b, &mut out);
            let naive: Vec<u32> =
                a.iter().copied().filter(|x| b.contains(x)).collect();
            prop_assert_eq!(&out, &naive);
            prop_assert_eq!(intersect_merge_count(&a, &b), naive.len());
        }

        #[test]
        fn union_matches_naive(a in sorted_set(), b in sorted_set()) {
            let mut out = Vec::new();
            union_merge_into(&a, &b, &mut out);
            let mut naive: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
            naive.sort_unstable();
            naive.dedup();
            prop_assert_eq!(out, naive);
        }

        #[test]
        fn difference_matches_naive(a in sorted_set(), b in sorted_set()) {
            let mut out = Vec::new();
            difference_merge_into(&a, &b, &mut out);
            let naive: Vec<u32> =
                a.iter().copied().filter(|x| !b.contains(x)).collect();
            prop_assert_eq!(out, naive);
        }

        #[test]
        fn subset_matches_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().all(|x| b.contains(x));
            prop_assert_eq!(is_subset_merge(&a, &b), naive);
        }

        #[test]
        fn outputs_sorted(a in sorted_set(), b in sorted_set()) {
            let mut out = Vec::new();
            intersect_merge_into(&a, &b, &mut out);
            prop_assert!(crate::is_strictly_increasing(&out));
            union_merge_into(&a, &b, &mut out);
            prop_assert!(crate::is_strictly_increasing(&out));
            difference_merge_into(&a, &b, &mut out);
            prop_assert!(crate::is_strictly_increasing(&out));
        }
    }

    #[test]
    fn subset_of_self_and_empty() {
        assert!(is_subset_merge(&[], &[]));
        assert!(is_subset_merge(&[], &[3]));
        assert!(!is_subset_merge(&[3], &[]));
    }
}
