//! Set-operation kernels for maximal biclique enumeration.
//!
//! Every MBE algorithm in this workspace spends the bulk of its time
//! intersecting, unioning, and containment-testing *sorted* vertex-id
//! slices (adjacency lists and derived candidate sets). This crate provides
//! those kernels in three flavors:
//!
//! * [`merge`] — linear two-pointer kernels, optimal when the inputs have
//!   comparable lengths;
//! * [`gallop`] — galloping (exponential + binary search) kernels, optimal
//!   when one input is much shorter than the other;
//! * [`adaptive`](intersect_into) — dispatchers that pick between the two
//!   based on the length ratio, which is what the algorithms call.
//!
//! In addition, [`bitmap::Bitmap`] implements a dense fixed-universe bitset
//! used for *local* neighborhoods (sets of ranks within the current `L`),
//! where the universe is small (`|L| ≤ D(V)`) and bitwise ops beat merges.
//!
//! All slice kernels require strictly increasing input slices and produce
//! strictly increasing outputs; this invariant is `debug_assert`ed and
//! exercised by property tests.

#![forbid(unsafe_code)]

pub mod bitmap;
pub mod gallop;
pub mod merge;
pub mod multi;
pub mod view;

pub use bitmap::Bitmap;
pub use view::{Kernel, SetView};

/// Length ratio above which the adaptive kernels switch from linear merging
/// to galloping. 32 is the conventional crossover (one binary-search probe
/// costs about log2(ratio) comparisons, which beats scanning once the ratio
/// exceeds roughly the word width).
pub const GALLOP_RATIO: usize = 32;

#[inline]
fn ratio_exceeds(small: usize, large: usize) -> bool {
    // `small * GALLOP_RATIO` could overflow for pathological inputs; use a
    // division-free check that saturates instead.
    large / GALLOP_RATIO.max(1) > small
}

/// Intersect two strictly increasing slices into `out` (cleared first).
///
/// Dispatches between merge and gallop based on the length ratio.
///
/// ```
/// let mut out = Vec::new();
/// setops::intersect_into(&[1, 3, 5, 7], &[3, 4, 5, 6], &mut out);
/// assert_eq!(out, [3, 5]);
/// ```
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if ratio_exceeds(small.len(), large.len()) {
        gallop::intersect_gallop_into(small, large, out);
    } else {
        merge::intersect_merge_into(a, b, out);
    }
}

/// Size of the intersection of two strictly increasing slices, without
/// materializing it.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if ratio_exceeds(small.len(), large.len()) {
        gallop::intersect_gallop_count(small, large)
    } else {
        merge::intersect_merge_count(a, b)
    }
}

/// `true` iff every element of `a` occurs in `b`. Both strictly increasing.
pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    if ratio_exceeds(a.len(), b.len()) {
        gallop::is_subset_gallop(a, b)
    } else {
        merge::is_subset_merge(a, b)
    }
}

/// Union of two strictly increasing slices into `out` (cleared first).
pub fn union_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    merge::union_merge_into(a, b, out);
}

/// `a \ b` into `out` (cleared first). Both strictly increasing.
pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    merge::difference_merge_into(a, b, out);
}

/// Ranks (positions) within `l` of the elements of `a ∩ l`, strictly
/// increasing, into `out` (cleared first).
///
/// Dispatches between the linear two-pointer scan and galloping from
/// either side based on the length ratio — the same policy as
/// [`intersect_into`], extended to rank output. This is the kernel
/// behind candidate keying and local-graph row construction, where one
/// operand (a full adjacency list) is often far longer than the other
/// (the current `L`).
pub fn intersect_ranks(a: &[u32], l: &[u32], out: &mut Vec<u32>) {
    if ratio_exceeds(a.len(), l.len()) {
        // `a` is much shorter: probe its elements into `l`.
        gallop::intersect_ranks_gallop_probe(a, l, out);
    } else if ratio_exceeds(l.len(), a.len()) {
        // `l` is much shorter: scan it, galloping through `a`.
        gallop::intersect_ranks_gallop_scan(a, l, out);
    } else {
        merge::intersect_ranks_merge(a, l, out);
    }
}

/// `true` iff the two strictly increasing slices share no element.
pub fn is_disjoint(a: &[u32], b: &[u32]) -> bool {
    intersect_first(a, b).is_none()
}

/// First common element of two strictly increasing slices, if any.
///
/// Used for early-exit non-emptiness tests (`L' ∩ N(q) ≠ ∅`).
pub fn intersect_first(a: &[u32], b: &[u32]) -> Option<u32> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

/// Checks the strictly-increasing invariant. Exposed so downstream crates
/// can assert it on loaded data; cheap enough for debug assertions.
pub fn is_strictly_increasing(s: &[u32]) -> bool {
    // windows(2) guarantees both elements. xtask-allow: index-literal
    s.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let mut out = Vec::new();
        intersect_into(&[1, 2, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, [2, 3]);
        intersect_into(&[], &[2, 3, 4], &mut out);
        assert!(out.is_empty());
        intersect_into(&[5], &[2, 3, 4], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_dispatches_to_gallop() {
        // ratio > 32 forces the gallop path.
        let big: Vec<u32> = (0..10_000).collect();
        let small = [3u32, 9_999];
        let mut out = Vec::new();
        intersect_into(&small, &big, &mut out);
        assert_eq!(out, [3, 9_999]);
        assert_eq!(intersect_count(&small, &big), 2);
    }

    #[test]
    fn subset_tests() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[1, 2], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
        let big: Vec<u32> = (0..10_000).step_by(2).collect();
        assert!(is_subset(&[0, 4_000], &big));
        assert!(!is_subset(&[0, 4_001], &big));
    }

    #[test]
    fn union_difference() {
        let mut out = Vec::new();
        union_into(&[1, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        difference_into(&[1, 2, 3, 4], &[2, 4], &mut out);
        assert_eq!(out, [1, 3]);
    }

    #[test]
    fn first_and_disjoint() {
        assert_eq!(intersect_first(&[1, 5, 9], &[2, 5]), Some(5));
        assert_eq!(intersect_first(&[1, 9], &[2, 5]), None);
        assert!(is_disjoint(&[1, 9], &[2, 5]));
        assert!(!is_disjoint(&[1, 9], &[9]));
    }

    #[test]
    fn intersect_ranks_all_dispatch_paths() {
        let l = [2u32, 5, 9, 12];
        let mut out = Vec::new();
        // Comparable lengths: merge path.
        intersect_ranks(&[5, 9, 40], &l, &mut out);
        assert_eq!(out, [1, 2]);
        // `a` ≫ `l`: scan `l` galloping through `a`.
        let big: Vec<u32> = (0..10_000).collect();
        intersect_ranks(&big, &l, &mut out);
        assert_eq!(out, [0, 1, 2, 3]);
        // `a` ≪ `l`: probe `a` into `l`.
        intersect_ranks(&[3, 9_998], &big, &mut out);
        assert_eq!(out, [3, 9_998]);
        intersect_ranks(&[], &l, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn strictly_increasing_checker() {
        assert!(is_strictly_increasing(&[]));
        assert!(is_strictly_increasing(&[7]));
        assert!(is_strictly_increasing(&[1, 2, 9]));
        assert!(!is_strictly_increasing(&[1, 1]));
        assert!(!is_strictly_increasing(&[2, 1]));
    }
}
