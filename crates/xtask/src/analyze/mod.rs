//! `cargo run -p xtask -- analyze`: token-level, cross-file static
//! analysis over the workspace.
//!
//! Where `check` pattern-matches single lines, `analyze` works on the
//! [`crate::lexer`] token stream and the [`crate::index`] item index,
//! so its rules can see across lines (guard scopes, loop bodies) and
//! across files (the call graph, the protocol tables). Four passes run
//! today:
//!
//! * [`lock_order`] — builds the inter-lock acquisition graph for the
//!   serve crate and the parallel driver and reports cycles as
//!   potential deadlocks (`lock-order`);
//! * [`hot_alloc`] — flags allocation inside loops and panicking ops
//!   in the hot-path files (`hot-alloc-loop`, plus the `unwrap` /
//!   `expect` / `panic` / `index-literal` ids inherited from the
//!   retired `check` regex rules, so existing `xtask-allow` escapes
//!   keep working);
//! * [`protocol`] — cross-checks the serve opcode and errcode tables
//!   against the codec match arms and the DESIGN §8b listing
//!   (`protocol-opcode`, `protocol-errcode`);
//! * [`observer`] — verifies every `task_start` notify site pairs with
//!   a `task_finish` on all exit paths, including the `catch_unwind`
//!   panic path (`observer-balance`).
//!
//! Findings are reported human-readable and, with `--json PATH`, as a
//! machine-readable report. CI runs in baseline-diff mode: the
//! committed `xtask-analyze-baseline.json` records accepted findings
//! (keyed on rule + file + message, so line drift does not churn it)
//! and the gate fails only on findings *not* in the baseline.
//! `--update-baseline` rewrites the file after intentional changes.

pub mod hot_alloc;
pub mod lock_order;
pub mod observer;
pub mod protocol;

use std::collections::HashMap;
use std::path::Path;

use crate::index::FileIndex;

/// One diagnostic produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (documented in README "Static analysis &
    /// invariants").
    pub rule: &'static str,
    /// Gate tier; see [`Severity`].
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the anchoring token.
    pub line: u32,
    /// 1-based column (in characters) of the anchoring token.
    pub col: u32,
    /// Human-readable description. Part of the baseline key: keep it
    /// deterministic and free of volatile detail like line numbers.
    pub message: String,
}

/// Finding severity. Every current rule gates (`error`); the report
/// schema keeps the field so advisory (`warn`) tiers can be added
/// without a format break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the baseline-diff gate when new.
    Error,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
        }
    }
}

impl Finding {
    /// Builds a finding anchored at code token `ci` of `idx`.
    pub fn at(
        rule: &'static str,
        severity: Severity,
        idx: &FileIndex<'_>,
        ci: usize,
        message: String,
    ) -> Finding {
        let (line, col) = idx.pos(ci);
        Finding { rule, severity, file: idx.rel.clone(), line, col, message }
    }

    /// The baseline identity: line/col excluded so unrelated edits
    /// above a finding do not invalidate the baseline entry.
    fn key(&self) -> (String, String, String) {
        (self.rule.to_string(), self.file.clone(), self.message.clone())
    }
}

/// Every indexed file of the workspace, plus cross-file lookups.
pub struct Workspace<'a> {
    /// Indexed files, in path order.
    pub files: Vec<FileIndex<'a>>,
}

impl<'a> Workspace<'a> {
    /// Indexes `(rel path, source)` pairs.
    pub fn build(sources: &'a [(String, String)]) -> Workspace<'a> {
        Workspace { files: sources.iter().map(|(rel, src)| FileIndex::build(rel, src)).collect() }
    }

    /// The index for one workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&FileIndex<'a>> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// A workspace-wide call graph over non-test `fn` items, with calls
/// resolved by bare name (conservative: a name defined in several
/// files resolves to all of them).
pub struct CallGraph {
    /// `(file index, fn index)` per node.
    pub nodes: Vec<(usize, usize)>,
    /// Adjacency: callee node ids per node.
    pub calls: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over every non-test fn with a body.
    pub fn build(ws: &Workspace<'_>) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push(nodes.len());
                nodes.push((fi, gi));
            }
        }
        let mut calls = vec![Vec::new(); nodes.len()];
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let file = &ws.files[fi];
            let (s, e) = file.fns[gi].body.expect("nodes have bodies");
            for (name, _) in file.calls_in(s, e) {
                if let Some(tgts) = by_name.get(name) {
                    for &t in tgts {
                        if !calls[id].contains(&t) {
                            calls[id].push(t);
                        }
                    }
                }
            }
        }
        CallGraph { nodes, calls, by_name }
    }

    /// Node ids whose fn has `name`.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` for every node reachable from any fn named in `entries`
    /// (following call edges transitively, entries included).
    pub fn reachable_from(&self, entries: &[&str]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> =
            entries.iter().flat_map(|n| self.by_name(n).iter().copied()).collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            stack.extend(self.calls[id].iter().copied());
        }
        seen
    }
}

/// Runs the full analysis over in-memory sources. Pure on its inputs
/// so the self-tests can feed synthetic workspaces.
pub fn run_passes(sources: &[(String, String)], design: &str) -> Vec<Finding> {
    let ws = Workspace::build(sources);
    let graph = CallGraph::build(&ws);
    let mut findings = Vec::new();
    findings.extend(lock_order::run(&ws, &graph));
    findings.extend(hot_alloc::run(&ws, &graph));
    findings.extend(protocol::run(&ws, design));
    findings.extend(observer::run(&ws));
    // Apply the shared `xtask-allow` escape hatch, then order
    // deterministically for stable reports and baselines.
    findings.retain(|f| !ws.file(&f.file).is_some_and(|idx| idx.allowed(f.line, f.rule)));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message))
    });
    findings
}

/// The `analyze` subcommand. `args` are the CLI words after `analyze`.
pub fn run(root: &Path, args: &[String]) -> ! {
    let mut update_baseline = false;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--update-baseline" => update_baseline = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_out = Some(p.clone()),
                    None => {
                        eprintln!("xtask analyze: --json requires an output path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("xtask analyze: unknown flag {other}");
                eprintln!("usage: cargo run -p xtask -- analyze [--update-baseline] [--json OUT]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let files = crate::collect_rs_files(root);
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        sources.push((rel, content));
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let findings = run_passes(&sources, &design);

    let baseline_path = root.join("xtask-analyze-baseline.json");
    if update_baseline {
        write_report(&baseline_path, &findings);
        println!(
            "xtask analyze: baseline updated ({} finding(s) accepted into {})",
            findings.len(),
            baseline_path.display()
        );
        std::process::exit(0);
    }

    if let Some(path) = &json_out {
        write_report(Path::new(path), &findings);
    }

    // Baseline-diff: a finding fails the gate only when its key has
    // more occurrences than the baseline grants (multiset semantics).
    let baseline = load_baseline(&baseline_path);
    let mut budget = baseline.clone();
    let mut fresh = Vec::new();
    let mut baselined = 0usize;
    for f in &findings {
        let n = budget.entry(f.key()).or_insert(0);
        if *n > 0 {
            *n -= 1;
            baselined += 1;
        } else {
            fresh.push(f);
        }
    }
    let stale: usize = budget.values().copied().sum();

    for f in &fresh {
        println!(
            "{}:{}:{}: {} [{}] {}",
            f.file,
            f.line,
            f.col,
            f.severity.label(),
            f.rule,
            f.message
        );
    }
    let gate: Vec<&&Finding> = fresh.iter().filter(|f| f.severity == Severity::Error).collect();
    println!(
        "xtask analyze: {} finding(s) ({} new, {} baselined, {} stale baseline entr{}) in {} files",
        findings.len(),
        fresh.len(),
        baselined,
        stale,
        if stale == 1 { "y" } else { "ies" },
        sources.len()
    );
    if stale > 0 {
        println!(
            "xtask analyze: note: run with --update-baseline to drop resolved baseline entries"
        );
    }
    std::process::exit(if gate.is_empty() { 0 } else { 1 });
}

/// Serializes findings as the committed report/baseline format: one
/// finding object per line so diffs and the parser stay line-based.
pub fn render_report(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!(
            "\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}",
            json_str(f.rule),
            json_str(f.severity.label()),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.message)
        ));
        s.push('}');
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn write_report(path: &Path, findings: &[Finding]) {
    if let Err(e) = std::fs::write(path, render_report(findings)) {
        eprintln!("xtask analyze: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}

/// A JSON string literal for `s` (escapes `"`, `\`, and control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Loads baseline keys as a multiset. A missing file is an empty
/// baseline; an unparseable line is a hard error (a silently skipped
/// entry would surface as a phantom "new" finding in CI).
fn load_baseline(path: &Path) -> HashMap<(String, String, String), usize> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let mut out = HashMap::new();
    for (i, line) in content.lines().enumerate() {
        let t = line.trim().trim_end_matches(',');
        if !t.starts_with('{') || !t.contains("\"rule\"") {
            continue;
        }
        match parse_finding_line(t) {
            Some(key) => *out.entry(key).or_insert(0) += 1,
            None => {
                eprintln!(
                    "xtask analyze: malformed baseline entry at {}:{}",
                    path.display(),
                    i + 1
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Extracts `(rule, file, message)` from one serialized finding line.
fn parse_finding_line(line: &str) -> Option<(String, String, String)> {
    Some((json_field(line, "rule")?, json_field(line, "file")?, json_field(line, "message")?))
}

/// The string value of `"key":"…"` in `line`, unescaped.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds owned sources for synthetic-workspace tests.
    pub(crate) fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect()
    }

    #[test]
    fn report_round_trips_through_the_baseline_parser() {
        let findings = vec![
            Finding {
                rule: "lock-order",
                severity: Severity::Error,
                file: "crates/serve/src/server.rs".into(),
                line: 10,
                col: 5,
                message: "held `a` while acquiring `b` — \"quoted\"\\path".into(),
            },
            Finding {
                rule: "hot-alloc-loop",
                severity: Severity::Error,
                file: "crates/setops/src/lib.rs".into(),
                line: 3,
                col: 1,
                message: "tab\there".into(),
            },
        ];
        let report = render_report(&findings);
        let mut keys = HashMap::new();
        for line in report.lines() {
            let t = line.trim().trim_end_matches(',');
            if t.starts_with('{') && t.contains("\"rule\"") {
                *keys.entry(parse_finding_line(t).expect("parses")).or_insert(0usize) += 1;
            }
        }
        assert_eq!(keys.len(), 2);
        for f in &findings {
            assert_eq!(keys.get(&f.key()), Some(&1), "{:?}", f.key());
        }
    }

    #[test]
    fn empty_report_is_stable() {
        assert_eq!(render_report(&[]), "{\n  \"version\": 1,\n  \"findings\": []\n}\n");
    }

    #[test]
    fn call_graph_resolves_by_name_and_reachability() {
        let srcs = sources(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); }\nfn idle() {}\n"),
            ("crates/b/src/lib.rs", "fn helper() { leaf(); }\nfn leaf() {}\n"),
        ]);
        let ws = Workspace::build(&srcs);
        let g = CallGraph::build(&ws);
        let seen = g.reachable_from(&["entry"]);
        let name = |id: usize| {
            let (fi, gi) = g.nodes[id];
            ws.files[fi].fns[gi].name.clone()
        };
        let reached: Vec<String> = (0..g.nodes.len()).filter(|&i| seen[i]).map(name).collect();
        assert!(reached.contains(&"entry".to_string()));
        assert!(reached.contains(&"helper".to_string()));
        assert!(reached.contains(&"leaf".to_string()));
        assert!(!reached.contains(&"idle".to_string()));
    }

    #[test]
    fn test_fns_stay_out_of_the_graph() {
        let srcs = sources(&[(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn live() { panic!(); }\n}\n",
        )]);
        let ws = Workspace::build(&srcs);
        let g = CallGraph::build(&ws);
        assert_eq!(g.by_name("live").len(), 1);
    }

    #[test]
    fn allows_suppress_findings_in_run_passes() {
        // A hot-path unwrap with and without the legacy escape.
        let flagged = sources(&[(
            "crates/setops/src/lib.rs",
            "fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n",
        )]);
        assert!(run_passes(&flagged, "").iter().any(|f| f.rule == "unwrap"));
        let escaped = sources(&[(
            "crates/setops/src/lib.rs",
            "fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap() // xtask-allow: unwrap\n}\n",
        )]);
        assert!(!run_passes(&escaped, "").iter().any(|f| f.rule == "unwrap"));
    }
}
