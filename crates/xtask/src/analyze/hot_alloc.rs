//! Hot-path allocation and panic-reachability analysis.
//!
//! The hot-path files ([`crate::HOT_PATHS`]) run inside every
//! enumeration task or request dispatch; a per-iteration allocation or
//! a stray panic there is a real throughput or availability bug. Two
//! rule families run here:
//!
//! * **`hot-alloc-loop`** — allocation inside a loop body: container
//!   constructors (`Vec::new`, `String::new`, `HashMap::new`, …),
//!   allocating macros (`vec!`, `format!`), owning conversions
//!   (`.to_string()`, `.to_owned()`, `.to_vec()`), `.clone()` (a
//!   heuristic: the lexer cannot prove `Copy`, so justified clones
//!   carry an `xtask-allow`), and `.push(…)` onto a vec that was
//!   created un-sized (`let v = Vec::new()`) in the same function —
//!   the remedy is hoisting or `with_capacity`.
//! * **`unwrap` / `expect` / `panic` / `index-literal`** — the
//!   panic-family rules that used to live in `check` as per-line regex
//!   scans, now token-based (no more false hits inside strings or
//!   comments). The rule ids are unchanged so every existing
//!   `xtask-allow` escape keeps working. When the containing function
//!   is reachable from a driver entry point over the workspace call
//!   graph, the diagnostic says so — those are the panics that abort a
//!   worker mid-enumeration.

use super::{CallGraph, Finding, Severity, Workspace};
use crate::index::FileIndex;

/// Functions a panic escapes *from* into a worker or connection
/// thread: the drivers' task loops and the serve dispatch path.
const DRIVER_ENTRIES: &[&str] = &[
    "par_run",
    "worker_loop",
    "run_all",
    "run_all_capturing",
    "run_frontier",
    "run_task",
    "run_node",
    "handle_conn",
];

/// Container types whose `::new()` / `::with_capacity()` /
/// `::default()` allocate (or will on first push).
const CONTAINERS: &[&str] =
    &["Vec", "VecDeque", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box"];

/// Owning conversion methods that allocate a fresh buffer.
const OWNING_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "clone"];

/// Runs both rule families over the hot-path files.
pub fn run(ws: &Workspace<'_>, graph: &CallGraph) -> Vec<Finding> {
    let reachable = graph.reachable_from(DRIVER_ENTRIES);
    let mut out = Vec::new();
    for (fi, idx) in ws.files.iter().enumerate() {
        if !crate::HOT_PATHS.iter().any(|p| idx.rel.starts_with(p)) {
            continue;
        }
        for (gi, f) in idx.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some((body_s, body_e)) = f.body else { continue };
            let node = graph.nodes.iter().position(|&(nfi, ngi)| nfi == fi && ngi == gi);
            let fn_reachable = node.is_some_and(|n| reachable[n]);
            let loops = loop_ranges(idx, body_s, body_e);
            let unsized_locals = unsized_vec_locals(idx, body_s, body_e);
            for ci in body_s..=body_e {
                scan_token(idx, ci, &loops, &unsized_locals, fn_reachable, &mut out);
            }
        }
    }
    out
}

/// Applies every rule to the code token at `ci`.
fn scan_token(
    idx: &FileIndex<'_>,
    ci: usize,
    loops: &[(usize, usize)],
    unsized_locals: &[&str],
    fn_reachable: bool,
    out: &mut Vec<Finding>,
) {
    let t = idx.text(ci);
    let in_loop = loops.iter().any(|&(s, e)| ci > s && ci < e);
    let next_is =
        |off: usize, what: &str| idx.code.get(ci + off).is_some_and(|_| idx.text(ci + off) == what);
    let prev_is = |what: &str| ci > 0 && idx.text(ci - 1) == what;

    // Panic family (legacy `check` rule ids).
    let reach = if fn_reachable { "; reachable from a driver entry point" } else { "" };
    if t == "unwrap" && prev_is(".") && next_is(1, "(") {
        out.push(Finding::at(
            "unwrap",
            Severity::Error,
            idx,
            ci,
            format!("no .unwrap() in hot-path modules{reach}"),
        ));
    }
    if t == "expect" && prev_is(".") && next_is(1, "(") {
        out.push(Finding::at(
            "expect",
            Severity::Error,
            idx,
            ci,
            format!("no .expect() in hot-path modules{reach}"),
        ));
    }
    if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented") && next_is(1, "!") {
        out.push(Finding::at(
            "panic",
            Severity::Error,
            idx,
            ci,
            format!("no {t}! in hot-path modules{reach}"),
        ));
    }
    if t == "["
        && ci > 0
        && indexes_value(idx.text(ci - 1))
        && idx.code.get(ci + 2).is_some()
        && idx.text(ci + 1).bytes().all(|b| b.is_ascii_digit())
        && !idx.text(ci + 1).is_empty()
        && idx.text(ci + 2) == "]"
    {
        out.push(Finding::at(
            "index-literal",
            Severity::Error,
            idx,
            ci,
            "no indexing by integer literal in hot-path modules".to_string(),
        ));
    }

    // Allocation in loops.
    if !in_loop {
        return;
    }
    if CONTAINERS.contains(&t)
        && next_is(1, "::")
        && idx
            .code
            .get(ci + 2)
            .is_some_and(|_| matches!(idx.text(ci + 2), "new" | "with_capacity" | "default"))
        && next_is(3, "(")
        // `return Vec::new()` hands back an empty container — that
        // never allocates, and there is nothing to hoist.
        && !prev_is("return")
    {
        out.push(Finding::at(
            "hot-alloc-loop",
            Severity::Error,
            idx,
            ci,
            format!(
                "`{t}::{}()` allocates every iteration of a hot loop; hoist it (or reuse a \
                 cleared buffer)",
                idx.text(ci + 2)
            ),
        ));
    }
    if matches!(t, "vec" | "format") && next_is(1, "!") {
        out.push(Finding::at(
            "hot-alloc-loop",
            Severity::Error,
            idx,
            ci,
            format!("`{t}!` allocates every iteration of a hot loop; hoist or pre-render it"),
        ));
    }
    if OWNING_METHODS.contains(&t) && prev_is(".") && next_is(1, "(") {
        let detail = if t == "clone" {
            "clones its receiver every iteration of a hot loop (non-`Copy` heuristic); \
             borrow or hoist it"
        } else {
            "allocates an owned copy every iteration of a hot loop; borrow or hoist it"
        };
        out.push(Finding::at(
            "hot-alloc-loop",
            Severity::Error,
            idx,
            ci,
            format!("`.{t}()` {detail}"),
        ));
    }
    if t == "push" && prev_is(".") && next_is(1, "(") && ci >= 2 {
        let recv = idx.text(ci - 2);
        if unsized_locals.contains(&recv) {
            out.push(Finding::at(
                "hot-alloc-loop",
                Severity::Error,
                idx,
                ci,
                format!(
                    "`{recv}.push(…)` grows a container created without a capacity in this \
                     function; pre-size it with `with_capacity` (or `reserve`)"
                ),
            ));
        }
    }
}

/// `true` when `prev` (the token before `[`) is a value expression a
/// subscript applies to — mirrors the retired `check` heuristic.
fn indexes_value(prev: &str) -> bool {
    prev == ")"
        || prev == "]"
        || prev.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// `{ … }` extents of every `for` / `while` / `loop` body inside the
/// fn body range. `for<'a>` higher-ranked bounds are not loops.
fn loop_ranges(idx: &FileIndex<'_>, body_s: usize, body_e: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for ci in body_s..=body_e {
        if !matches!(idx.text(ci), "for" | "while" | "loop") {
            continue;
        }
        if idx.code.get(ci + 1).is_some_and(|_| idx.text(ci + 1) == "<") {
            continue; // `for<'a> Fn(…)` bound
        }
        // The body `{` is the first one at bracket/paren depth 0 after
        // the header.
        let mut depth = 0i64;
        for j in ci + 1..=body_e {
            match idx.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    out.push((j, idx.matching_brace(j)));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
    }
    out
}

/// Local bindings in this fn of the form `let [mut] name =
/// <Container>::new()` with no later `name.reserve(…)` — pushes onto
/// these inside a loop reallocate repeatedly.
fn unsized_vec_locals<'a>(idx: &FileIndex<'a>, body_s: usize, body_e: usize) -> Vec<&'a str> {
    let mut names = Vec::new();
    for ci in body_s..=body_e {
        if idx.text(ci) != "let" {
            continue;
        }
        let mut j = ci + 1;
        if idx.code.get(j).is_some_and(|_| idx.text(j) == "mut") {
            j += 1;
        }
        if idx.code.get(j + 4).is_none() {
            continue;
        }
        let name = idx.text(j);
        if idx.text(j + 1) == "="
            && CONTAINERS.contains(&idx.text(j + 2))
            && idx.text(j + 3) == "::"
            && idx.text(j + 4) == "new"
        {
            names.push(name);
        }
    }
    names.retain(|name| {
        !(body_s..=body_e.saturating_sub(2)).any(|ci| {
            idx.text(ci) == *name && idx.text(ci + 1) == "." && idx.text(ci + 2) == "reserve"
        })
    });
    names
}

#[cfg(test)]
mod tests {
    use super::super::tests::sources;
    use super::super::{run_passes, Finding};

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        run_passes(&sources(&[(rel, src)]), "")
    }

    fn rules(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn constructors_and_macros_flagged_only_inside_loops() {
        let src =
            "fn f(n: usize) -> Vec<Vec<u32>> {\n    let mut out = Vec::with_capacity(n);\n    \
                   for i in 0..n {\n        let row = Vec::new();\n        out.push(row);\n        \
                   let s = format!(\"{i}\");\n        drop(s);\n    }\n    out\n}\n";
        let got = findings("crates/setops/src/lib.rs", src);
        assert_eq!(rules(&got), vec!["hot-alloc-loop", "hot-alloc-loop"], "{got:?}");
        assert_eq!(got[0].line, 4, "Vec::new in the loop");
        assert_eq!(got[1].line, 6, "format! in the loop");
        // The same allocations outside a hot path are fine.
        assert!(findings("crates/gen/src/lib.rs", src).is_empty());
        // Returning an empty container allocates nothing.
        let ret = "fn f(xs: &[u32]) -> Vec<u32> {\n    for &x in xs {\n        \
                   if x == 0 {\n            return Vec::new();\n        }\n    }\n    \
                   Vec::with_capacity(1)\n}\n";
        assert!(findings("crates/setops/src/lib.rs", ret).is_empty());
    }

    #[test]
    fn push_onto_unsized_local_flagged_presized_ok() {
        let bad = "fn f(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    \
                   for &x in xs {\n        out.push(x);\n    }\n    out\n}\n";
        let got = findings("crates/ptree/src/lib.rs", bad);
        assert_eq!(rules(&got), vec!["hot-alloc-loop"], "{got:?}");
        assert_eq!(got[0].line, 4);
        let sized =
            "fn f(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::with_capacity(xs.len());\n    \
                     for &x in xs {\n        out.push(x);\n    }\n    out\n}\n";
        assert!(findings("crates/ptree/src/lib.rs", sized).is_empty());
        // A reserve call sanctions an initially-unsized buffer …
        let reserved = "fn f(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    \
                        out.reserve(xs.len());\n    for &x in xs {\n        out.push(x);\n    }\n    out\n}\n";
        assert!(findings("crates/ptree/src/lib.rs", reserved).is_empty());
        // … and pushes onto caller-owned buffers are the caller's concern.
        let param = "fn f(xs: &[u32], out: &mut Vec<u32>) {\n    for &x in xs {\n        \
                     out.push(x);\n    }\n}\n";
        assert!(findings("crates/ptree/src/lib.rs", param).is_empty());
    }

    #[test]
    fn owning_conversions_and_clone_flagged_in_loops() {
        let src = "fn f(xs: &[String]) -> usize {\n    let mut n = 0;\n    for x in xs {\n        \
                   let y = x.clone();\n        let z = y.to_string();\n        n += z.len();\n    }\n    n\n}\n";
        let got = findings("crates/mbe/src/mbet.rs", src);
        assert_eq!(rules(&got), vec!["hot-alloc-loop", "hot-alloc-loop"], "{got:?}");
        assert!(got[0].message.contains("clone"), "{}", got[0].message);
    }

    #[test]
    fn legacy_panic_family_ids_survive_with_spans() {
        let src = "fn f(v: &[u32]) -> u32 {\n    if v.is_empty() { panic!(\"no\"); }\n    \
                   v.iter().next().copied().expect(\"x\") + v[0]\n}\n";
        let got = findings("crates/mbe/src/mbet.rs", src);
        assert_eq!(rules(&got), vec!["panic", "expect", "index-literal"], "{got:?}");
        assert_eq!((got[0].line, got[1].line, got[2].line), (2, 3, 3));
        // Tokens inside strings and comments no longer trip the rules.
        let strings = "fn f() -> &'static str {\n    // .unwrap() in prose\n    \
                       \"call .unwrap() and panic!\"\n}\n";
        assert!(findings("crates/mbe/src/mbet.rs", strings).is_empty());
    }

    #[test]
    fn reachability_from_driver_entries_is_noted() {
        let src = "fn worker_loop(v: Vec<u32>) -> u32 {\n    helper(v)\n}\n\
                   fn helper(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n\
                   fn idle(v: Vec<u32>) -> u32 {\n    *v.last().unwrap()\n}\n";
        let got = findings("crates/mbe/src/parallel.rs", src);
        assert_eq!(rules(&got), vec!["unwrap", "unwrap"]);
        assert!(got[0].message.contains("reachable"), "{}", got[0].message);
        assert!(!got[1].message.contains("reachable"), "{}", got[1].message);
    }

    #[test]
    fn index_literal_slice_literals_do_not_count() {
        let src = "fn f() -> [u32; 2] {\n    let s = &[0];\n    let t = [3];\n    \
                   [s[0], t[0]]\n}\n";
        let got = findings("crates/setops/src/lib.rs", src);
        assert_eq!(rules(&got), vec!["index-literal", "index-literal"], "{got:?}");
        assert_eq!(got[0].line, 4);
    }
}
