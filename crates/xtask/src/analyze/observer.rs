//! Observer-hook balance analysis (`observer-balance`).
//!
//! The trace tooling (`xtask trace-check`, the JSONL observers)
//! assumes every `task_start` notification is matched by a
//! `task_finish` — a dangling start either means a lost-forever task
//! in the trace or, worse, per-task accounting that silently drifts.
//! The risky spot is exactly the one a line-based rule cannot see:
//! a driver that notifies `task_start`, runs the task under
//! `catch_unwind`, and then only notifies `task_finish` on the `Ok`
//! path, skipping it when the task panicked.
//!
//! For every non-test function that notifies `task_start` (or calls
//! the `on_task_start` hook directly), this pass checks:
//!
//! * at least one `task_finish` site exists in the same function
//!   (and vice versa — a finish with no start is flagged too);
//! * when the function uses `catch_unwind`, not *every* finish site
//!   may sit under an `Ok`-result guard (`if result.is_ok() { … }`,
//!   `Ok(…) => { … }`): at least one must run on the panic path.
//!
//! Functions *named* after the hooks (`task_start`, `on_task_finish`,
//! …) are the notification plumbing itself — `ObsCtx` methods and
//! `Observer` forwarders legitimately relay one hook without its
//! partner and are exempt.

use super::{Finding, Severity, Workspace};
use crate::index::FileIndex;

/// The notify/hook call names, start and finish families.
const START_CALLS: &[&str] = &["task_start", "on_task_start"];
const FINISH_CALLS: &[&str] = &["task_finish", "on_task_finish"];

/// Runs the pass over every file.
pub fn run(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for idx in &ws.files {
        for f in &idx.fns {
            if f.in_test {
                continue;
            }
            if START_CALLS.contains(&f.name.as_str()) || FINISH_CALLS.contains(&f.name.as_str()) {
                continue; // notification plumbing, not a driver
            }
            let Some((body_s, body_e)) = f.body else { continue };
            let starts = call_sites(idx, body_s, body_e, START_CALLS);
            let finishes = call_sites(idx, body_s, body_e, FINISH_CALLS);
            if starts.is_empty() && finishes.is_empty() {
                continue;
            }
            if finishes.is_empty() {
                out.push(Finding::at(
                    "observer-balance",
                    Severity::Error,
                    idx,
                    starts[0],
                    format!(
                        "`{}` notifies task_start but never task_finish; every start must pair \
                         with a finish on all exit paths",
                        f.name
                    ),
                ));
                continue;
            }
            if starts.is_empty() {
                out.push(Finding::at(
                    "observer-balance",
                    Severity::Error,
                    idx,
                    finishes[0],
                    format!("`{}` notifies task_finish without a task_start", f.name),
                ));
                continue;
            }
            // The panic path: under catch_unwind, a finish that only
            // runs when the result was Ok leaves panicked tasks
            // dangling.
            let catch = (body_s..=body_e).find(|&ci| idx.text(ci) == "catch_unwind");
            if let Some(catch_ci) = catch {
                let blocks = block_tree(idx, body_s, body_e);
                if finishes.iter().all(|&ci| ok_guarded(idx, &blocks, ci)) {
                    out.push(Finding::at(
                        "observer-balance",
                        Severity::Error,
                        idx,
                        catch_ci,
                        format!(
                            "`{}` skips task_finish on the catch_unwind panic path: every \
                             finish site is guarded on an Ok result",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Code indices of `.name(` call sites for any name in `names`.
fn call_sites(idx: &FileIndex<'_>, s: usize, e: usize, names: &[&str]) -> Vec<usize> {
    idx.calls_in(s, e)
        .into_iter()
        .filter(|(name, ci)| names.contains(name) && *ci > 0 && idx.text(ci - 1) == ".")
        .map(|(_, ci)| ci)
        .collect()
}

/// One `{ … }` block inside a fn body, with the code range of its
/// header (the tokens between the previous statement boundary and the
/// opening brace: `if result.is_ok()`, `Ok(d) =>`, …).
struct Block {
    open: usize,
    close: usize,
    header: (usize, usize),
}

/// All blocks strictly inside the fn body, in opening order.
fn block_tree(idx: &FileIndex<'_>, body_s: usize, body_e: usize) -> Vec<Block> {
    let mut out = Vec::new();
    for ci in body_s + 1..body_e {
        if idx.text(ci) != "{" {
            continue;
        }
        let mut h = ci;
        while h > body_s + 1 && !matches!(idx.text(h - 1), ";" | "{" | "}" | ",") {
            h -= 1;
        }
        out.push(Block {
            open: ci,
            close: idx.matching_brace(ci),
            header: (h, ci.saturating_sub(1)),
        });
    }
    out
}

/// `true` when some block enclosing `ci` has an `Ok`-result guard in
/// its header.
fn ok_guarded(idx: &FileIndex<'_>, blocks: &[Block], ci: usize) -> bool {
    blocks.iter().filter(|b| ci > b.open && ci < b.close).any(|b| {
        let (hs, he) = b.header;
        (hs..=he).any(|h| {
            let t = idx.text(h);
            t == "is_ok" || (t == "Ok" && h < he && idx.text(h + 1) == "(")
        })
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests::sources;
    use super::super::{run_passes, Finding};

    fn findings(src: &str) -> Vec<Finding> {
        run_passes(&sources(&[("crates/mbe/src/task.rs", src)]), "")
            .into_iter()
            .filter(|f| f.rule == "observer-balance")
            .collect()
    }

    #[test]
    fn unpaired_start_is_flagged_at_the_start_site() {
        let src = "fn drive(obs: &Obs) {\n    obs.task_start(&info());\n    work();\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "observer-balance");
        assert_eq!((got[0].line, got[0].col), (2, 9));
        assert!(got[0].message.contains("never task_finish"), "{}", got[0].message);
    }

    #[test]
    fn balanced_hooks_are_clean() {
        let src = "fn drive(obs: &Obs) {\n    obs.task_start(&info());\n    work();\n    \
                   obs.task_finish(&info(), t, &d);\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn ok_guarded_finish_under_catch_unwind_is_flagged() {
        let src = "fn worker(obs: &Obs) {\n    obs.task_start(&info());\n    \
                   let result = catch_unwind(|| work());\n    if result.is_ok() {\n        \
                   obs.task_finish(&info(), t, &d);\n    }\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 3, "anchors at catch_unwind");
        assert!(got[0].message.contains("panic path"), "{}", got[0].message);
        // A match on Ok(..) is the same hazard.
        let arm = "fn worker(obs: &Obs) {\n    obs.task_start(&info());\n    \
                   match catch_unwind(|| work()) {\n        Ok(d) => {\n            \
                   obs.task_finish(&info(), t, &d);\n        }\n        Err(_) => {}\n    }\n}\n";
        assert_eq!(findings(arm).len(), 1);
    }

    #[test]
    fn unconditional_finish_under_catch_unwind_is_clean() {
        let src = "fn worker(obs: &Obs) {\n    obs.task_start(&info());\n    \
                   let result = catch_unwind(|| work());\n    obs.task_finish(&info(), t, &d);\n    \
                   if result.is_ok() {\n        record();\n    }\n}\n";
        assert!(findings(src).is_empty());
        // A second, unguarded finish on the panic arm also balances.
        let both_arms = "fn worker(obs: &Obs) {\n    obs.task_start(&info());\n    \
                         match catch_unwind(|| work()) {\n        Ok(d) => {\n            \
                         obs.task_finish(&info(), t, &d);\n        }\n        Err(_) => {\n            \
                         obs.task_finish(&info(), t, &zero());\n        }\n    }\n}\n";
        assert!(findings(both_arms).is_empty());
    }

    #[test]
    fn hook_plumbing_fns_are_exempt() {
        let src = "fn task_start(o: &O) {\n    o.on_task_start(0, &t());\n}\n\
                   fn on_task_start(o: &O) {\n    o.on_task_start(0, &t());\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn finish_without_start_is_flagged() {
        let src = "fn drain(obs: &Obs) {\n    obs.task_finish(&info(), t, &d);\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("without a task_start"), "{}", got[0].message);
    }
}
