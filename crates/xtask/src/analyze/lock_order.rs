//! Lock-order analysis (`lock-order`).
//!
//! Deadlocks need two ingredients: two locks, and two code paths that
//! acquire them in opposite orders. This pass finds the second
//! ingredient statically for the crates where locks actually live —
//! the serve layer and the parallel driver:
//!
//! 1. **Lock inventory** — every `Mutex`/`RwLock` declaration site
//!    (struct field, static, or `let` binding with a visible type or
//!    `Mutex::new` initializer). A lock's identity is its name plus
//!    declaring file, so `inner` in the registry and `inner` in the
//!    observer stay distinct.
//! 2. **Acquisition scopes** — each `.lock()` / `.read()` /
//!    `.write()` call whose receiver resolves to an inventoried lock,
//!    with the guard's lexical extent: a `let`-bound guard lives to
//!    the end of its enclosing block (or an explicit `drop(guard)`);
//!    a temporary guard lives to the end of its statement — Rust's
//!    actual temporary-lifetime rule, which is exactly what makes
//!    `S { a: m.lock()…, b: n.lock()… }` hold both locks at once.
//! 3. **Acquisition graph** — an edge `A → B` whenever `B` is
//!    acquired while a guard for `A` is live, either directly in the
//!    same extent or transitively through a call (callees' may-acquire
//!    sets are propagated to a fixed point over the workspace call
//!    graph). Only calls whose name resolves to exactly one workspace
//!    fn participate — ubiquitous names (`new`, `take`, `load`, …)
//!    resolve to every same-named method and would connect unrelated
//!    locks into phantom deadlock paths.
//! 4. **Cycles** — any cycle in that graph is a potential deadlock;
//!    the diagnostic carries both acquisition sites.

use std::collections::HashSet;

use super::{CallGraph, Finding, Severity, Workspace};
use crate::index::FileIndex;

/// Files whose locks participate in the analysis. Everything else is
/// lock-free by the `check` conventions (panic containment + channels).
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel == "crates/mbe/src/parallel.rs"
        || rel == "crates/mbe/src/obs.rs"
}

/// One inventoried lock declaration.
struct Lock {
    /// Declaring file (index into `ws.files`).
    file: usize,
    name: String,
}

/// A source location carried into diagnostics.
#[derive(Clone)]
struct Site {
    rel: String,
    line: u32,
    col: u32,
}

/// One "held A while acquiring B" observation.
struct Edge {
    from: usize,
    to: usize,
    /// Where the held lock was acquired.
    hold: Site,
    /// Where the inner lock was acquired (or the call that leads
    /// there).
    acq: Site,
    /// Name of the fn containing the hold.
    fn_name: String,
    /// Callee name when the inner acquisition is reached via a call.
    via: Option<String>,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace<'_>, graph: &CallGraph) -> Vec<Finding> {
    let locks = inventory(ws);
    if locks.len() < 2 {
        return Vec::new();
    }

    // Direct acquisitions per call-graph node: (lock, site ci, extent
    // end ci).
    let mut acquisitions: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); graph.nodes.len()];
    for (node, &(fi, gi)) in graph.nodes.iter().enumerate() {
        let idx = &ws.files[fi];
        if !in_scope(&idx.rel) {
            continue;
        }
        let Some((body_s, body_e)) = idx.fns[gi].body else { continue };
        for ci in body_s..=body_e {
            let Some(lock) = acquisition_at(idx, ci, fi, &locks) else { continue };
            let end = guard_extent(idx, ci, body_s, body_e);
            acquisitions[node].push((lock, ci, end));
        }
    }

    // May-acquire sets (lock id + representative direct site),
    // propagated over call edges to a fixed point.
    let mut may: Vec<Vec<(usize, Site)>> = acquisitions
        .iter()
        .enumerate()
        .map(|(node, acqs)| {
            let (fi, _) = graph.nodes[node];
            acqs.iter().map(|&(l, ci, _)| (l, site(&ws.files[fi], ci))).collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for node in 0..graph.nodes.len() {
            for c in 0..graph.calls[node].len() {
                let callee = graph.calls[node][c];
                if callee == node || !unique_name(ws, graph, callee) {
                    continue;
                }
                let inherited: Vec<(usize, Site)> = may[callee]
                    .iter()
                    .filter(|(l, _)| !may[node].iter().any(|(m, _)| m == l))
                    .cloned()
                    .collect();
                if !inherited.is_empty() {
                    may[node].extend(inherited);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition edges: direct overlaps and call-mediated ones.
    let mut edges: Vec<Edge> = Vec::new();
    for (node, acqs) in acquisitions.iter().enumerate() {
        let (fi, gi) = graph.nodes[node];
        let idx = &ws.files[fi];
        let fn_name = idx.fns[gi].name.clone();
        for &(held, ci, end) in acqs {
            for &(inner, ci2, _) in acqs {
                if inner != held && ci2 > ci && ci2 <= end {
                    edges.push(Edge {
                        from: held,
                        to: inner,
                        hold: site(idx, ci),
                        acq: site(idx, ci2),
                        fn_name: fn_name.clone(),
                        via: None,
                    });
                }
            }
            for (callee, call_ci) in idx.calls_in(ci, end) {
                if matches!(callee, "lock" | "read" | "write" | "drop" | "unwrap_or_else") {
                    continue;
                }
                let targets = graph.by_name(callee);
                if targets.len() != 1 {
                    continue; // ambiguous name — no reliable edge
                }
                for &target in targets {
                    if target == node {
                        continue;
                    }
                    for (inner, inner_site) in &may[target] {
                        if *inner != held {
                            edges.push(Edge {
                                from: held,
                                to: *inner,
                                hold: site(idx, ci),
                                acq: inner_site.clone(),
                                fn_name: fn_name.clone(),
                                via: Some(format!(
                                    "{callee} (called at {}:{})",
                                    idx.rel,
                                    idx.pos(call_ci).0
                                )),
                            });
                        }
                    }
                }
            }
        }
    }

    cycles(&locks, &edges)
}

/// `true` when `node`'s fn name is declared exactly once in the
/// workspace, so a bare-name call to it is unambiguous.
fn unique_name(ws: &Workspace<'_>, graph: &CallGraph, node: usize) -> bool {
    let (fi, gi) = graph.nodes[node];
    graph.by_name(&ws.files[fi].fns[gi].name).len() == 1
}

/// Reports one finding per distinct lock cycle.
fn cycles(locks: &[Lock], edges: &[Edge]) -> Vec<Finding> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); locks.len()];
    for (i, e) in edges.iter().enumerate() {
        adj[e.from].push(i);
    }
    let mut out = Vec::new();
    let mut reported: HashSet<Vec<usize>> = HashSet::new();
    for e in edges {
        // BFS from the inner lock back to the held lock.
        let Some(path) = lock_path(locks.len(), &adj, edges, e.to, e.from) else { continue };
        let mut cycle: Vec<usize> = path.clone();
        cycle.push(e.to);
        cycle.sort_unstable();
        cycle.dedup();
        if !reported.insert(cycle) {
            continue;
        }
        let reverse = edges
            .iter()
            .find(|r| r.from == e.to && r.to == e.from)
            .map(|r| {
                format!(
                    "; `{}` is held at {}:{} while acquiring `{}` at {}:{} in fn `{}`{}",
                    locks[r.from].name,
                    r.hold.rel,
                    r.hold.line,
                    locks[r.to].name,
                    r.acq.rel,
                    r.acq.line,
                    r.fn_name,
                    r.via.as_deref().map(|v| format!(" via {v}")).unwrap_or_default(),
                )
            })
            .unwrap_or_else(|| {
                let names: Vec<&str> = path.iter().map(|&l| locks[l].name.as_str()).collect();
                format!("; reverse acquisition path exists through `{}`", names.join("` -> `"))
            });
        out.push(Finding {
            rule: "lock-order",
            severity: Severity::Error,
            file: e.hold.rel.clone(),
            line: e.hold.line,
            col: e.hold.col,
            message: format!(
                "potential deadlock: `{}` is held at {}:{} while acquiring `{}` at {}:{} in fn `{}`{}{}",
                locks[e.from].name,
                e.hold.rel,
                e.hold.line,
                locks[e.to].name,
                e.acq.rel,
                e.acq.line,
                e.fn_name,
                e.via.as_deref().map(|v| format!(" via {v}")).unwrap_or_default(),
                reverse,
            ),
        });
    }
    out
}

/// The lock-id path `from → … → to` (excluding `to`'s final hop
/// target), or `None` when unreachable.
fn lock_path(
    n: usize,
    adj: &[Vec<usize>],
    edges: &[Edge],
    from: usize,
    to: usize,
) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![u];
            let mut cur = u;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &ei in &adj[u] {
            let v = edges[ei].to;
            if !seen[v] {
                seen[v] = true;
                prev[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Collects every lock declaration in scoped files.
fn inventory(ws: &Workspace<'_>) -> Vec<Lock> {
    let mut locks: Vec<Lock> = Vec::new();
    for (fi, idx) in ws.files.iter().enumerate() {
        if !in_scope(&idx.rel) {
            continue;
        }
        for ci in 0..idx.len() {
            if !matches!(idx.text(ci), "Mutex" | "RwLock") || idx.in_test(ci) {
                continue;
            }
            let next = idx.code.get(ci + 1).map(|_| idx.text(ci + 1));
            let declares = match next {
                Some("<") => true,
                Some("::") => idx.code.get(ci + 2).is_some_and(|_| idx.text(ci + 2) == "new"),
                _ => false,
            };
            if !declares {
                continue;
            }
            let Some(name) = binding_name_before(idx, ci) else { continue };
            if !locks.iter().any(|l| l.file == fi && l.name == name) {
                locks.push(Lock { file: fi, name });
            }
        }
    }
    locks
}

/// Walks back from the `Mutex`/`RwLock` token across generic wrappers
/// (`Arc<`), path prefixes (`std::sync::`), and references to the
/// `name :` / `name =` binding that owns it.
fn binding_name_before(idx: &FileIndex<'_>, ci: usize) -> Option<String> {
    let mut j = ci.checked_sub(1)?;
    loop {
        let t = idx.text(j);
        match t {
            ":" | "=" => {
                let name = idx.text(j.checked_sub(1)?);
                let first = name.chars().next()?;
                return if first.is_alphabetic() || first == '_' {
                    Some(name.strip_prefix("r#").unwrap_or(name).to_string())
                } else {
                    None
                };
            }
            "<" | "::" | "&" | "mut" => {}
            t if t.starts_with('\'') => {}
            t if t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') => {}
            _ => return None,
        }
        j = j.checked_sub(1)?;
    }
}

/// The inventoried lock acquired by a `.lock()` / `.read()` /
/// `.write()` at `ci`, resolved by receiver name (same file preferred,
/// then a unique declaration anywhere in scope).
fn acquisition_at(idx: &FileIndex<'_>, ci: usize, fi: usize, locks: &[Lock]) -> Option<usize> {
    if !matches!(idx.text(ci), "lock" | "read" | "write") {
        return None;
    }
    if ci < 2 || idx.text(ci - 1) != "." {
        return None;
    }
    if idx.code.get(ci + 1).is_none_or(|_| idx.text(ci + 1) != "(") {
        return None;
    }
    if idx.code.get(ci + 2).is_none_or(|_| idx.text(ci + 2) != ")") {
        return None;
    }
    let recv = idx.text(ci - 2);
    let first = recv.chars().next()?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    let matching: Vec<usize> = (0..locks.len()).filter(|&l| locks[l].name == recv).collect();
    match matching.len() {
        0 => None,
        1 => Some(matching[0]),
        _ => matching.iter().copied().find(|&l| locks[l].file == fi),
    }
}

/// The code index where the guard acquired at `ci` dies.
fn guard_extent(idx: &FileIndex<'_>, ci: usize, body_s: usize, body_e: usize) -> usize {
    let start = statement_start(idx, ci, body_s);
    if idx.text(start) == "let" {
        // Find the binding name (skipping `mut` and one pattern layer).
        let mut j = start + 1;
        if idx.text(j) == "mut" {
            j += 1;
        }
        let name = if idx.code.get(j + 1).is_some_and(|_| idx.text(j + 1) == "(") {
            idx.text(j + 2)
        } else {
            idx.text(j)
        };
        // Innermost enclosing block: the guard lives to its `}` …
        let mut stack = Vec::new();
        for k in body_s..ci {
            match idx.text(k) {
                "{" => stack.push(k),
                "}" => {
                    stack.pop();
                }
                _ => {}
            }
        }
        let block_end = stack.last().map(|&open| idx.matching_brace(open)).unwrap_or(body_e);
        // … unless an explicit `drop(name)` releases it earlier.
        for k in ci..block_end {
            if idx.text(k) == "drop"
                && idx.code.get(k + 3).is_some()
                && idx.text(k + 1) == "("
                && idx.text(k + 2) == name
                && idx.text(k + 3) == ")"
            {
                return k;
            }
        }
        block_end
    } else {
        // A temporary guard: lives to the end of the statement.
        let mut depth = 0i64;
        for k in ci..=body_e {
            match idx.text(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                ";" if depth <= 0 => return k,
                _ => {}
            }
        }
        body_e
    }
}

/// The first code token of the statement containing `ci`.
fn statement_start(idx: &FileIndex<'_>, ci: usize, body_s: usize) -> usize {
    let mut depth = 0i64;
    let mut j = ci;
    while j > body_s {
        let t = idx.text(j - 1);
        match t {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    j
}

fn site(idx: &FileIndex<'_>, ci: usize) -> Site {
    let (line, col) = idx.pos(ci);
    Site { rel: idx.rel.clone(), line, col }
}

#[cfg(test)]
mod tests {
    use super::super::tests::sources;
    use super::super::{run_passes, Finding};

    fn lock_findings(files: &[(&str, &str)]) -> Vec<Finding> {
        run_passes(&sources(files), "").into_iter().filter(|f| f.rule == "lock-order").collect()
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = "static A: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   static B: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   fn f() {\n    let ga = A.lock();\n    let gb = B.lock();\n}\n\
                   fn g() {\n    let gb = B.lock();\n    let ga = A.lock();\n}\n";
        let got = lock_findings(&[("crates/serve/src/fixture.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "lock-order");
        assert_eq!((got[0].line, got[0].col), (4, 16), "anchors at the held acquisition");
        assert!(got[0].message.contains("`A`") && got[0].message.contains("`B`"));
        assert!(
            got[0].message.contains("fixture.rs:5"),
            "cites the inner site: {}",
            got[0].message
        );
        assert!(
            got[0].message.contains("fixture.rs:8"),
            "cites the reverse site: {}",
            got[0].message
        );
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "static A: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   static B: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   fn f() {\n    let ga = A.lock();\n    drop(ga);\n    let gb = B.lock();\n    drop(gb);\n}\n\
                   fn g() {\n    let gb = B.lock();\n    let ga = A.lock();\n}\n";
        assert!(lock_findings(&[("crates/serve/src/fixture.rs", src)]).is_empty());
    }

    #[test]
    fn cycle_through_a_call_edge_is_found() {
        let src = "static A: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   static B: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   fn f() {\n    let ga = A.lock();\n    h();\n}\n\
                   fn h() {\n    let gb = B.lock();\n}\n\
                   fn g() {\n    let gb = B.lock();\n    let ga = A.lock();\n}\n";
        let got = lock_findings(&[("crates/serve/src/fixture.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("via h"), "{}", got[0].message);
    }

    #[test]
    fn temporary_guards_live_to_statement_end() {
        // Both locks are held at once inside the struct literal; `g`
        // takes them in the reverse order.
        let src = "struct S { a: u32, b: u32 }\n\
                   static A: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   static B: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   fn f() -> S {\n    S { a: *A.lock().unwrap(), b: *B.lock().unwrap() }\n}\n\
                   fn g() {\n    let gb = B.lock();\n    let ga = A.lock();\n}\n";
        let got = lock_findings(&[("crates/serve/src/fixture.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "static A: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   static B: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
                   fn f() {\n    let ga = A.lock();\n    let gb = B.lock();\n}\n\
                   fn g() {\n    let ga = A.lock();\n    let gb = B.lock();\n}\n";
        assert!(lock_findings(&[("crates/serve/src/fixture.rs", src)]).is_empty());
    }

    #[test]
    fn same_name_locks_in_different_files_stay_distinct() {
        // `inner` here and `inner` there are different locks; opposite
        // orders against them must not merge into a phantom cycle.
        let a = "struct R { inner: std::sync::RwLock<u32>, aux: std::sync::Mutex<u32> }\n\
                 impl R {\n    fn f(&self) {\n        let g = self.inner.read();\n        \
                 let h = self.aux.lock();\n    }\n}\n";
        let b = "struct O { inner: std::sync::Mutex<u32> }\n\
                 impl O {\n    fn g(&self) {\n        let g = self.inner.lock();\n    }\n}\n";
        let got = lock_findings(&[
            ("crates/serve/src/registry_fixture.rs", a),
            ("crates/serve/src/obs_fixture.rs", b),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }
}
