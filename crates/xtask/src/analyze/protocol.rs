//! Protocol exhaustiveness analysis (`protocol-opcode`,
//! `protocol-errcode`).
//!
//! The serve wire protocol is hand-rolled: opcode constants in
//! `crates/serve/src/protocol.rs`, four codec functions
//! (`Request::encode` / `Request::decode` / `Response::encode` /
//! `Response::decode` — the reply tag mirrors the request opcode), a
//! stable errcode table with a `label()` mapping, and a prose listing
//! in DESIGN.md §8b. Nothing but convention keeps those five places in
//! sync, and the ROADMAP's upcoming `STREAM`/`UPDATE` opcodes will
//! touch all of them. This pass cross-checks:
//!
//! * every `opcode::X` constant is referenced in each of the four
//!   codec functions (an unhandled opcode falls into the
//!   `_ => Malformed` arm at runtime — a silent protocol hole);
//! * opcode values are unique;
//! * DESIGN.md's wire-format listing names every opcode with its value
//!   (`` `X`=n ``);
//! * every `errcode::X` constant has a `label()` arm and appears in
//!   the DESIGN error-code listing.
//!
//! Findings anchor at the constant's declaration, which is where the
//! fix starts.

use super::{Finding, Severity, Workspace};
use crate::index::FileIndex;

/// The file that owns the protocol tables.
const PROTOCOL_FILE: &str = "crates/serve/src/protocol.rs";

/// Runs the pass. Missing protocol file (synthetic workspaces) is a
/// no-op.
pub fn run(ws: &Workspace<'_>, design: &str) -> Vec<Finding> {
    match ws.file(PROTOCOL_FILE) {
        Some(idx) => check(idx, design),
        None => Vec::new(),
    }
}

/// One `const NAME: u8 = N;` entry and its declaration site.
struct Entry {
    name: String,
    value: Option<u64>,
    ci: usize,
}

/// Cross-checks one protocol file against `design`.
fn check(idx: &FileIndex<'_>, design: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let opcodes = mod_consts(idx, "opcode");
    let errcodes = mod_consts(idx, "errcode");

    // The four codec fns, located through their impl blocks so the
    // Request and Response pairs stay distinct.
    let codecs = [
        ("Request", "encode"),
        ("Request", "decode"),
        ("Response", "encode"),
        ("Response", "decode"),
    ];
    let codec_bodies: Vec<(String, Option<(usize, usize)>)> =
        codecs.iter().map(|&(ty, f)| (format!("{ty}::{f}"), fn_in_impl(idx, ty, f))).collect();
    for (label, body) in &codec_bodies {
        if body.is_none() {
            out.push(Finding {
                rule: "protocol-opcode",
                severity: Severity::Error,
                file: idx.rel.clone(),
                line: 1,
                col: 1,
                message: format!("codec fn `{label}` not found in the protocol module"),
            });
        }
    }

    for op in &opcodes {
        for (label, body) in &codec_bodies {
            let Some((s, e)) = body else { continue };
            if !has_path_ref(idx, *s, *e, "opcode", &op.name) {
                out.push(Finding::at(
                    "protocol-opcode",
                    Severity::Error,
                    idx,
                    op.ci,
                    format!("opcode `{}` has no arm in `{label}`", op.name),
                ));
            }
        }
        let listed = op.value.is_some_and(|v| design.contains(&format!("`{}`={v}", op.name)));
        if !listed {
            out.push(Finding::at(
                "protocol-opcode",
                Severity::Error,
                idx,
                op.ci,
                format!(
                    "opcode `{}` (= {}) is missing from the DESIGN.md wire-format listing",
                    op.name,
                    op.value.map(|v| v.to_string()).unwrap_or_else(|| "?".into())
                ),
            ));
        }
    }
    let mut by_value: Vec<&Entry> = opcodes.iter().filter(|e| e.value.is_some()).collect();
    by_value.sort_by_key(|e| e.value);
    for w in by_value.windows(2) {
        if w[0].value == w[1].value {
            out.push(Finding::at(
                "protocol-opcode",
                Severity::Error,
                idx,
                w[1].ci,
                format!(
                    "opcode `{}` reuses value {} already taken by `{}`",
                    w[1].name,
                    w[1].value.unwrap_or(0),
                    w[0].name
                ),
            ));
        }
    }

    let label_body = fn_named(idx, "label");
    for ec in &errcodes {
        let labeled = label_body.is_some_and(|(s, e)| (s..=e).any(|ci| idx.text(ci) == ec.name));
        if !labeled {
            out.push(Finding::at(
                "protocol-errcode",
                Severity::Error,
                idx,
                ec.ci,
                format!("errcode `{}` has no arm in `errcode::label`", ec.name),
            ));
        }
        if !design.contains(&format!("`{}`", ec.name)) {
            out.push(Finding::at(
                "protocol-errcode",
                Severity::Error,
                idx,
                ec.ci,
                format!("errcode `{}` is missing from the DESIGN.md error-code listing", ec.name),
            ));
        }
    }
    out
}

/// `const NAME: u8 = N;` entries inside `mod <name> { … }`.
fn mod_consts(idx: &FileIndex<'_>, mod_name: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    let Some((s, e)) = mod_extent(idx, mod_name) else { return out };
    for ci in s..=e {
        if idx.text(ci) != "const" || idx.in_test(ci) {
            continue;
        }
        if idx.code.get(ci + 5).is_none() {
            continue;
        }
        // const NAME : u8 = N
        if idx.text(ci + 2) == ":" && idx.text(ci + 4) == "=" {
            let value = idx.text(ci + 5).parse::<u64>().ok();
            out.push(Entry { name: idx.text(ci + 1).to_string(), value, ci: ci + 1 });
        }
    }
    out
}

/// The `{ … }` extent of `mod <name>`.
fn mod_extent(idx: &FileIndex<'_>, name: &str) -> Option<(usize, usize)> {
    for ci in 0..idx.len() {
        if idx.text(ci) == "mod"
            && idx.code.get(ci + 2).is_some()
            && idx.text(ci + 1) == name
            && idx.text(ci + 2) == "{"
        {
            return Some((ci + 2, idx.matching_brace(ci + 2)));
        }
    }
    None
}

/// The body of `fn <fn_name>` inside `impl <ty_name> { … }`.
fn fn_in_impl(idx: &FileIndex<'_>, ty_name: &str, fn_name: &str) -> Option<(usize, usize)> {
    for ci in 0..idx.len() {
        if idx.text(ci) == "impl"
            && idx.code.get(ci + 2).is_some()
            && idx.text(ci + 1) == ty_name
            && idx.text(ci + 2) == "{"
        {
            let end = idx.matching_brace(ci + 2);
            return idx
                .fns
                .iter()
                .find(|f| f.name == fn_name && f.fn_ci > ci + 2 && f.fn_ci < end)
                .and_then(|f| f.body);
        }
    }
    None
}

/// The body of the first non-test fn named `name`.
fn fn_named(idx: &FileIndex<'_>, name: &str) -> Option<(usize, usize)> {
    idx.fns.iter().find(|f| f.name == name && !f.in_test).and_then(|f| f.body)
}

/// `true` when `[s, e]` contains the token sequence `head :: name`.
fn has_path_ref(idx: &FileIndex<'_>, s: usize, e: usize, head: &str, name: &str) -> bool {
    (s..=e.saturating_sub(2))
        .any(|ci| idx.text(ci) == head && idx.text(ci + 1) == "::" && idx.text(ci + 2) == name)
}

#[cfg(test)]
mod tests {
    use super::super::tests::sources;
    use super::super::{run_passes, Finding};

    /// A minimal protocol module: two opcodes, one errcode, all four
    /// codec fns. `gaps` knocks holes in it for the negative tests.
    fn protocol_src(decode_handles_b: bool, label_handles_x: bool) -> String {
        let b_arm = if decode_handles_b { "opcode::B => 2," } else { "" };
        let x_arm = if label_handles_x { "X => \"x\"," } else { "" };
        format!(
            "pub mod opcode {{\n    pub const A: u8 = 1;\n    pub const B: u8 = 2;\n}}\n\
             pub mod errcode {{\n    pub const X: u8 = 1;\n    \
             pub fn label(c: u8) -> &'static str {{\n        match c {{\n            {x_arm}\n            \
             _ => \"unknown\",\n        }}\n    }}\n}}\n\
             pub struct Request;\npub struct Response;\n\
             impl Request {{\n    pub fn encode(&self) -> u8 {{ opcode::A + opcode::B }}\n    \
             pub fn decode(v: u8) -> u8 {{\n        match v {{\n            opcode::A => 1,\n            {b_arm}\n            \
             _ => 0,\n        }}\n    }}\n}}\n\
             impl Response {{\n    pub fn encode(&self) -> u8 {{ opcode::A + opcode::B }}\n    \
             pub fn decode(v: u8) -> u8 {{ v + opcode::A + opcode::B }}\n}}\n"
        )
    }

    const DESIGN_OK: &str = "opcodes: `A`=1, `B`=2. errors: `X`.";

    fn findings(src: &str, design: &str) -> Vec<Finding> {
        run_passes(&sources(&[("crates/serve/src/protocol.rs", src)]), design)
            .into_iter()
            .filter(|f| f.rule.starts_with("protocol-"))
            .collect()
    }

    #[test]
    fn complete_tables_are_clean() {
        assert!(findings(&protocol_src(true, true), DESIGN_OK).is_empty());
    }

    #[test]
    fn missing_decode_arm_is_flagged_at_the_const() {
        let got = findings(&protocol_src(false, true), DESIGN_OK);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "protocol-opcode");
        assert!(got[0].message.contains("`B`"), "{}", got[0].message);
        assert!(got[0].message.contains("Request::decode"), "{}", got[0].message);
        assert_eq!(got[0].line, 3, "anchors at `const B`");
    }

    #[test]
    fn missing_label_arm_and_design_entries_are_flagged() {
        let got = findings(&protocol_src(true, false), DESIGN_OK);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "protocol-errcode");
        assert!(got[0].message.contains("label"), "{}", got[0].message);

        let got = findings(&protocol_src(true, true), "opcodes: `A`=1. errors: `X`.");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("DESIGN.md"), "{}", got[0].message);
        assert!(got[0].message.contains("`B`"), "{}", got[0].message);
        // A value mismatch is as bad as a missing entry.
        let drifted = findings(&protocol_src(true, true), "opcodes: `A`=1, `B`=9. errors: `X`.");
        assert_eq!(drifted.len(), 1, "{drifted:?}");
    }

    #[test]
    fn duplicate_opcode_values_are_flagged() {
        let src = protocol_src(true, true).replace("pub const B: u8 = 2;", "pub const B: u8 = 1;");
        let got = findings(&src, "opcodes: `A`=1, `B`=1. errors: `X`.");
        assert!(got.iter().any(|f| f.message.contains("reuses value")), "{got:?}");
    }
}
