//! Per-file item index built on the [`crate::lexer`] token stream.
//!
//! The analysis passes need more structure than raw tokens: which
//! function a token belongs to, whether it sits inside a `#[cfg(test)]`
//! region, where function bodies begin and end, and which workspace
//! functions a body calls. This module computes that once per file:
//!
//! * **code view** — indices of non-trivia tokens, so passes scan
//!   `code[i]`, `code[i+1]`, … without tripping over comments;
//! * **test regions** — brace extents introduced by an item carrying a
//!   `#[cfg(test)]` / `#[test]` attribute (passes skip them, matching
//!   the long-standing `check` exemption);
//! * **functions** — every `fn` item with its name, signature start,
//!   and body extent (as code-token indices), used for call-graph
//!   construction and guard-scope tracking;
//! * **allows** — the `// xtask-allow: <rule>` escape hatch, looked up
//!   against the raw source lines exactly as `check` does (same line,
//!   or a standalone comment line directly above).

use crate::lexer::{lex, Token};

/// One `fn` item found in a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name (`r#`-stripped).
    pub name: String,
    /// Code index of the `fn` keyword.
    pub fn_ci: usize,
    /// Code indices of the body's `{` and matching `}`; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// `true` when the item sits inside a test region (or a
    /// `tests/` integration file).
    pub in_test: bool,
}

/// A fully indexed source file.
pub struct FileIndex<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The lossless token stream.
    pub tokens: Vec<Token<'a>>,
    /// Indices into `tokens` of code (non-trivia) tokens.
    pub code: Vec<usize>,
    /// All `fn` items, in source order (nested fns appear separately).
    pub fns: Vec<FnItem>,
    /// Code-index ranges `[start, end]` covered by test attributes.
    pub test_ranges: Vec<(usize, usize)>,
    /// Raw source lines, for `xtask-allow` lookups.
    pub lines: Vec<&'a str>,
}

impl<'a> FileIndex<'a> {
    /// Lexes and indexes one file.
    pub fn build(rel: &str, src: &'a str) -> FileIndex<'a> {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].kind.is_code()).collect();
        let lines: Vec<&str> = src.lines().collect();
        let mut idx = FileIndex {
            rel: rel.to_string(),
            tokens,
            code,
            fns: Vec::new(),
            test_ranges: Vec::new(),
            lines,
        };
        idx.find_test_ranges();
        idx.find_fns();
        idx
    }

    /// The token behind code index `ci`.
    pub fn tok(&self, ci: usize) -> &Token<'a> {
        &self.tokens[self.code[ci]]
    }

    /// The code token's text.
    pub fn text(&self, ci: usize) -> &'a str {
        self.tok(ci).text
    }

    /// `(line, col)` of code token `ci`.
    pub fn pos(&self, ci: usize) -> (u32, u32) {
        let t = self.tok(ci);
        (t.line, t.col)
    }

    /// Number of code tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when code index `ci` is inside a test region, or the
    /// whole file is test code (`tests/` directories).
    pub fn in_test(&self, ci: usize) -> bool {
        self.rel.contains("/tests/") || self.test_ranges.iter().any(|&(s, e)| ci >= s && ci <= e)
    }

    /// `true` when the finding at 1-based `line` is suppressed by an
    /// `xtask-allow: <rule>` marker on that line or on a standalone
    /// comment line directly above it.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let i = line as usize - 1;
        if self.lines.get(i).is_some_and(|l| line_allows(l, rule)) {
            return true;
        }
        i > 0
            && self.lines.get(i - 1).is_some_and(|l| {
                let t = l.trim_start();
                t.starts_with("//") && line_allows(l, rule)
            })
    }

    /// Code index of the matching `}` for the `{` at `open` (brace
    /// depth over code tokens). Returns the last token on imbalance.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for ci in open..self.len() {
            match self.text(ci) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return ci;
                    }
                }
                _ => {}
            }
        }
        self.len().saturating_sub(1)
    }

    /// Marks brace extents introduced by `#[cfg(test)]` / `#[test]`
    /// attributes: the attribute's item owns the next `{ … }` at its
    /// nesting level, and everything inside is test code.
    fn find_test_ranges(&mut self) {
        let mut pending_test = false;
        let mut ci = 0;
        while ci < self.len() {
            if self.text(ci) == "#" && ci + 1 < self.len() && self.text(ci + 1) == "[" {
                let end = self.matching_bracket(ci + 1);
                let mut is_test = false;
                let mut saw_cfg = false;
                for j in ci + 1..=end {
                    match self.text(j) {
                        "cfg" => saw_cfg = true,
                        "test" if saw_cfg || j == ci + 2 => is_test = true,
                        _ => {}
                    }
                }
                pending_test = pending_test || is_test;
                ci = end + 1;
                continue;
            }
            match self.text(ci) {
                // The attached item ends without a body (`;`): the
                // pending attribute is spent.
                ";" if pending_test => pending_test = false,
                "{" if pending_test => {
                    let close = self.matching_brace(ci);
                    self.test_ranges.push((ci, close));
                    pending_test = false;
                    ci = close + 1;
                    continue;
                }
                _ => {}
            }
            ci += 1;
        }
    }

    /// Code index of the matching `]` for the `[` at `open`.
    fn matching_bracket(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for ci in open..self.len() {
            match self.text(ci) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return ci;
                    }
                }
                _ => {}
            }
        }
        self.len().saturating_sub(1)
    }

    /// Finds every `fn` item and its body extent. `fn` pointer types
    /// (`fn(u32) -> u32`) have no name token and are skipped.
    fn find_fns(&mut self) {
        let mut fns = Vec::new();
        for ci in 0..self.len() {
            if self.text(ci) != "fn" {
                continue;
            }
            let Some(name_tok) = self.code.get(ci + 1).map(|_| self.text(ci + 1)) else {
                continue;
            };
            let first = name_tok.chars().next().unwrap_or(' ');
            if !(first.is_alphabetic() || first == '_' || name_tok.starts_with("r#")) {
                continue; // `fn(` — a pointer type, not an item
            }
            let name = name_tok.strip_prefix("r#").unwrap_or(name_tok).to_string();
            // Scan the signature for the body `{` (or `;`): parens and
            // brackets must be balanced so argument defaults and array
            // types don't fool the search.
            let mut depth = 0i64;
            let mut body = None;
            for j in ci + 2..self.len() {
                match self.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = Some((j, self.matching_brace(j)));
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            // `#[test] fn x() { … }` ranges start at the body brace,
            // after the `fn` keyword — test either position.
            let in_test = self.in_test(ci) || body.is_some_and(|(s, _)| self.in_test(s));
            fns.push(FnItem { name, fn_ci: ci, body, in_test });
        }
        self.fns = fns;
    }

    /// Call sites inside the code range `[from, to]`: each `(callee
    /// name, code index)` where an identifier is directly followed by
    /// `(`. Keywords and macro invocations (`name!`) are excluded;
    /// method calls (`.name(`) are included — the workspace call graph
    /// resolves them by bare name.
    pub fn calls_in(&self, from: usize, to: usize) -> Vec<(&'a str, usize)> {
        let mut out = Vec::new();
        for ci in from..=to.min(self.len().saturating_sub(1)) {
            let t = self.text(ci);
            let first = t.chars().next().unwrap_or(' ');
            if !(first.is_alphabetic() || first == '_') {
                continue;
            }
            if KEYWORDS.contains(&t) {
                continue;
            }
            if ci < to && self.text(ci + 1) == "(" {
                // `fn name(` is a definition, not a call.
                if ci > 0 && self.text(ci - 1) == "fn" {
                    continue;
                }
                out.push((t, ci));
            }
        }
        out
    }
}

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move", "in", "as",
    "use", "pub", "impl", "trait", "struct", "enum", "mod", "where", "else", "break",
    // The next entry is a keyword *string*, not an unsafe block.
    // xtask-allow: unsafe
    "continue", "unsafe", "dyn", "Some", "Ok", "Err", "None",
];

/// `true` iff this raw line carries an `xtask-allow:` marker naming
/// `rule` (comma-separated list after the colon).
fn line_allows(line: &str, rule: &str) -> bool {
    match line.find("xtask-allow:") {
        Some(i) => line[i + "xtask-allow:".len()..]
            .split(&[',', '\u{2014}', '('][..])
            .map(str::trim)
            .take_while(|s| !s.is_empty())
            .any(|s| s == rule),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_bodies_are_found() {
        let src = "fn alpha(x: u32) -> u32 {\n    beta(x)\n}\n\nfn beta(y: u32) -> u32 { y }\n";
        let idx = FileIndex::build("crates/demo/src/lib.rs", src);
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        let (s, e) = idx.fns[0].body.unwrap();
        assert_eq!(idx.text(s), "{");
        assert_eq!(idx.text(e), "}");
        let calls = idx.calls_in(s, e);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].0, "beta");
    }

    #[test]
    fn cfg_test_regions_and_test_attr() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\
                   #[test]\nfn a_test() {}\n";
        let idx = FileIndex::build("crates/demo/src/lib.rs", src);
        let live = idx.fns.iter().find(|f| f.name == "live").unwrap();
        let helper = idx.fns.iter().find(|f| f.name == "helper").unwrap();
        let a_test = idx.fns.iter().find(|f| f.name == "a_test").unwrap();
        assert!(!live.in_test);
        assert!(helper.in_test);
        assert!(a_test.in_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type F = fn(u32) -> u32;\nfn real(f: F) -> u32 { f(1) }\n";
        let idx = FileIndex::build("crates/demo/src/lib.rs", src);
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn integration_test_files_are_all_test() {
        let idx = FileIndex::build("crates/demo/tests/it.rs", "fn t() {}\n");
        assert!(idx.fns[0].in_test);
    }

    #[test]
    fn allows_same_line_and_line_above() {
        let src = "fn f() {\n    bad(); // xtask-allow: some-rule\n    // xtask-allow: other\n    \
                   worse();\n    plain();\n}\n";
        let idx = FileIndex::build("crates/demo/src/lib.rs", src);
        assert!(idx.allowed(2, "some-rule"));
        assert!(!idx.allowed(2, "other"));
        assert!(idx.allowed(4, "other"));
        assert!(!idx.allowed(5, "some-rule"));
    }

    #[test]
    fn attributes_with_bodies_do_not_leak_test_status() {
        // A cfg(test) attr followed by a `use` (ends in `;`) must not
        // mark the next unrelated block as test code.
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { x(); }\n";
        let idx = FileIndex::build("crates/demo/src/lib.rs", src);
        assert!(!idx.fns[0].in_test);
    }
}
