//! Workspace tooling: `cargo run -p xtask -- <check | analyze |
//! trace-check FILE | bench-snapshot [OUT] | bench-diff OLD NEW>`.
//!
//! * `check` — the line-based convention pass described below;
//! * `analyze` — the token-level cross-file static analysis
//!   ([`analyze`]): lock-order cycles, hot-path allocation and
//!   panic reachability, protocol exhaustiveness, observer-hook
//!   balance, gated against the committed
//!   `xtask-analyze-baseline.json`;
//! * `trace-check FILE` — validates a `--trace` JSONL run trace
//!   ([`trace_check`]);
//! * `bench-snapshot [OUT] [--preset-filter PREFIX]` — runs the
//!   calibration bench and records a committed JSON snapshot, optionally
//!   keeping only presets whose abbreviation starts with `PREFIX`
//!   ([`snapshot`]);
//! * `bench-diff OLD NEW` — compares two snapshots: fails on any
//!   biclique-count difference, reports per-preset speedups
//!   ([`benchdiff`]).
//!
//! `check` is a zero-dependency static-analysis pass over every `.rs`
//! file in the workspace, enforcing the repo conventions that `clippy`
//! cannot express (see README.md "Static analysis & invariants"):
//!
//! * **unsafe** — no `unsafe` anywhere, and every crate root
//!   (`src/lib.rs` / `src/main.rs`) carries `#![forbid(unsafe_code)]`;
//! * **lock-unwrap** — no bare `.unwrap()` on `Mutex`/`RwLock` lock
//!   results anywhere outside tests: a panicking worker poisons its
//!   locks, and an `.unwrap()` on the poisoned result turns one
//!   contained panic into a cascade (use
//!   `unwrap_or_else(PoisonError::into_inner)` as the parallel driver
//!   does);
//! * **net-timeout** — non-test code naming the blocking TCP stream type
//!   must set an explicit read timeout somewhere in the same file: a
//!   deadline-less socket read wedges its thread on a stalled peer (the
//!   serve crate's poll-loop pattern);
//! * **println** — no `println!` outside the `cli`, `bench`, and `xtask`
//!   crates (library crates report through sinks and `Stats`);
//! * **doc** — every `pub` item in `mbe` and `bigraph` is documented;
//! * **tuple-return** — no `pub fn` in `mbe` returning `Option<(`…`)` or
//!   a bare `(Vec<`…`)` tuple: results go through the `Report` /
//!   `MbeError` vocabulary of the `Enumeration` API, and only the
//!   deprecated compatibility shims carry explicit escapes;
//! * **todo** — task markers must carry an issue tag, `TODO(#123)`-style.
//!
//! The panic-family rules (`unwrap` / `expect` / `panic` /
//! `index-literal` in the hot-path modules) used to live here as
//! per-line regex scans; they moved to `analyze` where the token
//! stream makes them immune to strings and comments, keeping their
//! rule ids (and so every existing `xtask-allow` escape).
//!
//! Test code (`#[cfg(test)]` regions) is exempt from all rules — the
//! compiler-level `forbid(unsafe_code)` still covers it. Individual
//! lines opt out with `// xtask-allow: <rule>[, <rule>...]` on the same
//! line or on a comment line directly above; every allow must name the
//! rule it suppresses.

#![forbid(unsafe_code)]

mod analyze;
mod benchdiff;
mod index;
mod lexer;
mod snapshot;
mod trace_check;

use std::fmt;
use std::path::{Path, PathBuf};

/// Modules whose panics abort enumeration mid-flight: the panic-family
/// and hot-allocation rules in [`analyze`] apply only here. `obs.rs` and `histogram.rs` qualify because
/// observer hooks and metrics recording run inside every task loop; the
/// serve request path (framing, codec, dispatch) qualifies because a
/// panic there kills a connection thread mid-reply and strands the
/// client. `admission.rs` stays out: its pool setup intentionally
/// panics on spawn failure before any request is accepted.
const HOT_PATHS: &[&str] = &[
    "crates/setops/src/",
    "crates/ptree/src/",
    "crates/mbe/src/mbet.rs",
    "crates/mbe/src/parallel.rs",
    "crates/mbe/src/obs.rs",
    "crates/mbe/src/histogram.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/coordinator.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/health.rs",
    "crates/serve/src/span.rs",
    "crates/serve/src/telemetry.rs",
];

/// Crates allowed to print to stdout (user-facing output or bench
/// reports; `vendor/criterion` is the bench reporter itself).
const PRINTLN_OK: &[&str] =
    &["crates/cli/", "crates/bench/", "crates/xtask/", "vendor/criterion/", "examples/"];

/// Crates whose public API surface must be fully documented.
const DOC_PATHS: &[&str] = &["crates/mbe/src/", "crates/bigraph/src/"];

/// Crates whose `pub fn`s must not return bare tuples (`Option<(`… or
/// `(Vec<`…): the run-control API replaced those signatures with
/// [`Report`]-style results, and new code must not regress to them.
const TUPLE_RETURN_PATHS: &[&str] = &["crates/mbe/src/"];

/// Return-type shapes the `tuple-return` rule bans on `pub fn` lines.
const TUPLE_NEEDLES: &[&str] = &["-> Option<(", "-> (Vec<"];

// Needles are spliced so this file does not flag itself when scanned.
const RULE_UNSAFE: &str = concat!("un", "safe");
const NEEDLE_TODO: &str = concat!("TO", "DO");
const NEEDLE_FIXME: &str = concat!("FIX", "ME");
const FORBID_ATTR: &str = "#![forbid(unsafe_code)]";

/// Lock acquisitions whose `Err` is only ever poisoning: `.unwrap()`ing
/// them cascades one contained panic across every thread that touches
/// the lock afterwards.
const LOCK_UNWRAP_NEEDLES: &[&str] = &[
    concat!(".lock().unwr", "ap()"),
    concat!(".read().unwr", "ap()"),
    concat!(".write().unwr", "ap()"),
];

/// The blocking socket type whose reads wedge forever without a
/// deadline, and the call that sets one. A non-test file mentioning the
/// former must contain the latter (see the `net-timeout` rule).
const NET_TYPE_NEEDLE: &str = concat!("Tcp", "Stream");
const NET_TIMEOUT_NEEDLE: &str = concat!("set_read_timeout", "(Some(");

/// One broken rule at one source line.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => run_check(),
        Some("analyze") => {
            let rest: Vec<String> = args.collect();
            analyze::run(&workspace_root(), &rest)
        }
        Some("trace-check") => match args.next() {
            Some(flag) if flag == "--distributed" => match args.next() {
                Some(dir) => trace_check::run_distributed(&dir),
                None => usage(Some("trace-check --distributed requires a directory")),
            },
            Some(path) => trace_check::run(&path),
            None => usage(Some("trace-check requires a trace file path")),
        },
        Some("bench-snapshot") => {
            let mut out: Option<String> = None;
            let mut filter: Option<String> = None;
            let rest: Vec<String> = args.collect();
            let mut it = rest.into_iter();
            while let Some(arg) = it.next() {
                if arg == "--preset-filter" {
                    match it.next() {
                        Some(f) => filter = Some(f),
                        None => usage(Some("--preset-filter requires a prefix argument")),
                    }
                } else if arg.starts_with("--") {
                    usage(Some(&format!("unknown bench-snapshot flag: {arg}")));
                } else if out.is_none() {
                    out = Some(arg);
                } else {
                    usage(Some(&format!("unexpected bench-snapshot argument: {arg}")));
                }
            }
            snapshot::run(&workspace_root(), out.as_deref(), filter.as_deref())
        }
        Some("bench-diff") => match (args.next(), args.next()) {
            (Some(old), Some(new)) => benchdiff::run(&workspace_root(), &old, &new),
            _ => usage(Some("bench-diff requires OLD and NEW snapshot paths")),
        },
        other => usage(other),
    }
}

/// Prints usage (with an optional offending input) and exits 2.
fn usage(cmd: Option<&str>) -> ! {
    eprintln!(
        "usage: cargo run -p xtask -- \
         <check | analyze [--update-baseline] [--json OUT] | \
         trace-check <FILE | --distributed DIR> | \
         bench-snapshot [OUT] [--preset-filter PREFIX] | bench-diff OLD NEW>"
    );
    if let Some(cmd) = cmd {
        eprintln!("unknown or incomplete command: {cmd}");
    }
    std::process::exit(2);
}

/// The `check` subcommand: the full static-analysis pass.
fn run_check() {
    let root = workspace_root();
    let files = collect_rs_files(&root);
    let mut violations = Vec::new();
    for path in &files {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let rel = path.strip_prefix(&root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        violations.extend(scan_file(&rel, &content));
        violations.extend(check_crate_root(&rel, &content));
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        println!("{v}");
    }
    // The hot-path panic-family rules moved to the token-based engine.
    println!(
        "xtask check: note: the unwrap/expect/panic/index-literal rules now run under \
         `cargo run -p xtask -- analyze`"
    );
    if violations.is_empty() {
        println!("xtask check: {} files clean", files.len());
    } else {
        println!("xtask check: {} violation(s) in {} files", violations.len(), files.len());
        std::process::exit(1);
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Every `.rs` file under `root`, skipping build output and VCS state.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Crate roots must carry the compiler-level unsafe ban; the textual
/// rules below are only the belt on top of that suspenders.
fn check_crate_root(rel: &str, content: &str) -> Option<Violation> {
    let is_root =
        rel == "src/lib.rs" || rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs");
    if is_root && !content.contains(FORBID_ATTR) {
        return Some(Violation {
            path: rel.to_string(),
            line: 1,
            rule: RULE_UNSAFE,
            msg: format!("crate root missing `{FORBID_ATTR}`"),
        });
    }
    None
}

/// Runs every line rule over one file. Pure on `(path, content)` so the
/// self-tests can feed synthetic sources.
fn scan_file(rel: &str, content: &str) -> Vec<Violation> {
    let println_ok = PRINTLN_OK.iter().any(|p| rel.starts_with(p));
    let doc_required = DOC_PATHS.iter().any(|p| rel.starts_with(p));
    let tuple_banned = TUPLE_RETURN_PATHS.iter().any(|p| rel.starts_with(p));
    // `net-timeout` is file-level: the socket mention and the timeout
    // call are usually on different lines, so the requirement is "the
    // file configures one somewhere". Integration tests drive sockets
    // through the library APIs and are exempt wholesale.
    let net_checked = !rel.contains("/tests/");
    let has_net_timeout = content.contains(NET_TIMEOUT_NEEDLE);
    let mut net_line: Option<usize> = None;

    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut test_region: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut prev_allows: Vec<String> = Vec::new();
    let mut has_doc = false;
    let mut attr_depth: i64 = 0;

    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        let allows = parse_allows(raw);
        let code = strip_line_comment(raw);
        let trimmed = code.trim();

        // Enter a `#[cfg(test)] mod ... { ... }` region.
        if test_region.is_none() {
            if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
                pending_cfg_test = true;
            } else if pending_cfg_test && !trimmed.is_empty() && !trimmed.starts_with("#[") {
                if code.contains('{') {
                    test_region = Some(depth);
                }
                pending_cfg_test = false;
            }
        }
        let in_test = test_region.is_some();

        let allowed =
            |rule: &str| allows.iter().any(|a| a == rule) || prev_allows.iter().any(|a| a == rule);

        if !in_test {
            if contains_word(code, RULE_UNSAFE) && !allowed(RULE_UNSAFE) {
                out.push(violation(rel, line, RULE_UNSAFE, &format!("{RULE_UNSAFE} is banned")));
            }
            if LOCK_UNWRAP_NEEDLES.iter().any(|n| code.contains(n)) && !allowed("lock-unwrap") {
                out.push(violation(
                    rel,
                    line,
                    "lock-unwrap",
                    "handle lock poisoning (unwrap_or_else(PoisonError::into_inner)), \
                     don't .unwrap() the lock result",
                ));
            }
            // `contains_word` keeps `eprintln!` (stderr diagnostics, fine
            // in any crate) from tripping the stdout rule.
            if !println_ok && contains_word(code, "println") && !allowed("println") {
                out.push(violation(
                    rel,
                    line,
                    "println",
                    "println! is reserved for cli/bench crates",
                ));
            }
            if doc_required {
                if let Some(item) = pub_item(trimmed) {
                    if !has_doc && !allowed("doc") {
                        out.push(violation(
                            rel,
                            line,
                            "doc",
                            &format!("undocumented pub item: {item}"),
                        ));
                    }
                }
            }
            if tuple_banned
                && code.contains("pub fn")
                && TUPLE_NEEDLES.iter().any(|n| code.contains(n))
                && !allowed("tuple-return")
            {
                out.push(violation(
                    rel,
                    line,
                    "tuple-return",
                    "pub fns in mbe return Report/Result, not bare tuples",
                ));
            }
            if net_checked
                && net_line.is_none()
                && code.contains(NET_TYPE_NEEDLE)
                && !allowed("net-timeout")
            {
                net_line = Some(line);
            }
            if untagged_todo(raw) && !allowed("todo") {
                out.push(violation(
                    rel,
                    line,
                    "todo",
                    &format!("{NEEDLE_TODO}/{NEEDLE_FIXME} requires an issue tag, e.g. {NEEDLE_TODO}(#123)"),
                ));
            }
        }

        // Track doc-comment adjacency for the `doc` rule. Plain `//`
        // comments (e.g. standalone `xtask-allow` markers) between a doc
        // comment and its item do not detach the docs — rustdoc skips
        // them too — and neither does any line of a multi-line attribute
        // (`#[deprecated(` … `)]`), tracked by bracket depth.
        let t = raw.trim_start();
        let attr_continuation = attr_depth > 0;
        if attr_continuation || t.starts_with("#[") {
            attr_depth += code.matches('[').count() as i64 - code.matches(']').count() as i64;
        }
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc") {
            has_doc = true;
        } else if !attr_continuation && !t.starts_with("#[") && !t.starts_with("//") {
            has_doc = false;
        }

        // Track brace depth to find the end of a test region.
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if let Some(d) = test_region {
            if depth <= d {
                test_region = None;
            }
        }

        // A standalone allow comment covers the next line.
        prev_allows = if trimmed.is_empty() { allows } else { Vec::new() };
    }
    if let Some(line) = net_line {
        if !has_net_timeout {
            out.push(violation(
                rel,
                line,
                "net-timeout",
                "blocking socket reads need a deadline: a file using this socket type \
                 must call set_read_timeout(Some(..)) (or carry an xtask-allow)",
            ));
            out.sort_by_key(|v| v.line);
        }
    }
    out
}

fn violation(path: &str, line: usize, rule: &'static str, msg: &str) -> Violation {
    Violation { path: path.to_string(), line, rule, msg: msg.to_string() }
}

/// Rules named by an `xtask-allow:` marker on this line.
fn parse_allows(line: &str) -> Vec<String> {
    match line.find("xtask-allow:") {
        Some(i) => line[i + "xtask-allow:".len()..]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => Vec::new(),
    }
}

/// The line with any `//` comment removed (string literals containing
/// `//` are truncated too — acceptable for a conservative lint).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `true` iff `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_word(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_word(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

/// The pub item a (trimmed) line declares, if any: `pub fn`-style items
/// and pub struct fields. Re-exports (`pub use`) inherit their target's
/// docs and restricted visibility (`pub(crate)`) is not public API.
fn pub_item(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("pub ")?;
    let word: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    // `pub mod name;` takes its docs from the module file's `//!` header,
    // which a line-based scan cannot see — only inline modules are held
    // to the adjacency rule.
    if word == "mod" && trimmed.ends_with(';') {
        return None;
    }
    match word.as_str() {
        "fn" | "struct" | "enum" | "trait" | "mod" | "const" | "static" | "type" => {
            let name: String = rest[word.len()..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            Some(format!("{word} {name}"))
        }
        "use" => None,
        _ => {
            // A struct field: `pub name: Type`.
            let colon = rest.find(':')?;
            let name = rest[..colon].trim();
            let is_ident =
                !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            if is_ident {
                Some(format!("field {name}"))
            } else {
                None
            }
        }
    }
}

/// `true` iff the raw line carries an untagged task marker (the marker
/// word itself, not embedded in a longer identifier).
fn untagged_todo(raw: &str) -> bool {
    let bytes = raw.as_bytes();
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    for needle in [NEEDLE_TODO, NEEDLE_FIXME] {
        let mut from = 0;
        while let Some(pos) = raw[from..].find(needle) {
            let start = from + pos;
            let end = start + needle.len();
            let word_alone = (start == 0 || !is_word(bytes[start - 1]))
                && (end == bytes.len() || !is_word(bytes[end]));
            if word_alone && !raw[end..].starts_with("(#") {
                return true;
            }
            from = start + 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn injected_unsafe_is_flagged_anywhere() {
        let src = "pub fn f(p: *const u8) {\n    unsafe { p.read(); }\n}\n";
        let got = scan_file("crates/gen/src/lib.rs", src);
        assert_eq!(rules(&got), vec![RULE_UNSAFE]);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn allow_comment_suppresses_on_same_and_previous_line() {
        let inline = "fn f() {\n    println!(\"x\"); // xtask-allow: println\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", inline).is_empty());
        let above = "fn f() {\n    // xtask-allow: println\n    println!(\"x\");\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", above).is_empty());
        // An allow for a different rule does not suppress.
        let wrong = "fn f() {\n    println!(\"x\"); // xtask-allow: todo\n}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/lib.rs", wrong)), vec!["println"]);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   println!(\"dbg\");\n    }\n}\n";
        assert!(scan_file("crates/setops/src/lib.rs", src).is_empty());
        // ...and code after the region is scanned again.
        let after = format!("{src}\nfn g() {{\n    println!(\"dbg\");\n}}\n");
        assert_eq!(rules(&scan_file("crates/setops/src/lib.rs", &after)), vec!["println"]);
    }

    #[test]
    fn lock_unwrap_flagged_everywhere_outside_tests() {
        for needle in LOCK_UNWRAP_NEEDLES {
            let src = format!("fn f() -> u32 {{\n    *state{needle}\n}}\n");
            // Applies in every crate, not just hot paths.
            assert_eq!(rules(&scan_file("crates/gen/src/lib.rs", &src)), vec!["lock-unwrap"]);
            assert_eq!(rules(&scan_file("crates/cli/src/main.rs", &src)), vec!["lock-unwrap"]);
        }
        // Recovering the guard from a poisoned lock is the sanctioned form.
        let ok = "fn f() {\n    \
                  let g = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n    \
                  drop(g);\n}\n";
        assert!(scan_file("crates/gen/src/lib.rs", ok).is_empty());
        // Escapes and test regions work as for every other rule.
        let escaped = format!(
            "fn f() -> u32 {{\n    // xtask-allow: lock-unwrap\n    *state{}\n}}\n",
            LOCK_UNWRAP_NEEDLES[0]
        );
        assert!(scan_file("crates/gen/src/lib.rs", &escaped).is_empty());
        let in_test = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f() -> u32 {{\n        *state{}\n    }}\n}}\n",
            LOCK_UNWRAP_NEEDLES[0]
        );
        assert!(scan_file("crates/gen/src/lib.rs", &in_test).is_empty());
        // Hot paths get no special treatment here any more (the
        // token-based unwrap rule lives in `analyze` now).
        let hot = format!("fn f() -> u32 {{\n    *state{}\n}}\n", LOCK_UNWRAP_NEEDLES[0]);
        assert_eq!(rules(&scan_file("crates/mbe/src/parallel.rs", &hot)), vec!["lock-unwrap"]);
    }

    #[test]
    fn println_allowed_only_in_output_crates() {
        let src = "fn f() {\n    println!(\"hi\");\n}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/lib.rs", src)), vec!["println"]);
        assert!(scan_file("crates/cli/src/main.rs", src).is_empty());
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
        // Stderr diagnostics are fine everywhere.
        let stderr = "fn f() {\n    eprintln!(\"hi\");\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", stderr).is_empty());
        assert!(scan_file("crates/serve/src/server.rs", stderr).is_empty());
    }

    #[test]
    fn undocumented_pub_items_flagged_in_api_crates() {
        let src = "pub fn frob() {}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/util.rs", src)), vec!["doc"]);
        assert_eq!(rules(&scan_file("crates/bigraph/src/io.rs", src)), vec!["doc"]);
        // Other crates are not held to the doc rule.
        assert!(scan_file("crates/gen/src/lib.rs", src).is_empty());
        // A doc comment (even under attributes) satisfies it.
        let documented = "/// Frobs.\n#[inline]\npub fn frob() {}\n";
        assert!(scan_file("crates/mbe/src/util.rs", documented).is_empty());
        // Fields count as pub items; `pub use` re-exports do not.
        let field = "/// S.\npub struct S {\n    pub x: u32,\n}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/util.rs", field)), vec!["doc"]);
        assert!(scan_file("crates/mbe/src/lib.rs", "pub use crate::metrics::Stats;\n").is_empty());
    }

    #[test]
    fn tuple_returns_flagged_in_mbe_only() {
        let opt = "/// Docs.\npub fn f() -> Option<(Vec<u32>, u64)> {\n    None\n}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/lib.rs", opt)), vec!["tuple-return"]);
        let tup = "/// Docs.\npub fn f() -> (Vec<u32>, u64) {\n    (Vec::new(), 0)\n}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/extremal.rs", tup)), vec!["tuple-return"]);
        // Other crates may return tuples.
        assert!(scan_file("crates/bigraph/src/order.rs", tup).is_empty());
        // Result-wrapped tuples and non-pub helpers are fine.
        let ok = "/// Docs.\npub fn f() -> Result<(Vec<u32>, u64), ()> {\n    todo_ok()\n}\n\
                  fn g() -> (Vec<u32>, u64) {\n    (Vec::new(), 0)\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn tuple_return_allow_escape_and_test_exemption() {
        let shim = "/// Docs.\n#[deprecated]\n// xtask-allow: tuple-return\n\
                    pub fn f() -> (Vec<u32>, u64) {\n    (Vec::new(), 0)\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", shim).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    \
                       pub fn helper() -> (Vec<u32>, u64) {\n        (Vec::new(), 0)\n    }\n}\n";
        assert!(scan_file("crates/mbe/src/lib.rs", in_test).is_empty());
    }

    #[test]
    fn plain_comment_between_docs_and_item_keeps_docs() {
        let src = "/// Docs.\n// xtask-allow: tuple-return\npub fn f() {}\n";
        assert!(scan_file("crates/mbe/src/util.rs", src).is_empty());
    }

    #[test]
    fn multiline_attribute_between_docs_and_item_keeps_docs() {
        let src = "/// Docs.\n#[deprecated(\n    note = \"gone\"\n)]\npub fn f() {}\n";
        assert!(scan_file("crates/mbe/src/util.rs", src).is_empty());
        // Without docs the attribute does not count as documentation.
        let undocumented = "#[deprecated(\n    note = \"gone\"\n)]\npub fn f() {}\n";
        assert_eq!(rules(&scan_file("crates/mbe/src/util.rs", undocumented)), vec!["doc"]);
    }

    #[test]
    fn net_reads_require_explicit_timeout() {
        let bad =
            format!("use std::net::{0};\n\nfn f(s: &{0}) {{\n    drop(s);\n}}\n", NET_TYPE_NEEDLE);
        let got = scan_file("crates/serve/src/client.rs", &bad);
        assert_eq!(rules(&got), vec!["net-timeout"]);
        assert_eq!(got[0].line, 1, "anchors to the first mention");
        // A file that configures a read deadline anywhere is fine.
        let good = format!(
            "{bad}fn g(s: &{}) {{\n    s.{}POLL)).ok();\n}}\n",
            NET_TYPE_NEEDLE, NET_TIMEOUT_NEEDLE
        );
        assert!(scan_file("crates/serve/src/client.rs", &good).is_empty());
        // Integration tests, comments, and cfg(test) regions are exempt.
        assert!(scan_file("crates/serve/tests/service.rs", &bad).is_empty());
        let comment_only = format!("// speaks {} on the wire\nfn f() {{}}\n", NET_TYPE_NEEDLE);
        assert!(scan_file("crates/serve/src/client.rs", &comment_only).is_empty());
        let in_test = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f(s: &std::net::{}) {{\n        drop(s);\n    }}\n}}\n",
            NET_TYPE_NEEDLE
        );
        assert!(scan_file("crates/serve/src/client.rs", &in_test).is_empty());
        // The escape hatch works as for line rules.
        let escaped = format!(
            "// xtask-allow: net-timeout\nfn f(s: &std::net::{}) {{\n    drop(s);\n}}\n",
            NET_TYPE_NEEDLE
        );
        assert!(scan_file("crates/serve/src/client.rs", &escaped).is_empty());
    }

    #[test]
    fn untagged_markers_flagged_tagged_ok() {
        let tag_less = format!("fn f() {{}} // {}: fix this\n", NEEDLE_TODO);
        assert_eq!(rules(&scan_file("crates/gen/src/lib.rs", &tag_less)), vec!["todo"]);
        let tagged = format!("fn f() {{}} // {}(#12): fix this\n", NEEDLE_TODO);
        assert!(scan_file("crates/gen/src/lib.rs", &tagged).is_empty());
        let fixme = format!("// {}: broken\n", NEEDLE_FIXME);
        assert_eq!(rules(&scan_file("crates/gen/src/lib.rs", &fixme)), vec!["todo"]);
    }

    #[test]
    fn crate_roots_require_forbid_attr() {
        let v = check_crate_root("crates/gen/src/lib.rs", "pub fn f() {}\n");
        assert!(v.is_some());
        let ok = format!("{FORBID_ATTR}\npub fn f() {{}}\n");
        assert!(check_crate_root("crates/gen/src/lib.rs", &ok).is_none());
        // Non-root files are not checked.
        assert!(check_crate_root("crates/gen/src/er.rs", "fn f() {}\n").is_none());
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(!contains_word("forbid(unsafe_code)", RULE_UNSAFE));
        assert!(contains_word("an unsafe block", RULE_UNSAFE));
        assert!(contains_word("unsafe{", RULE_UNSAFE));
    }
}
