//! `trace-check FILE`: validates a JSONL run trace written by
//! `JsonlTraceObserver` (`mbe-cli enumerate --trace FILE`).
//!
//! Checks, in order:
//!
//! * every line parses as a flat JSON object of string and unsigned
//!   integer values (the only shapes schema v1 emits);
//! * every event carries `v` (== the supported schema version), `t_us`,
//!   and `ev`;
//! * timestamps are non-decreasing across the whole file;
//! * the first event is `run_start` and the last is `run_end`;
//! * per worker, `task_start`/`task_finish` alternate and agree on the
//!   task id — a start left open at end-of-file is tolerated only when
//!   the final `run_end` reports a non-`completed` stop (the driver now
//!   finishes panicked tasks too, but traces from runs killed mid-task
//!   — e.g. an aborted process — legitimately end on an open start);
//! * an empty file passes (a run can legitimately stop before any event
//!   is flushed only if nothing was written at all).
//!
//! The checker is hand-rolled and zero-dependency like the writer; the
//! schema version it understands is pinned here and must move in
//! lockstep with `mbe::obs::TRACE_SCHEMA_VERSION`.

use std::collections::HashMap;

/// The trace schema version this checker understands (mirrors
/// `mbe::obs::TRACE_SCHEMA_VERSION`; xtask is intentionally
/// dependency-free, so the constant is pinned rather than imported).
const SUPPORTED_VERSION: u64 = 1;

/// A scalar JSON value of the trace schema.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(u64),
    Str(String),
}

impl Value {
    fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Num(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

/// What a valid trace looked like, for the success report.
#[derive(Debug)]
struct Summary {
    events: usize,
    final_stop: Option<String>,
}

/// Entry point for the `trace-check` subcommand: exits 0 on a valid
/// trace, 1 on a malformed one, 2 when the file cannot be read.
pub fn run(path: &str) -> ! {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace-check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate(&content) {
        Ok(s) => {
            match &s.final_stop {
                Some(stop) => {
                    println!("trace-check: {path}: {} event(s) ok (stop: {stop})", s.events)
                }
                None => println!("trace-check: {path}: empty trace ok"),
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("trace-check: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Validates a whole trace; `Err` carries a `line N: reason` message.
fn validate(content: &str) -> Result<Summary, String> {
    let mut events = 0usize;
    let mut last_us = 0u64;
    let mut first_ev: Option<String> = None;
    let mut last_ev: Option<String> = None;
    let mut final_stop: Option<String> = None;
    // Worker id -> task id of the task it currently has open.
    let mut open: HashMap<u64, u64> = HashMap::new();

    for (idx, line) in content.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {n}: blank line inside trace"));
        }
        let obj = parse_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);

        let v = get("v")
            .and_then(Value::as_num)
            .ok_or(format!("line {n}: missing numeric `v` field"))?;
        if v != SUPPORTED_VERSION {
            return Err(format!("line {n}: schema version {v}, expected {SUPPORTED_VERSION}"));
        }
        let t_us = get("t_us")
            .and_then(Value::as_num)
            .ok_or(format!("line {n}: missing numeric `t_us` field"))?;
        if t_us < last_us {
            return Err(format!("line {n}: timestamp {t_us}us goes backwards (last {last_us}us)"));
        }
        last_us = t_us;
        let ev = get("ev")
            .and_then(Value::as_str)
            .ok_or(format!("line {n}: missing string `ev` field"))?
            .to_string();

        match ev.as_str() {
            "task_start" | "task_finish" => {
                let w = get("w")
                    .and_then(Value::as_num)
                    .ok_or(format!("line {n}: {ev} without numeric `w`"))?;
                let task = get("task")
                    .and_then(Value::as_num)
                    .ok_or(format!("line {n}: {ev} without numeric `task`"))?;
                if ev == "task_start" {
                    if let Some(prev) = open.insert(w, task) {
                        return Err(format!(
                            "line {n}: worker {w} starts task {task} while task {prev} is open"
                        ));
                    }
                } else {
                    match open.remove(&w) {
                        Some(t) if t == task => {}
                        Some(t) => {
                            return Err(format!(
                                "line {n}: worker {w} finishes task {task} but task {t} is open"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "line {n}: worker {w} finishes task {task} without a start"
                            ));
                        }
                    }
                }
            }
            "run_end" => {
                final_stop = Some(
                    get("stop")
                        .and_then(Value::as_str)
                        .ok_or(format!("line {n}: run_end without string `stop`"))?
                        .to_string(),
                );
            }
            _ => {}
        }

        if first_ev.is_none() {
            first_ev = Some(ev.clone());
        }
        last_ev = Some(ev);
        events += 1;
    }

    if events == 0 {
        return Ok(Summary { events, final_stop: None });
    }
    match first_ev.as_deref() {
        Some("run_start") => {}
        Some(other) => return Err(format!("first event is `{other}`, expected `run_start`")),
        None => {}
    }
    match last_ev.as_deref() {
        Some("run_end") => {}
        Some(other) => return Err(format!("last event is `{other}`, expected `run_end`")),
        None => {}
    }
    if !open.is_empty() {
        // The driver pairs every start with a finish (panicked tasks
        // included), but a run killed mid-task — aborted process, lost
        // write — can still end on an open start; tolerate that only
        // when the run itself reports a non-completed stop.
        let completed = final_stop.as_deref() == Some("completed");
        if completed {
            let mut workers: Vec<u64> = open.keys().copied().collect();
            workers.sort_unstable();
            return Err(format!(
                "run completed but worker(s) {workers:?} have unfinished task_start events"
            ));
        }
    }
    Ok(Summary { events, final_stop })
}

/// Parses one `{"key":value,...}` line of the trace schema: flat object,
/// string keys, values either unsigned integers or escape-free strings.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("not a JSON object".to_string())?;
    let mut out = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key.strip_prefix(':').ok_or(format!("expected `:` after key {key:?}"))?;
        let (value, after_value) = parse_value(rest)?;
        out.push((key, value));
        rest = match after_value.strip_prefix(',') {
            Some(r) if !r.is_empty() => r,
            Some(_) => return Err("trailing comma".to_string()),
            None if after_value.is_empty() => after_value,
            None => return Err(format!("expected `,` before {after_value:?}")),
        };
    }
    if out.is_empty() {
        return Err("empty object".to_string());
    }
    Ok(out)
}

/// Parses a leading `"..."` (no escapes — the writer never emits any).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = s.strip_prefix('"').ok_or(format!("expected string at {s:?}"))?;
    let end = rest.find('"').ok_or("unterminated string".to_string())?;
    let inner = &rest[..end];
    if inner.contains('\\') {
        return Err(format!("unexpected escape in string {inner:?}"));
    }
    Ok((inner.to_string(), &rest[end + 1..]))
}

/// Parses a leading value: an unsigned integer or a string.
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    if s.starts_with('"') {
        let (v, rest) = parse_string(s)?;
        return Ok((Value::Str(v), rest));
    }
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return Err(format!("expected number or string at {s:?}"));
    }
    let n: u64 = s[..digits].parse().map_err(|e| format!("bad number: {e}"))?;
    Ok((Value::Num(n), &s[digits..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"v\":1,\"t_us\":0,\"ev\":\"run_start\",\"alg\":\"MBET\",\"threads\":2,\"resumed\":0}\n",
        "{\"v\":1,\"t_us\":5,\"ev\":\"segment_start\",\"driver\":\"parallel\",\"workers\":2,\"seeded\":3,\"resumed\":0}\n",
        "{\"v\":1,\"t_us\":9,\"ev\":\"task_start\",\"w\":0,\"task\":1,\"kind\":\"root\"}\n",
        "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":1,\"task\":2,\"kind\":\"root\"}\n",
        "{\"v\":1,\"t_us\":20,\"ev\":\"task_finish\",\"w\":0,\"task\":1,\"kind\":\"root\",\"us\":11,\"nodes\":4,\"emitted\":2,\"depth\":1}\n",
        "{\"v\":1,\"t_us\":21,\"ev\":\"task_finish\",\"w\":1,\"task\":2,\"kind\":\"root\",\"us\":9,\"nodes\":3,\"emitted\":1,\"depth\":1}\n",
        "{\"v\":1,\"t_us\":30,\"ev\":\"segment_end\",\"stop\":\"completed\",\"nodes\":7,\"emitted\":3}\n",
        "{\"v\":1,\"t_us\":31,\"ev\":\"run_end\",\"stop\":\"completed\",\"nodes\":7,\"emitted\":3,\"tasks\":2}\n",
    );

    #[test]
    fn accepts_a_wellformed_trace() {
        let s = validate(GOOD).expect("valid");
        assert_eq!(s.events, 8);
        assert_eq!(s.final_stop.as_deref(), Some("completed"));
    }

    #[test]
    fn accepts_an_empty_trace() {
        let s = validate("").expect("valid");
        assert_eq!(s.events, 0);
    }

    #[test]
    fn rejects_nonmonotone_timestamps() {
        let bad = GOOD.replace("\"t_us\":21", "\"t_us\":19");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        assert!(validate("not json\n").is_err());
        assert!(validate("{\"v\":1,\"t_us\":0}\n").unwrap_err().contains("ev"));
        let wrong_v = GOOD.replace("\"v\":1", "\"v\":9");
        assert!(validate(&wrong_v).unwrap_err().contains("schema version"));
    }

    #[test]
    fn rejects_unbalanced_tasks_on_completed_runs() {
        // Remove worker 1's finish: dangling start on a completed run.
        let dangling: String = GOOD
            .lines()
            .filter(|l| !l.contains("\"task_finish\",\"w\":1"))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let err = validate(&dangling).unwrap_err();
        assert!(err.contains("unfinished"), "{err}");
        // The same dangling start is fine when the run did not complete.
        let panicked = dangling.replace(
            "\"ev\":\"run_end\",\"stop\":\"completed\"",
            "\"ev\":\"run_end\",\"stop\":\"worker-panicked\"",
        );
        let panicked = panicked.replace(
            "\"ev\":\"segment_end\",\"stop\":\"completed\"",
            "\"ev\":\"segment_end\",\"stop\":\"worker-panicked\"",
        );
        assert!(validate(&panicked).is_ok());
    }

    #[test]
    fn rejects_misordered_endpoints() {
        let no_start = GOOD.lines().skip(1).map(|l| format!("{l}\n")).collect::<String>();
        assert!(validate(&no_start).unwrap_err().contains("run_start"));
        // The first 7 lines end at segment_end with all task pairs closed,
        // so the endpoint rule is what fires.
        let no_end: String = GOOD.lines().take(7).map(|l| format!("{l}\n")).collect();
        assert!(validate(&no_end).unwrap_err().contains("run_end"));
    }

    #[test]
    fn rejects_double_start_and_finish_mismatch() {
        let double = GOOD.replace(
            "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":1,\"task\":2,\"kind\":\"root\"}",
            "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":0,\"task\":2,\"kind\":\"root\"}",
        );
        assert!(validate(&double).unwrap_err().contains("while task"));
        let mismatch = GOOD.replace(
            "\"ev\":\"task_finish\",\"w\":1,\"task\":2",
            "\"ev\":\"task_finish\",\"w\":1,\"task\":7",
        );
        assert!(validate(&mismatch).unwrap_err().contains("is open"));
    }

    #[test]
    fn parser_handles_the_schema_shapes() {
        let obj = parse_object("{\"a\":1,\"b\":\"x\"}").expect("parses");
        assert_eq!(
            obj,
            vec![("a".to_string(), Value::Num(1)), ("b".to_string(), Value::Str("x".to_string()))]
        );
        assert!(parse_object("{}").is_err());
        assert!(parse_object("{\"a\":1,}").is_err());
        assert!(parse_object("{\"a\":-1}").is_err(), "schema v1 has no negative numbers");
        assert!(parse_object("{\"a\":{\"b\":1}}").is_err(), "schema v1 is flat");
    }
}
