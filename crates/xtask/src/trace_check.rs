//! `trace-check FILE`: validates a JSONL run trace written by
//! `JsonlTraceObserver` (`mbe-cli enumerate --trace FILE`).
//! `trace-check --distributed DIR`: additionally joins a coordinator
//! span log against the worker run traces sharing its directory.
//!
//! Single-file checks, in order:
//!
//! * every line parses as a flat JSON object of string and unsigned
//!   integer values (the only shapes the schema emits);
//! * every event carries `v` (a supported schema version, uniform
//!   across the file), `t_us`, and `ev`;
//! * schema v2 requires the `run_start` header to carry a wall-clock
//!   `anchor` field (v1 headers predate it and stay valid);
//! * timestamps are non-decreasing across the whole file;
//! * the first event is `run_start` and the last is `run_end`;
//! * per worker, `task_start`/`task_finish` alternate and agree on the
//!   task id — a start left open at end-of-file is tolerated only when
//!   the final `run_end` reports a non-`completed` stop (the driver now
//!   finishes panicked tasks too, but traces from runs killed mid-task
//!   — e.g. an aborted process — legitimately end on an open start);
//! * an empty file passes (a run can legitimately stop before any event
//!   is flushed only if nothing was written at all).
//!
//! Distributed checks (see [`validate_distributed`]) classify every
//! `*.jsonl` in the directory by its first event — `coord_start` marks
//! a coordinator span log, `run_start` a worker run trace — validate
//! the span log's internal invariants (unique spans, per-shard epoch
//! monotonicity, merges referencing real dispatches), and join every
//! merged span to exactly one fully-valid worker trace via the
//! `trace`/`parent` header fields. Worker traces from unmerged attempts
//! may be truncated (a killed worker flushes nothing), so they are
//! classified but not body-checked.
//!
//! The checker is hand-rolled and zero-dependency like the writer; the
//! schema versions it understands are pinned here and must move in
//! lockstep with `mbe::obs::TRACE_SCHEMA_VERSION`.

use std::collections::HashMap;

/// The trace schema versions this checker understands (the newest
/// mirrors `mbe::obs::TRACE_SCHEMA_VERSION`; xtask is intentionally
/// dependency-free, so the constants are pinned rather than imported).
const SUPPORTED_VERSIONS: &[u64] = &[1, 2];

/// First schema version whose `run_start`/`coord_start` header carries
/// the mandatory wall-clock `anchor` field.
const ANCHOR_SINCE: u64 = 2;

/// A scalar JSON value of the trace schema.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(u64),
    Str(String),
}

impl Value {
    fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Num(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

/// What a valid trace looked like, for the success report.
#[derive(Debug)]
struct Summary {
    events: usize,
    final_stop: Option<String>,
}

/// Entry point for the `trace-check` subcommand: exits 0 on a valid
/// trace, 1 on a malformed one, 2 when the file cannot be read.
pub fn run(path: &str) -> ! {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace-check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate(&content) {
        Ok(s) => {
            match &s.final_stop {
                Some(stop) => {
                    println!("trace-check: {path}: {} event(s) ok (stop: {stop})", s.events)
                }
                None => println!("trace-check: {path}: empty trace ok"),
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("trace-check: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Validates a whole trace; `Err` carries a `line N: reason` message.
fn validate(content: &str) -> Result<Summary, String> {
    let mut events = 0usize;
    let mut last_us = 0u64;
    let mut file_version: Option<u64> = None;
    let mut first_ev: Option<String> = None;
    let mut last_ev: Option<String> = None;
    let mut final_stop: Option<String> = None;
    // Worker id -> task id of the task it currently has open.
    let mut open: HashMap<u64, u64> = HashMap::new();

    for (idx, line) in content.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {n}: blank line inside trace"));
        }
        let obj = parse_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);

        let v = check_version(&mut file_version, get("v").and_then(Value::as_num))
            .map_err(|e| format!("line {n}: {e}"))?;
        let t_us = get("t_us")
            .and_then(Value::as_num)
            .ok_or(format!("line {n}: missing numeric `t_us` field"))?;
        if t_us < last_us {
            return Err(format!("line {n}: timestamp {t_us}us goes backwards (last {last_us}us)"));
        }
        last_us = t_us;
        let ev = get("ev")
            .and_then(Value::as_str)
            .ok_or(format!("line {n}: missing string `ev` field"))?
            .to_string();

        match ev.as_str() {
            "run_start" if v >= ANCHOR_SINCE && get("anchor").and_then(Value::as_num).is_none() => {
                return Err(format!("line {n}: schema v{v} run_start without numeric `anchor`"));
            }
            "task_start" | "task_finish" => {
                let w = get("w")
                    .and_then(Value::as_num)
                    .ok_or(format!("line {n}: {ev} without numeric `w`"))?;
                let task = get("task")
                    .and_then(Value::as_num)
                    .ok_or(format!("line {n}: {ev} without numeric `task`"))?;
                if ev == "task_start" {
                    if let Some(prev) = open.insert(w, task) {
                        return Err(format!(
                            "line {n}: worker {w} starts task {task} while task {prev} is open"
                        ));
                    }
                } else {
                    match open.remove(&w) {
                        Some(t) if t == task => {}
                        Some(t) => {
                            return Err(format!(
                                "line {n}: worker {w} finishes task {task} but task {t} is open"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "line {n}: worker {w} finishes task {task} without a start"
                            ));
                        }
                    }
                }
            }
            "run_end" => {
                final_stop = Some(
                    get("stop")
                        .and_then(Value::as_str)
                        .ok_or(format!("line {n}: run_end without string `stop`"))?
                        .to_string(),
                );
            }
            _ => {}
        }

        if first_ev.is_none() {
            first_ev = Some(ev.clone());
        }
        last_ev = Some(ev);
        events += 1;
    }

    if events == 0 {
        return Ok(Summary { events, final_stop: None });
    }
    match first_ev.as_deref() {
        Some("run_start") => {}
        Some(other) => return Err(format!("first event is `{other}`, expected `run_start`")),
        None => {}
    }
    match last_ev.as_deref() {
        Some("run_end") => {}
        Some(other) => return Err(format!("last event is `{other}`, expected `run_end`")),
        None => {}
    }
    if !open.is_empty() {
        // The driver pairs every start with a finish (panicked tasks
        // included), but a run killed mid-task — aborted process, lost
        // write — can still end on an open start; tolerate that only
        // when the run itself reports a non-completed stop.
        let completed = final_stop.as_deref() == Some("completed");
        if completed {
            let mut workers: Vec<u64> = open.keys().copied().collect();
            workers.sort_unstable();
            return Err(format!(
                "run completed but worker(s) {workers:?} have unfinished task_start events"
            ));
        }
    }
    Ok(Summary { events, final_stop })
}

/// Folds one line's `v` field into the file-wide version: it must be a
/// supported schema version and, once seen, every later line must agree.
fn check_version(file_version: &mut Option<u64>, v: Option<u64>) -> Result<u64, String> {
    let v = v.ok_or("missing numeric `v` field")?;
    if !SUPPORTED_VERSIONS.contains(&v) {
        return Err(format!("schema version {v}, expected one of {SUPPORTED_VERSIONS:?}"));
    }
    match *file_version {
        Some(seen) if seen != v => {
            Err(format!("schema version {v} differs from the file's version {seen}"))
        }
        _ => {
            *file_version = Some(v);
            Ok(v)
        }
    }
}

/// One parsed coordinator span log: the join keys the distributed
/// checker needs after the log's internal invariants have passed.
#[derive(Debug)]
struct CoordLog {
    name: String,
    trace: u64,
    /// span id -> (shard, epoch) it was dispatched under.
    spans: HashMap<u64, (u64, u64)>,
    /// Accepted merges: shard -> span id.
    merged: HashMap<u64, u64>,
}

/// Validates one coordinator span log (`coord_start` … `coord_end`).
fn validate_span_log(name: &str, content: &str) -> Result<CoordLog, String> {
    let mut last_us = 0u64;
    let mut file_version: Option<u64> = None;
    let mut spans: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut merged: HashMap<u64, u64> = HashMap::new();
    let mut last_epoch: HashMap<u64, u64> = HashMap::new();
    let mut header: Option<(u64, u64)> = None; // (trace, shards)
    let mut footer: Option<(String, u64, u64, u64, u64)> = None;
    let (mut retries, mut resteals, mut speculated, mut fallback_claimed) =
        (0u64, 0u64, 0u64, 0u64);
    let total = content.lines().count();

    for (idx, line) in content.lines().enumerate() {
        let n = idx + 1;
        let obj = parse_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| {
            get(key).and_then(Value::as_num).ok_or(format!("line {n}: missing numeric `{key}`"))
        };

        let v = check_version(&mut file_version, get("v").and_then(Value::as_num))
            .map_err(|e| format!("line {n}: {e}"))?;
        let t_us = num("t_us")?;
        if t_us < last_us {
            return Err(format!("line {n}: timestamp {t_us}us goes backwards (last {last_us}us)"));
        }
        last_us = t_us;
        let ev = get("ev")
            .and_then(Value::as_str)
            .ok_or(format!("line {n}: missing string `ev` field"))?;

        if n == 1 && ev != "coord_start" {
            return Err(format!("first event is `{ev}`, expected `coord_start`"));
        }
        if n == total && ev != "coord_end" {
            return Err(format!("last event is `{ev}`, expected `coord_end`"));
        }

        match ev {
            "coord_start" => {
                if header.is_some() {
                    return Err(format!("line {n}: duplicate coord_start"));
                }
                if v >= ANCHOR_SINCE {
                    num("anchor")?;
                }
                num("workers")?;
                header = Some((num("trace")?, num("shards")?));
            }
            "dispatch" => {
                let (shard, epoch) = (num("shard")?, num("epoch")?);
                num("worker")?;
                let span = num("span")?;
                let shards = header.map(|(_, s)| s).unwrap_or(0);
                if shard >= shards {
                    return Err(format!("line {n}: shard {shard} out of range (shards={shards})"));
                }
                if spans.insert(span, (shard, epoch)).is_some() {
                    return Err(format!("line {n}: span {span} dispatched twice"));
                }
                let prev = last_epoch.entry(shard).or_insert(epoch);
                if epoch < *prev {
                    return Err(format!(
                        "line {n}: shard {shard} dispatched at epoch {epoch} after epoch {prev}"
                    ));
                }
                *prev = epoch;
            }
            "merge" | "discard" => {
                let (shard, epoch) = (num("shard")?, num("epoch")?);
                let span = num("span")?;
                match spans.get(&span) {
                    Some(&(s, e)) if s == shard && e == epoch => {}
                    Some(&(s, e)) => {
                        return Err(format!(
                            "line {n}: {ev} references span {span} dispatched as \
                             shard {s} epoch {e}, not shard {shard} epoch {epoch}"
                        ));
                    }
                    None => {
                        return Err(format!("line {n}: {ev} references undispatched span {span}"));
                    }
                }
                if ev == "merge" {
                    num("emitted")?;
                    if let Some(prev) = merged.insert(shard, span) {
                        return Err(format!(
                            "line {n}: shard {shard} merged twice (spans {prev} and {span})"
                        ));
                    }
                }
            }
            "retry" => {
                num("shard")?;
                num("epoch")?;
                retries += 1;
            }
            "resteal" => {
                num("shard")?;
                num("epoch")?;
                resteals += 1;
            }
            "speculate" => {
                num("shard")?;
                num("epoch")?;
                speculated += 1;
            }
            "fallback" => {
                fallback_claimed += num("claimed")?;
            }
            "coord_end" => {
                if footer.is_some() {
                    return Err(format!("line {n}: duplicate coord_end"));
                }
                let stop = get("stop")
                    .and_then(Value::as_str)
                    .ok_or(format!("line {n}: coord_end without string `stop`"))?
                    .to_string();
                footer = Some((
                    stop,
                    num("retries")?,
                    num("resteals")?,
                    num("speculated")?,
                    num("degraded")?,
                ));
            }
            other => return Err(format!("line {n}: unknown span-log event `{other}`")),
        }
    }

    let (trace, shards) = header.ok_or("empty span log (no coord_start)".to_string())?;
    let (stop, f_retries, f_resteals, f_speculated, degraded) =
        footer.ok_or("span log never reaches coord_end".to_string())?;
    if (f_retries, f_resteals, f_speculated) != (retries, resteals, speculated) {
        return Err(format!(
            "coord_end counters ({f_retries} retries, {f_resteals} resteals, \
             {f_speculated} speculated) disagree with the event stream \
             ({retries}, {resteals}, {speculated})"
        ));
    }
    // A clean completion with no degradation and no locally-claimed
    // shards must account for every shard with exactly one merge.
    if stop == "completed"
        && degraded == 0
        && fallback_claimed == 0
        && merged.len() as u64 != shards
    {
        return Err(format!(
            "run completed cleanly but only {} of {shards} shards were merged",
            merged.len()
        ));
    }
    Ok(CoordLog { name: name.to_string(), trace, spans, merged })
}

/// The `trace`/`parent` header context of one worker run trace, plus
/// whether the body was judged (only merged attempts are body-checked).
#[derive(Debug)]
struct WorkerHeader {
    context: Option<(u64, u64)>,
}

/// Parses just the `run_start` header of a worker trace: version,
/// anchor (v2+), and the optional distributed trace context.
fn worker_header(content: &str) -> Result<WorkerHeader, String> {
    let first = content.lines().next().ok_or("empty worker trace".to_string())?;
    let obj = parse_object(first).map_err(|e| format!("line 1: {e}"))?;
    let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let v = check_version(&mut None, get("v").and_then(Value::as_num))
        .map_err(|e| format!("line 1: {e}"))?;
    if get("ev").and_then(Value::as_str) != Some("run_start") {
        return Err("line 1: worker trace must open with run_start".to_string());
    }
    if v >= ANCHOR_SINCE && get("anchor").and_then(Value::as_num).is_none() {
        return Err(format!("line 1: schema v{v} run_start without numeric `anchor`"));
    }
    let context =
        match (get("trace").and_then(Value::as_num), get("parent").and_then(Value::as_num)) {
            (Some(t), Some(p)) => Some((t, p)),
            (None, None) => None,
            _ => {
                return Err("line 1: run_start carries `trace` without `parent` (or vice versa)"
                    .to_string())
            }
        };
    Ok(WorkerHeader { context })
}

/// What a valid distributed trace directory looked like.
#[derive(Debug, Default)]
struct DistSummary {
    coord_logs: usize,
    worker_traces: usize,
    joined_spans: usize,
    lenient: usize,
    standalone: usize,
}

/// Validates a directory's worth of `(file name, content)` pairs as one
/// distributed trace set. See the module docs for the invariants.
fn validate_distributed(files: &[(String, String)]) -> Result<DistSummary, String> {
    let mut coords: Vec<CoordLog> = Vec::new();
    let mut workers: Vec<(String, WorkerHeader, &str)> = Vec::new();
    for (name, content) in files {
        if content.trim().is_empty() {
            continue;
        }
        let first = content.lines().next().unwrap_or_default();
        if first.contains("\"ev\":\"coord_start\"") {
            coords.push(validate_span_log(name, content).map_err(|e| format!("{name}: {e}"))?);
        } else {
            let header = worker_header(content).map_err(|e| format!("{name}: {e}"))?;
            workers.push((name.clone(), header, content.as_str()));
        }
    }
    if coords.is_empty() {
        return Err("no coordinator span log (coord_start) found in the directory".to_string());
    }
    let mut by_trace: HashMap<u64, &CoordLog> = HashMap::new();
    for c in &coords {
        if let Some(prev) = by_trace.insert(c.trace, c) {
            return Err(format!("{} and {} both claim trace id {}", prev.name, c.name, c.trace));
        }
    }

    let mut summary = DistSummary {
        coord_logs: coords.len(),
        worker_traces: workers.len(),
        ..DistSummary::default()
    };
    // Every context-carrying worker trace must point at a dispatched
    // span of a coordinator log in this directory.
    for (name, header, _) in &workers {
        let Some((t, p)) = header.context else {
            summary.standalone += 1;
            continue;
        };
        let coord = by_trace.get(&t).ok_or(format!("{name}: references unknown trace id {t}"))?;
        if !coord.spans.contains_key(&p) {
            return Err(format!(
                "{name}: parent span {p} was never dispatched by {} (trace {t})",
                coord.name
            ));
        }
    }
    // Every merged span joins exactly one fully-valid worker trace.
    for coord in &coords {
        for (&shard, &span) in &coord.merged {
            let matches: Vec<&(String, WorkerHeader, &str)> =
                workers.iter().filter(|(_, h, _)| h.context == Some((coord.trace, span))).collect();
            match matches.as_slice() {
                [(name, _, content)] => {
                    validate(content).map_err(|e| {
                        format!("{name} (merged shard {shard} of {}): {e}", coord.name)
                    })?;
                    summary.joined_spans += 1;
                }
                [] => {
                    return Err(format!(
                        "{}: merged shard {shard} (span {span}) has no worker trace",
                        coord.name
                    ));
                }
                many => {
                    let names: Vec<&str> = many.iter().map(|(n, _, _)| n.as_str()).collect();
                    return Err(format!(
                        "{}: merged shard {shard} (span {span}) matches {} worker traces: {names:?}",
                        coord.name,
                        many.len()
                    ));
                }
            }
        }
    }
    // Unmerged attempts (retried, discarded, or killed mid-run) may
    // leave truncated traces behind; they are counted, not judged.
    let joined: std::collections::HashSet<(u64, u64)> =
        coords.iter().flat_map(|c| c.merged.values().map(move |&s| (c.trace, s))).collect();
    for (name, header, content) in &workers {
        match header.context {
            Some(ctx) if !joined.contains(&ctx) => summary.lenient += 1,
            None => {
                validate(content).map_err(|e| format!("{name}: {e}"))?;
            }
            _ => {}
        }
    }
    Ok(summary)
}

/// Entry point for `trace-check --distributed DIR`: exits 0 when the
/// directory holds a joinable distributed trace set, 1 when it does
/// not, 2 when the directory cannot be read.
pub fn run_distributed(dir: &str) -> ! {
    let mut files: Vec<(String, String)> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("trace-check: cannot read directory {dir}: {e}");
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        match std::fs::read_to_string(&path) {
            Ok(content) => files.push((name, content)),
            Err(e) => {
                eprintln!("trace-check: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    files.sort();
    match validate_distributed(&files) {
        Ok(s) => {
            println!(
                "trace-check: {dir}: {} coordinator log(s), {} worker trace(s); \
                 {} merged span(s) joined, {} unmerged attempt(s) tolerated, \
                 {} standalone trace(s) validated",
                s.coord_logs, s.worker_traces, s.joined_spans, s.lenient, s.standalone
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("trace-check: {dir}: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses one `{"key":value,...}` line of the trace schema: flat object,
/// string keys, values either unsigned integers or escape-free strings.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("not a JSON object".to_string())?;
    let mut out = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key.strip_prefix(':').ok_or(format!("expected `:` after key {key:?}"))?;
        let (value, after_value) = parse_value(rest)?;
        out.push((key, value));
        rest = match after_value.strip_prefix(',') {
            Some(r) if !r.is_empty() => r,
            Some(_) => return Err("trailing comma".to_string()),
            None if after_value.is_empty() => after_value,
            None => return Err(format!("expected `,` before {after_value:?}")),
        };
    }
    if out.is_empty() {
        return Err("empty object".to_string());
    }
    Ok(out)
}

/// Parses a leading `"..."` (no escapes — the writer never emits any).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = s.strip_prefix('"').ok_or(format!("expected string at {s:?}"))?;
    let end = rest.find('"').ok_or("unterminated string".to_string())?;
    let inner = &rest[..end];
    if inner.contains('\\') {
        return Err(format!("unexpected escape in string {inner:?}"));
    }
    Ok((inner.to_string(), &rest[end + 1..]))
}

/// Parses a leading value: an unsigned integer or a string.
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    if s.starts_with('"') {
        let (v, rest) = parse_string(s)?;
        return Ok((Value::Str(v), rest));
    }
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return Err(format!("expected number or string at {s:?}"));
    }
    let n: u64 = s[..digits].parse().map_err(|e| format!("bad number: {e}"))?;
    Ok((Value::Num(n), &s[digits..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"v\":1,\"t_us\":0,\"ev\":\"run_start\",\"alg\":\"MBET\",\"threads\":2,\"resumed\":0}\n",
        "{\"v\":1,\"t_us\":5,\"ev\":\"segment_start\",\"driver\":\"parallel\",\"workers\":2,\"seeded\":3,\"resumed\":0}\n",
        "{\"v\":1,\"t_us\":9,\"ev\":\"task_start\",\"w\":0,\"task\":1,\"kind\":\"root\"}\n",
        "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":1,\"task\":2,\"kind\":\"root\"}\n",
        "{\"v\":1,\"t_us\":20,\"ev\":\"task_finish\",\"w\":0,\"task\":1,\"kind\":\"root\",\"us\":11,\"nodes\":4,\"emitted\":2,\"depth\":1}\n",
        "{\"v\":1,\"t_us\":21,\"ev\":\"task_finish\",\"w\":1,\"task\":2,\"kind\":\"root\",\"us\":9,\"nodes\":3,\"emitted\":1,\"depth\":1}\n",
        "{\"v\":1,\"t_us\":30,\"ev\":\"segment_end\",\"stop\":\"completed\",\"nodes\":7,\"emitted\":3}\n",
        "{\"v\":1,\"t_us\":31,\"ev\":\"run_end\",\"stop\":\"completed\",\"nodes\":7,\"emitted\":3,\"tasks\":2}\n",
    );

    #[test]
    fn accepts_a_wellformed_trace() {
        let s = validate(GOOD).expect("valid");
        assert_eq!(s.events, 8);
        assert_eq!(s.final_stop.as_deref(), Some("completed"));
    }

    #[test]
    fn accepts_an_empty_trace() {
        let s = validate("").expect("valid");
        assert_eq!(s.events, 0);
    }

    #[test]
    fn rejects_nonmonotone_timestamps() {
        let bad = GOOD.replace("\"t_us\":21", "\"t_us\":19");
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        assert!(validate("not json\n").is_err());
        assert!(validate("{\"v\":1,\"t_us\":0}\n").unwrap_err().contains("ev"));
        let wrong_v = GOOD.replace("\"v\":1", "\"v\":9");
        assert!(validate(&wrong_v).unwrap_err().contains("schema version"));
    }

    #[test]
    fn rejects_unbalanced_tasks_on_completed_runs() {
        // Remove worker 1's finish: dangling start on a completed run.
        let dangling: String = GOOD
            .lines()
            .filter(|l| !l.contains("\"task_finish\",\"w\":1"))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let err = validate(&dangling).unwrap_err();
        assert!(err.contains("unfinished"), "{err}");
        // The same dangling start is fine when the run did not complete.
        let panicked = dangling.replace(
            "\"ev\":\"run_end\",\"stop\":\"completed\"",
            "\"ev\":\"run_end\",\"stop\":\"worker-panicked\"",
        );
        let panicked = panicked.replace(
            "\"ev\":\"segment_end\",\"stop\":\"completed\"",
            "\"ev\":\"segment_end\",\"stop\":\"worker-panicked\"",
        );
        assert!(validate(&panicked).is_ok());
    }

    #[test]
    fn rejects_misordered_endpoints() {
        let no_start = GOOD.lines().skip(1).map(|l| format!("{l}\n")).collect::<String>();
        assert!(validate(&no_start).unwrap_err().contains("run_start"));
        // The first 7 lines end at segment_end with all task pairs closed,
        // so the endpoint rule is what fires.
        let no_end: String = GOOD.lines().take(7).map(|l| format!("{l}\n")).collect();
        assert!(validate(&no_end).unwrap_err().contains("run_end"));
    }

    #[test]
    fn rejects_double_start_and_finish_mismatch() {
        let double = GOOD.replace(
            "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":1,\"task\":2,\"kind\":\"root\"}",
            "{\"v\":1,\"t_us\":12,\"ev\":\"task_start\",\"w\":0,\"task\":2,\"kind\":\"root\"}",
        );
        assert!(validate(&double).unwrap_err().contains("while task"));
        let mismatch = GOOD.replace(
            "\"ev\":\"task_finish\",\"w\":1,\"task\":2",
            "\"ev\":\"task_finish\",\"w\":1,\"task\":7",
        );
        assert!(validate(&mismatch).unwrap_err().contains("is open"));
    }

    /// A minimal v2 worker trace, optionally carrying a trace context.
    fn v2_worker(trace: Option<(u64, u64)>, stop: &str) -> String {
        let ctx = trace.map(|(t, p)| format!(",\"trace\":{t},\"parent\":{p}")).unwrap_or_default();
        format!(
            "{{\"v\":2,\"t_us\":0,\"ev\":\"run_start\",\"alg\":\"MBET\",\"threads\":1,\
             \"resumed\":0,\"anchor\":1700000000000000{ctx}}}\n\
             {{\"v\":2,\"t_us\":9,\"ev\":\"run_end\",\"stop\":\"{stop}\",\"nodes\":3,\
             \"emitted\":2,\"tasks\":1}}\n"
        )
    }

    /// A v2 span log: 2 shards, shard 0 merged from span 1, shard 1
    /// retried once then merged from span 3.
    fn v2_span_log() -> String {
        concat!(
            "{\"v\":2,\"t_us\":0,\"ev\":\"coord_start\",\"trace\":7,\"anchor\":1700000000000000,\"shards\":2,\"workers\":2}\n",
            "{\"v\":2,\"t_us\":1,\"ev\":\"dispatch\",\"shard\":0,\"epoch\":0,\"worker\":0,\"span\":1}\n",
            "{\"v\":2,\"t_us\":2,\"ev\":\"dispatch\",\"shard\":1,\"epoch\":0,\"worker\":1,\"span\":2}\n",
            "{\"v\":2,\"t_us\":3,\"ev\":\"merge\",\"shard\":0,\"epoch\":0,\"span\":1,\"emitted\":4}\n",
            "{\"v\":2,\"t_us\":4,\"ev\":\"retry\",\"shard\":1,\"epoch\":0}\n",
            "{\"v\":2,\"t_us\":5,\"ev\":\"dispatch\",\"shard\":1,\"epoch\":0,\"worker\":0,\"span\":3}\n",
            "{\"v\":2,\"t_us\":6,\"ev\":\"merge\",\"shard\":1,\"epoch\":0,\"span\":3,\"emitted\":2}\n",
            "{\"v\":2,\"t_us\":7,\"ev\":\"coord_end\",\"stop\":\"completed\",\"retries\":1,\"resteals\":0,\"speculated\":0,\"degraded\":0}\n",
        )
        .to_string()
    }

    #[test]
    fn accepts_a_v2_trace_and_requires_its_anchor() {
        let good = v2_worker(None, "completed");
        assert_eq!(validate(&good).expect("valid").events, 2);
        let no_anchor = good.replace(",\"anchor\":1700000000000000", "");
        assert!(validate(&no_anchor).unwrap_err().contains("anchor"));
        // v1 headers predate the anchor and stay valid.
        assert!(validate(GOOD).is_ok());
        // Versions must be uniform within one file.
        let mixed = good.replace("{\"v\":2,\"t_us\":9", "{\"v\":1,\"t_us\":9");
        assert!(validate(&mixed).unwrap_err().contains("differs"));
    }

    #[test]
    fn joins_a_distributed_trace_set() {
        let files = vec![
            ("coord-1-1.jsonl".to_string(), v2_span_log()),
            ("req-2-1.jsonl".to_string(), v2_worker(Some((7, 1)), "completed")),
            // The retried attempt's trace is truncated mid-run (killed
            // worker): tolerated because span 2 was never merged.
            (
                "req-3-1.jsonl".to_string(),
                v2_worker(Some((7, 2)), "completed").lines().take(1).collect::<String>() + "\n",
            ),
            ("req-2-2.jsonl".to_string(), v2_worker(Some((7, 3)), "completed")),
            // A standalone local run with no context is fully validated.
            ("req-1-9.jsonl".to_string(), v2_worker(None, "completed")),
        ];
        let s = validate_distributed(&files).expect("joinable");
        assert_eq!(s.coord_logs, 1);
        assert_eq!(s.worker_traces, 4);
        assert_eq!(s.joined_spans, 2);
        assert_eq!(s.lenient, 1);
        assert_eq!(s.standalone, 1);
    }

    #[test]
    fn rejects_unjoinable_distributed_sets() {
        // A merged span with no worker trace behind it.
        let missing = vec![
            ("coord.jsonl".to_string(), v2_span_log()),
            ("req-a.jsonl".to_string(), v2_worker(Some((7, 1)), "completed")),
        ];
        let err = validate_distributed(&missing).unwrap_err();
        assert!(err.contains("no worker trace"), "{err}");
        // A worker trace claiming a span the coordinator never dispatched.
        let orphan = vec![
            ("coord.jsonl".to_string(), v2_span_log()),
            ("req-a.jsonl".to_string(), v2_worker(Some((7, 1)), "completed")),
            ("req-b.jsonl".to_string(), v2_worker(Some((7, 3)), "completed")),
            ("req-c.jsonl".to_string(), v2_worker(Some((7, 99)), "completed")),
        ];
        let err = validate_distributed(&orphan).unwrap_err();
        assert!(err.contains("never dispatched"), "{err}");
        // An unknown trace id.
        let unknown = vec![
            ("coord.jsonl".to_string(), v2_span_log()),
            ("req-a.jsonl".to_string(), v2_worker(Some((7, 1)), "completed")),
            ("req-b.jsonl".to_string(), v2_worker(Some((7, 3)), "completed")),
            ("req-c.jsonl".to_string(), v2_worker(Some((8, 1)), "completed")),
        ];
        let err = validate_distributed(&unknown).unwrap_err();
        assert!(err.contains("unknown trace id"), "{err}");
        // No coordinator log at all.
        let none = vec![("req-a.jsonl".to_string(), v2_worker(None, "completed"))];
        assert!(validate_distributed(&none).unwrap_err().contains("no coordinator"));
    }

    #[test]
    fn rejects_inconsistent_span_logs() {
        // Merge referencing a span dispatched under another shard.
        let wrong = v2_span_log().replace(
            "\"ev\":\"merge\",\"shard\":0,\"epoch\":0,\"span\":1",
            "\"ev\":\"merge\",\"shard\":0,\"epoch\":0,\"span\":2",
        );
        let err = validate_span_log("x", &wrong).unwrap_err();
        assert!(err.contains("dispatched as"), "{err}");
        // Footer counters must match the event stream.
        let counters = v2_span_log().replace("\"retries\":1", "\"retries\":3");
        let err = validate_span_log("x", &counters).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
        // A clean completion must merge every shard.
        let unmerged: String = v2_span_log()
            .lines()
            .filter(|l| !(l.contains("\"ev\":\"merge\"") && l.contains("\"shard\":1")))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let err = validate_span_log("x", &unmerged).unwrap_err();
        assert!(err.contains("1 of 2 shards"), "{err}");
        // Shard epochs can only move forward.
        let regress = v2_span_log().replace(
            "\"ev\":\"dispatch\",\"shard\":1,\"epoch\":0,\"worker\":0,\"span\":3",
            "\"ev\":\"dispatch\",\"shard\":1,\"epoch\":0,\"worker\":0,\"span\":3,\"x\":0",
        );
        // (sanity: unrelated extra fields are fine)
        assert!(validate_span_log("x", &regress).is_ok());
    }

    #[test]
    fn parser_handles_the_schema_shapes() {
        let obj = parse_object("{\"a\":1,\"b\":\"x\"}").expect("parses");
        assert_eq!(
            obj,
            vec![("a".to_string(), Value::Num(1)), ("b".to_string(), Value::Str("x".to_string()))]
        );
        assert!(parse_object("{}").is_err());
        assert!(parse_object("{\"a\":1,}").is_err());
        assert!(parse_object("{\"a\":-1}").is_err(), "schema v1 has no negative numbers");
        assert!(parse_object("{\"a\":{\"b\":1}}").is_err(), "schema v1 is flat");
    }
}
