//! `bench-diff OLD NEW`: compares two committed bench snapshots
//! (the schema-1 JSON written by `bench-snapshot`).
//!
//! The comparison has two halves:
//!
//! * **Correctness gate** — both snapshots must cover the same preset
//!   set with identical `bicliques` counts. Any mismatch is a
//!   correctness regression (or an incomparable snapshot) and exits 1.
//! * **Performance report** — per-preset wall-clock speedup
//!   (`old/new`, so > 1.00 is faster) plus the geometric mean.
//!   Informational: timings come from whatever machines took the
//!   snapshots, so CI runs this step advisorily.

use std::path::Path;

/// Entry point for the `bench-diff` subcommand. Exits 0 when the
/// snapshots agree on counts, 1 on any count/preset mismatch, 2 when a
/// file cannot be read or parsed.
pub fn run(root: &Path, old: &str, new: &str) -> ! {
    let old_rows = load(root, old);
    let new_rows = load(root, new);
    match diff(&old_rows, &new_rows) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("bench-diff: {e}");
            }
            std::process::exit(1);
        }
    }
}

/// One `{preset, bicliques, time_us}` row of a snapshot.
#[derive(Debug, PartialEq)]
struct Row {
    preset: String,
    bicliques: u64,
    time_us: u64,
}

fn load(root: &Path, name: &str) -> Vec<Row> {
    let path = root.join(name);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-diff: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match parse_snapshot(&text) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => {
            eprintln!("bench-diff: {} has no rows", path.display());
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bench-diff: cannot parse {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// Parses the snapshot JSON. The format is machine-written one-row-per-
/// line (`render` in [`crate::snapshot`]), so a field scanner is enough —
/// no general JSON parser needed, but the fields may come in any order.
fn parse_snapshot(text: &str) -> Result<Vec<Row>, String> {
    if !text.contains("\"schema\": 1") {
        return Err("missing or unsupported \"schema\" (want 1)".into());
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"preset\"") {
            continue;
        }
        let preset = str_field(line, "preset")?;
        let bicliques = num_field(line, "bicliques")?;
        let time_us = num_field(line, "time_us")?;
        rows.push(Row { preset, bicliques, time_us });
    }
    Ok(rows)
}

/// Extracts `"key": "value"` from a one-line JSON object.
fn str_field(line: &str, key: &str) -> Result<String, String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag).ok_or(format!("missing {key:?} in {line:?}"))? + tag.len();
    let end = line[start..].find('"').ok_or(format!("unterminated {key:?} in {line:?}"))?;
    Ok(line[start..start + end].to_string())
}

/// Extracts `"key": 123` from a one-line JSON object.
fn num_field(line: &str, key: &str) -> Result<u64, String> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag).ok_or(format!("missing {key:?} in {line:?}"))? + tag.len();
    let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().map_err(|_| format!("bad {key:?} value in {line:?}"))
}

/// Builds the human-readable diff table, or the list of count/preset
/// mismatches when the snapshots are not count-identical.
fn diff(old: &[Row], new: &[Row]) -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    for o in old {
        match new.iter().find(|n| n.preset == o.preset) {
            None => errors.push(format!("preset {} missing from new snapshot", o.preset)),
            Some(n) if n.bicliques != o.bicliques => errors.push(format!(
                "preset {}: biclique count changed {} -> {}",
                o.preset, o.bicliques, n.bicliques
            )),
            Some(_) => {}
        }
    }
    for n in new {
        if !old.iter().any(|o| o.preset == n.preset) {
            errors.push(format!("preset {} missing from old snapshot", n.preset));
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>9}\n",
        "preset", "bicliques", "old_us", "new_us", "speedup"
    ));
    let mut log_sum = 0.0f64;
    let mut regressions = 0usize;
    for o in old {
        // Presence verified above; linear rescan keeps this dependency-free.
        let n = new.iter().find(|n| n.preset == o.preset).unwrap();
        // Sub-microsecond rows round to 0; clamp so the ratio stays finite.
        let ratio = o.time_us.max(1) as f64 / n.time_us.max(1) as f64;
        log_sum += ratio.ln();
        if ratio < 1.0 {
            regressions += 1;
        }
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>8.2}x\n",
            o.preset, o.bicliques, o.time_us, n.time_us, ratio
        ));
    }
    let geomean = (log_sum / old.len() as f64).exp();
    out.push_str(&format!(
        "counts identical across {} presets; geomean speedup {:.2}x ({} slower than old)\n",
        old.len(),
        geomean,
        regressions
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rows: &[(&str, u64, u64)]) -> Vec<Row> {
        rows.iter().map(|&(p, b, t)| Row { preset: p.into(), bicliques: b, time_us: t }).collect()
    }

    #[test]
    fn parses_rendered_snapshot() {
        let text = "{\n  \"schema\": 1,\n  \"source\": \"x\",\n  \"rows\": [\n    \
                    {\"preset\": \"BX\", \"bicliques\": 5236, \"time_us\": 96000},\n    \
                    {\"preset\": \"ML\", \"bicliques\": 120, \"time_us\": 234}\n  ]\n}\n";
        let rows = parse_snapshot(text).unwrap();
        assert_eq!(rows, snap(&[("BX", 5236, 96_000), ("ML", 120, 234)]));
    }

    #[test]
    fn rejects_wrong_schema_and_bad_rows() {
        assert!(parse_snapshot("{\"schema\": 2}").is_err());
        let text = "{\"schema\": 1}\n{\"preset\": \"A\", \"bicliques\": x}\n";
        assert!(parse_snapshot(text).is_err());
    }

    #[test]
    fn identical_counts_produce_speedup_table() {
        let old = snap(&[("A", 10, 2000), ("B", 5, 300)]);
        let new = snap(&[("A", 10, 1000), ("B", 5, 600)]);
        let report = diff(&old, &new).unwrap();
        assert!(report.contains("2.00x"), "{report}");
        assert!(report.contains("0.50x"), "{report}");
        assert!(report.contains("geomean speedup 1.00x"), "{report}");
        assert!(report.contains("(1 slower than old)"), "{report}");
    }

    #[test]
    fn count_changes_and_preset_drift_fail() {
        let old = snap(&[("A", 10, 100), ("B", 5, 100)]);
        let changed = snap(&[("A", 11, 100), ("B", 5, 100)]);
        let errs = diff(&old, &changed).unwrap_err();
        assert!(errs[0].contains("count changed 10 -> 11"), "{errs:?}");

        let missing = snap(&[("A", 10, 100)]);
        let errs = diff(&old, &missing).unwrap_err();
        assert!(errs[0].contains("missing from new"), "{errs:?}");
        let errs = diff(&missing, &old).unwrap_err();
        assert!(errs[0].contains("missing from old"), "{errs:?}");
    }

    #[test]
    fn zero_time_rows_stay_finite() {
        let old = snap(&[("A", 1, 0)]);
        let new = snap(&[("A", 1, 0)]);
        let report = diff(&old, &new).unwrap();
        assert!(report.contains("1.00x"), "{report}");
    }
}
