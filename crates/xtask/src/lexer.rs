//! A token-level Rust lexer for the `analyze` subcommand.
//!
//! The old `check` rules scanned line-by-line and could be fooled by
//! anything spanning lines: a banned call inside a string literal, a
//! block comment opened on one line and closed three later, a raw
//! string containing `"/*"`. This lexer produces a lossless token
//! stream — concatenating every token's text reproduces the source
//! byte-for-byte (asserted by a differential test over the whole
//! workspace) — with 1-based line:column spans, so the analysis passes
//! in [`crate::analyze`] reason about *code* tokens only and report
//! precise locations.
//!
//! Handled beyond the obvious: nested block comments, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), byte and raw-byte strings,
//! lifetimes vs. char literals (`'a` vs `'a'`), raw identifiers
//! (`r#ident`), escapes in char/string literals, float/exponent
//! numeric forms, and multi-byte UTF-8 everywhere (columns count
//! characters, not bytes).
//!
//! The lexer never fails: malformed input (an unterminated literal at
//! EOF) degrades to a token covering the rest of the file, keeping the
//! round-trip property.

/// What a token is. Trivia (whitespace, comments) is kept in the
/// stream so spans stay lossless; passes filter on [`TokKind::is_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Runs of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// `// …` to end of line (doc `///` and `//!` included).
    LineComment,
    /// `/* … */`, nesting-aware (doc `/** … */` included).
    BlockComment,
    /// Identifiers and keywords, including raw `r#ident` forms.
    Ident,
    /// `'name` — a lifetime or loop label (no closing quote).
    Lifetime,
    /// `'x'` / `b'x'` char literals, escapes included.
    Char,
    /// `"…"` / `b"…"` string literals, escapes included.
    Str,
    /// `r"…"`, `r#"…"#`, `br"…"`, … — no escapes, hash-delimited.
    RawStr,
    /// Numeric literals (ints, floats, prefixes, suffixes).
    Num,
    /// A punctuation character (`{`, `.`, `<`, …). Single-char, except
    /// `::` which is one token so passes can pattern-match paths.
    Punct,
}

impl TokKind {
    /// `true` for tokens the analyses should look at (not trivia).
    pub fn is_code(self) -> bool {
        !matches!(self, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One lexed token: kind, exact source text, and the 1-based line and
/// character column where it starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokKind,
    /// The exact source slice (round-trips by concatenation).
    pub text: &'a str,
    /// 1-based start line.
    pub line: u32,
    /// 1-based start column, counted in characters.
    pub col: u32,
}

/// Lexes `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    while pos < src.len() {
        let rest = &src[pos..];
        let (kind, len) = scan(rest);
        debug_assert!(len > 0, "lexer must always advance");
        let text = &rest[..len];
        out.push(Token { kind, text, line, col });
        for ch in text.chars() {
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        pos += len;
    }
    out
}

/// Dispatches on the first character of `rest`, returning the token
/// kind and its byte length. Always consumes at least one character.
fn scan(rest: &str) -> (TokKind, usize) {
    let mut chars = rest.chars();
    let c = chars.next().expect("scan called on non-empty input");
    match c {
        _ if c.is_whitespace() => (TokKind::Whitespace, scan_while(rest, char::is_whitespace)),
        '/' => match chars.next() {
            Some('/') => (TokKind::LineComment, scan_line_comment(rest)),
            Some('*') => (TokKind::BlockComment, scan_block_comment(rest)),
            _ => (TokKind::Punct, 1),
        },
        ':' if rest[1..].starts_with(':') => (TokKind::Punct, 2),
        '\'' => scan_quote(rest),
        '"' => (TokKind::Str, scan_string(rest, 0)),
        'r' => scan_r(rest),
        'b' => scan_b(rest),
        _ if c.is_alphabetic() || c == '_' => (TokKind::Ident, scan_ident(rest)),
        _ if c.is_ascii_digit() => (TokKind::Num, scan_number(rest)),
        _ => (TokKind::Punct, c.len_utf8()),
    }
}

/// Byte length of the longest prefix whose chars satisfy `pred`.
fn scan_while(rest: &str, pred: impl Fn(char) -> bool) -> usize {
    rest.char_indices().find(|&(_, ch)| !pred(ch)).map_or(rest.len(), |(i, _)| i)
}

fn is_ident_continue(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '_'
}

fn scan_ident(rest: &str) -> usize {
    scan_while(rest, is_ident_continue)
}

/// `// …` up to (not including) the newline.
fn scan_line_comment(rest: &str) -> usize {
    rest.find('\n').unwrap_or(rest.len())
}

/// `/* … */` with nesting; an unterminated comment consumes the rest.
fn scan_block_comment(rest: &str) -> usize {
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b'/' && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    rest.len()
}

/// A `'`-led token: lifetime/label (`'a`, `'_`) or char literal
/// (`'a'`, `'\n'`, `'€'`). Disambiguation: `'x` followed by another
/// `'` is a char literal; an identifier run not closed by `'` is a
/// lifetime.
fn scan_quote(rest: &str) -> (TokKind, usize) {
    let mut it = rest.char_indices();
    it.next(); // the opening quote
    match it.next() {
        // Escape ⇒ definitely a char literal.
        Some((_, '\\')) => (TokKind::Char, scan_char_body(rest)),
        Some((i1, c1)) if c1.is_alphabetic() || c1 == '_' => {
            // `'a'` is a char; `'a` / `'abc` / `'_` is a lifetime.
            match it.next() {
                Some((_, '\'')) => (TokKind::Char, scan_char_body(rest)),
                _ => {
                    let ident = scan_while(&rest[i1..], is_ident_continue);
                    (TokKind::Lifetime, i1 + ident)
                }
            }
        }
        // `'('`, `'€'`, `'0'`, … — a one-char literal (or garbage; the
        // char scanner tolerates it).
        Some(_) => (TokKind::Char, scan_char_body(rest)),
        None => (TokKind::Punct, 1),
    }
}

/// From the opening `'`, consume through the closing `'`, honoring
/// backslash escapes. Unterminated: stop at end of line (a lone `'`
/// can't span lines) to avoid swallowing the file.
fn scan_char_body(rest: &str) -> usize {
    let mut it = rest.char_indices();
    it.next(); // opening quote
    while let Some((i, ch)) = it.next() {
        match ch {
            '\\' => {
                it.next();
            }
            '\'' => return i + 1,
            '\n' => return i,
            _ => {}
        }
    }
    rest.len()
}

/// From the opening `"` (at byte `open`), consume through the closing
/// `"`, honoring escapes (including `\"` and `\\`).
fn scan_string(rest: &str, open: usize) -> usize {
    let mut it = rest[open..].char_indices();
    it.next(); // opening quote
    while let Some((i, ch)) = it.next() {
        match ch {
            '\\' => {
                it.next();
            }
            '"' => return open + i + 1,
            _ => {}
        }
    }
    rest.len()
}

/// `r…`: raw string (`r"`, `r#"`, any hash depth), raw identifier
/// (`r#ident`), or a plain identifier starting with `r`.
fn scan_r(rest: &str) -> (TokKind, usize) {
    let hashes = scan_while(&rest[1..], |c| c == '#');
    let after = &rest[1 + hashes..];
    if after.starts_with('"') {
        return (TokKind::RawStr, 1 + hashes + scan_raw_string(after, hashes));
    }
    if hashes >= 1 && after.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        // `r#ident` — exactly one hash participates; `r##x` is not a
        // raw ident, but lexing it as one keeps the round-trip.
        return (TokKind::Ident, 1 + hashes + scan_ident(after));
    }
    (TokKind::Ident, scan_ident(rest))
}

/// `b…`: byte char (`b'x'`), byte string (`b"…"`), raw byte string
/// (`br"…"`, `br#"…"#`), or a plain identifier starting with `b`.
fn scan_b(rest: &str) -> (TokKind, usize) {
    let after = &rest[1..];
    if after.starts_with('\'') {
        return (TokKind::Char, 1 + scan_char_body(after));
    }
    if after.starts_with('"') {
        return (TokKind::Str, 1 + scan_string(after, 0));
    }
    if let Some(after_r) = after.strip_prefix('r') {
        let hashes = scan_while(after_r, |c| c == '#');
        let body = &after_r[hashes..];
        if body.starts_with('"') {
            return (TokKind::RawStr, 2 + hashes + scan_raw_string(body, hashes));
        }
    }
    (TokKind::Ident, scan_ident(rest))
}

/// From the opening `"` of a raw string, consume through `"` followed
/// by `hashes` `#` characters. No escapes exist in raw strings.
fn scan_raw_string(from_quote: &str, hashes: usize) -> usize {
    let bytes = from_quote.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let end = i + 1 + hashes;
            if end <= bytes.len() && bytes[i + 1..end].iter().all(|&b| b == b'#') {
                return end;
            }
        }
        i += 1;
    }
    from_quote.len()
}

/// Numeric literal: digits, `_`, radix prefixes (`0x…`), type suffixes
/// (`u32`, `f64` — consumed by the alphanumeric run), a fractional part
/// (`.` only when followed by a digit, so `0..n` and tuple access stay
/// separate tokens), and exponent signs (`1e-5`).
fn scan_number(rest: &str) -> usize {
    let bytes = rest.as_bytes();
    let hex = rest.starts_with("0x") || rest.starts_with("0X");
    let mut i = 0usize;
    let mut prev = b'0';
    while i < bytes.len() {
        let b = bytes[i];
        let fractional_dot = b == b'.'
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit()
            && !rest[..i].contains('.');
        let exponent_sign = (b == b'+' || b == b'-')
            && (prev == b'e' || prev == b'E')
            && !hex
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit();
        if !(b.is_ascii_alphanumeric() || b == b'_' || fractional_dot || exponent_sign) {
            break;
        }
        prev = b;
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token<'_>> {
        let toks = lex(src);
        let glued: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(glued, src, "token concatenation must reproduce the source");
        toks
    }

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind.is_code())
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].1, "b");
        // The whole nested comment is one trivia token.
        let comment = roundtrip(src).into_iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert_eq!(comment.text, "/* outer /* inner */ still outer */");
    }

    #[test]
    fn raw_string_containing_comment_opener() {
        // The classic line-scanner killer: a raw string holding `/*`.
        let src = r##"let s = r#"/* not a comment "quote" */"#; x()"##;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokKind::RawStr).unwrap();
        assert_eq!(raw.1, r##"r#"/* not a comment "quote" */"#"##);
        // `x` survives as a real code token after the raw string.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, y: &'_ u8) { let c = 'a'; let d = '\\''; m!('_') }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, t)| t.clone()).collect();
        // `&'_ u8` is an (anonymous) lifetime; `'_'` is a char literal
        // — only the closing quote tells them apart.
        assert_eq!(lifetimes, vec!["'a", "'a", "'_"]);
        assert_eq!(chars, vec!["'a'", "'\\''", "'_'"]);
    }

    #[test]
    fn labels_and_static_lifetime() {
        let toks = kinds("'outer: loop { break 'outer; } let s: &'static str = \"x\";");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'outer", "'outer", "'static"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = r#match + other;");
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, t)| t.clone()).collect();
        assert_eq!(idents, vec!["let", "r#fn", "r#match", "other"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw "b" ytes"#; let c = b'\xff';"##);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "b\"bytes\""));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::RawStr && t == r##"br#"raw "b" ytes"#"##));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "b'\\xff'"));
    }

    #[test]
    fn multibyte_utf8_spans() {
        // Multi-byte chars in strings, comments, and idents must not
        // desync byte offsets; columns count characters.
        let src = "let héllo = \"日本語\"; // héllo→wörld\nlet x = 1;";
        let toks = roundtrip(src);
        let x = toks.iter().find(|t| t.kind.is_code() && t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 5));
        let ident = toks.iter().find(|t| t.kind == TokKind::Ident && t.text == "héllo").unwrap();
        assert_eq!((ident.line, ident.col), (1, 5));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "a \"quoted\" // not a comment \\"; y()"#);
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert_eq!(s.1, r#""a \"quoted\" // not a comment \\""#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "y"));
    }

    #[test]
    fn numbers_ranges_and_tuple_access() {
        let toks = kinds("let a = 1.5e-3; let b = 0xFF_u32; for i in 0..10 {} t.0");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Num).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["1.5e-3", "0xFF_u32", "0", "10", "0"]);
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = kinds("std::sync::Mutex::new(); let t: u32 = x;");
        let seps = toks.iter().filter(|(k, t)| *k == TokKind::Punct && t == "::").count();
        assert_eq!(seps, 3);
        // A lone `:` stays single.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ":"));
    }

    #[test]
    fn line_and_col_spans() {
        let toks = roundtrip("fn main() {\n    let x = 1;\n}\n");
        let find = |text: &str| toks.iter().find(|t| t.text == text).copied().unwrap();
        assert_eq!((find("fn").line, find("fn").col), (1, 1));
        assert_eq!((find("let").line, find("let").col), (2, 5));
        assert_eq!((find("1").line, find("1").col), (2, 13));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        roundtrip("let s = \"unterminated");
        roundtrip("let s = r#\"unterminated");
        roundtrip("/* unterminated");
        roundtrip("let c = '");
    }

    /// The differential test the issue asks for: the lexer must
    /// round-trip every `.rs` file in the workspace — concatenated
    /// token spans reproduce each source exactly.
    #[test]
    fn lexer_roundtrips_every_workspace_file() {
        let root = crate::workspace_root();
        let files = crate::collect_rs_files(&root);
        assert!(files.len() > 40, "workspace scan found too few files: {}", files.len());
        for path in files {
            let src = std::fs::read_to_string(&path).unwrap();
            let toks = lex(&src);
            let glued: String = toks.iter().map(|t| t.text).collect();
            assert_eq!(glued, src, "round-trip failed for {}", path.display());
            // Spans are consistent: recomputing line/col by walking the
            // text must agree with each token's recorded position.
            let (mut line, mut col) = (1u32, 1u32);
            for t in &toks {
                assert_eq!((t.line, t.col), (line, col), "span drift in {}", path.display());
                for ch in t.text.chars() {
                    if ch == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                }
            }
        }
    }
}
