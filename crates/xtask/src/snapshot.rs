//! `bench-snapshot [OUT] [--preset-filter PREFIX]`: runs the
//! calibration bench (`cargo run --release -p bench --bin calib`) and
//! writes its table as a committed JSON snapshot (default
//! `BENCH_PR4.json` at the workspace root).
//!
//! `--preset-filter` keeps only the rows whose preset abbreviation
//! starts with the given prefix (`--preset-filter oc` pins just the
//! OCT sweep), so a PR touching one subsystem can commit a focused
//! snapshot without re-pinning every unrelated preset.
//!
//! The snapshot pins the biclique count per preset — a cheap regression
//! tripwire across PRs — alongside the wall-clock time observed when it
//! was taken (informational only; machines differ). The file format is
//! documented in EXPERIMENTS.md ("Benchmark snapshots").

use std::path::Path;

/// Entry point for the `bench-snapshot` subcommand. Exits 0 after
/// writing the snapshot, 1 when the bench fails, prints nothing
/// parseable, or the filter matches no row, 2 on I/O errors.
pub fn run(root: &Path, out: Option<&str>, filter: Option<&str>) -> ! {
    let out = out.unwrap_or("BENCH_PR4.json");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    println!("bench-snapshot: running the calib bench (release build, this takes a while)…");
    let output = match std::process::Command::new(cargo)
        .args(["run", "--release", "-q", "-p", "bench", "--bin", "calib"])
        .current_dir(root)
        .output()
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-snapshot: cannot run cargo: {e}");
            std::process::exit(2);
        }
    };
    if !output.status.success() {
        eprintln!("bench-snapshot: calib failed: {}", String::from_utf8_lossy(&output.stderr));
        std::process::exit(1);
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let rows = match parse_calib(&stdout) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => {
            eprintln!("bench-snapshot: calib printed no rows");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-snapshot: cannot parse calib output: {e}");
            std::process::exit(1);
        }
    };
    let rows = match filter {
        Some(prefix) => {
            let total = rows.len();
            let kept = filter_rows(rows, prefix);
            if kept.is_empty() {
                eprintln!(
                    "bench-snapshot: --preset-filter {prefix:?} matched none of the {total} rows"
                );
                std::process::exit(1);
            }
            println!("bench-snapshot: --preset-filter {prefix:?} kept {}/{total} rows", kept.len());
            kept
        }
        None => rows,
    };
    let json = render(&rows);
    let path = root.join(out);
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("bench-snapshot: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("bench-snapshot: wrote {} ({} presets)", path.display(), rows.len());
    std::process::exit(0);
}

/// One row of the calibration table.
#[derive(Debug, PartialEq)]
struct Row {
    preset: String,
    bicliques: u64,
    time_us: u64,
}

/// Keeps the rows whose preset abbreviation starts with `prefix`.
fn filter_rows(rows: Vec<Row>, prefix: &str) -> Vec<Row> {
    rows.into_iter().filter(|r| r.preset.starts_with(prefix)).collect()
}

/// Parses calib's `ABBR  B=COUNT   (TIME)` lines.
fn parse_calib(stdout: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for line in stdout.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let preset = parts.next().ok_or(format!("empty row {line:?}"))?.to_string();
        let b = parts.next().ok_or(format!("missing B column in {line:?}"))?;
        let bicliques = b
            .strip_prefix("B=")
            .and_then(|n| n.parse().ok())
            .ok_or(format!("bad B column {b:?} in {line:?}"))?;
        let t = parts.next().ok_or(format!("missing time column in {line:?}"))?;
        let t = t
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or(format!("bad time column {t:?} in {line:?}"))?;
        rows.push(Row { preset, bicliques, time_us: parse_duration_us(t)? });
    }
    Ok(rows)
}

/// Parses a `Duration` debug rendering (`96ms`, `1.2s`, `234µs`, `80ns`)
/// into whole microseconds (rounded down, so sub-microsecond times are 0).
fn parse_duration_us(s: &str) -> Result<u64, String> {
    let digits_end = s.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(s.len());
    let value: f64 = s[..digits_end].parse().map_err(|e| format!("bad duration {s:?}: {e}"))?;
    let factor = match &s[digits_end..] {
        "ns" => 1e-3,
        "µs" | "us" => 1.0,
        "ms" => 1e3,
        "s" => 1e6,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok((value * factor) as u64)
}

/// Renders the snapshot JSON (hand-rolled; keys and rows are fully under
/// our control so no escaping is needed).
fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"source\": \"cargo run --release -p bench --bin calib\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"bicliques\": {}, \"time_us\": {}}}{sep}\n",
            r.preset, r.bicliques, r.time_us
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_calib_rows() {
        let rows = parse_calib("BX    B=5236      (96ms)\nML100 B=120      (234µs)\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], Row { preset: "BX".into(), bicliques: 5236, time_us: 96_000 });
        assert_eq!(rows[1], Row { preset: "ML100".into(), bicliques: 120, time_us: 234 });
    }

    #[test]
    fn duration_units() {
        assert_eq!(parse_duration_us("80ns").unwrap(), 0);
        assert_eq!(parse_duration_us("234us").unwrap(), 234);
        assert_eq!(parse_duration_us("96ms").unwrap(), 96_000);
        assert_eq!(parse_duration_us("1.5s").unwrap(), 1_500_000);
        assert!(parse_duration_us("10min").is_err());
        assert!(parse_duration_us("fast").is_err());
    }

    #[test]
    fn bad_rows_are_rejected() {
        assert!(parse_calib("BX 5236 (96ms)").is_err(), "missing B= prefix");
        assert!(parse_calib("BX B=x (96ms)").is_err());
        assert!(parse_calib("BX B=1 96ms").is_err(), "missing parens");
    }

    #[test]
    fn preset_filter_is_a_prefix_match() {
        let rows = || {
            vec![
                Row { preset: "BX".into(), bicliques: 1, time_us: 1 },
                Row { preset: "oc2".into(), bicliques: 2, time_us: 2 },
                Row { preset: "oc8".into(), bicliques: 3, time_us: 3 },
            ]
        };
        let kept = filter_rows(rows(), "oc");
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|r| r.preset.starts_with("oc")));
        // Exact abbreviation works too; a miss keeps nothing.
        assert_eq!(filter_rows(rows(), "oc8").len(), 1);
        assert!(filter_rows(rows(), "zz").is_empty());
        // The empty prefix keeps everything (matches every abbreviation).
        assert_eq!(filter_rows(rows(), "").len(), 3);
    }

    #[test]
    fn render_is_valid_minimal_json() {
        let rows = vec![
            Row { preset: "A".into(), bicliques: 1, time_us: 2 },
            Row { preset: "B".into(), bicliques: 3, time_us: 4 },
        ];
        let json = render(&rows);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("{\"preset\": \"A\", \"bicliques\": 1, \"time_us\": 2},"));
        assert!(json.ends_with("]\n}\n"));
        // No trailing comma on the last row.
        assert!(json.contains("{\"preset\": \"B\", \"bicliques\": 3, \"time_us\": 4}\n"));
    }
}
