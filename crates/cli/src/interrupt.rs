//! Cooperative cancellation for interactive runs.
//!
//! The workspace forbids `unsafe` and carries no signal-handling
//! dependency, so a real `SIGINT` handler is out of reach: Ctrl-C still
//! kills the process the way it kills any CLI. What we *can* offer
//! safely is a stdin watcher: when stdin is a terminal, a daemon thread
//! blocks on it and flips the shared [`RunControl`] cancel flag as soon
//! as the user types `q` (then Enter) or closes the stream (Ctrl-D).
//! The enumeration then drains cleanly and the partial results are
//! reported with their stop reason — same path a `--timeout` takes.
//!
//! When stdin is not a terminal (piped input, CI) no watcher is spawned,
//! so nothing consumes a downstream pipe's data.

use mbe::RunControl;
use std::io::{BufRead, IsTerminal};

/// Spawns the stdin watcher if stdin is a terminal. The thread is a
/// daemon: it never blocks process exit, and it holds only a clone of
/// `control`, so dropping the run does not leak anything observable.
pub fn spawn_stdin_watcher(control: &RunControl) {
    if !std::io::stdin().is_terminal() {
        return;
    }
    let control = control.clone();
    std::thread::Builder::new()
        .name("mbe-cli-cancel".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    // EOF (Ctrl-D) or `q`: cancel and stop watching.
                    Ok(0) => {
                        control.cancel();
                        return;
                    }
                    Ok(_) if line.trim().eq_ignore_ascii_case("q") => {
                        control.cancel();
                        return;
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        })
        .ok();
}
