//! Cooperative cancellation for interactive commands.
//!
//! The workspace forbids `unsafe` and carries no signal-handling
//! dependency, so a real `SIGINT` handler is out of reach: Ctrl-C still
//! kills the process the way it kills any CLI. What we *can* offer
//! safely is a stdin watcher: when stdin is a terminal, a daemon thread
//! blocks on it and trips the shared cancel source as soon as the user
//! types `q` (then Enter) or closes the stream (Ctrl-D).
//!
//! The watcher is a process-wide singleton. Commands register any number
//! of [`RunControl`]s with [`register`]; the first `q` cancels them all,
//! and anything registered *after* the trigger is cancelled immediately
//! (so a run started just as the user quits cannot be missed). Both
//! `enumerate` and `serve` share the one watcher thread — repeated
//! registrations never spawn another.
//!
//! When stdin is not a terminal (piped input, CI) no watcher is spawned,
//! so nothing consumes a downstream pipe's data.

use mbe::RunControl;
use std::io::{BufRead, IsTerminal};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};

/// The shared trip-wire: registered controls plus the sticky flag.
#[derive(Default)]
struct CancelSource {
    controls: Mutex<Vec<RunControl>>,
    triggered: AtomicBool,
}

impl CancelSource {
    /// Adds a control; cancels it on the spot if the source already
    /// tripped (including the race where the trigger lands mid-call).
    fn register(&self, control: &RunControl) {
        if self.triggered.load(Ordering::SeqCst) {
            control.cancel();
            return;
        }
        self.controls.lock().unwrap_or_else(PoisonError::into_inner).push(control.clone());
        // The watcher may have tripped between the check and the push;
        // its drain and this late registration would both be misses.
        if self.triggered.load(Ordering::SeqCst) {
            control.cancel();
        }
    }

    /// Trips the source: cancels everything registered, now and forever.
    fn trigger(&self) {
        self.triggered.store(true, Ordering::SeqCst);
        let controls = {
            let mut guard = self.controls.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for control in &controls {
            control.cancel();
        }
    }
}

fn source() -> &'static CancelSource {
    static SOURCE: OnceLock<CancelSource> = OnceLock::new();
    SOURCE.get_or_init(CancelSource::default)
}

/// `true` iff this stdin line means "stop the run".
fn is_quit(line: &str) -> bool {
    line.trim().eq_ignore_ascii_case("q")
}

/// Registers `control` with the interactive cancel source: typing `q` +
/// Enter (or closing stdin) cancels it. Spawns the stdin watcher thread
/// on first use — exactly once per process, no matter how many runs or
/// server instances register. No-op when stdin is not a terminal.
pub fn register(control: &RunControl) {
    if !std::io::stdin().is_terminal() {
        return;
    }
    let src = source();
    static WATCHER: Once = Once::new();
    WATCHER.call_once(|| {
        std::thread::Builder::new()
            .name("mbe-cli-cancel".into())
            .spawn(|| watch_stdin(source()))
            .ok();
    });
    src.register(control);
}

/// The watcher loop: blocks on stdin lines until quit/EOF, then trips.
fn watch_stdin(src: &'static CancelSource) {
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            // EOF (Ctrl-D) or `q`: cancel and stop watching.
            Ok(0) => {
                src.trigger();
                return;
            }
            Ok(_) if is_quit(&line) => {
                src.trigger();
                return;
            }
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quit_lines() {
        assert!(is_quit("q\n"));
        assert!(is_quit("  Q  \n"));
        assert!(!is_quit("quit\n"));
        assert!(!is_quit(""));
    }

    #[test]
    fn trigger_cancels_all_registered_controls() {
        let src = CancelSource::default();
        let a = RunControl::new();
        let b = RunControl::new();
        src.register(&a);
        src.register(&b);
        assert!(!a.is_cancelled() && !b.is_cancelled());
        src.trigger();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn late_registration_after_trigger_is_cancelled_immediately() {
        let src = CancelSource::default();
        src.trigger();
        let late = RunControl::new();
        src.register(&late);
        assert!(late.is_cancelled());
        // And the list does not grow after the trip.
        assert!(src.controls.lock().unwrap_or_else(PoisonError::into_inner).is_empty());
    }

    #[test]
    fn trigger_is_idempotent() {
        let src = CancelSource::default();
        let a = RunControl::new();
        src.register(&a);
        src.trigger();
        src.trigger();
        assert!(a.is_cancelled());
    }
}
