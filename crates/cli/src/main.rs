//! `mbe-cli`: command-line access to the enumeration library.
//!
//! See [`args::USAGE`] or run `mbe-cli help`.

#![forbid(unsafe_code)]

mod args;
mod interrupt;
mod observe;

use args::{ClientAction, Command, GenModel};
use bigraph::BipartiteGraph;
use mbe::{
    Algorithm, Enumeration, FanoutObserver, JsonlTraceObserver, RunControl, SizeThresholds,
    StopReason,
};
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Rust maps SIGPIPE to an Err on stdout writes, which println! turns
    // into a panic when the consumer (`head`, a closed pager) goes away.
    // Dying quietly is the correct CLI behavior; without a libc
    // dependency the portable way is a panic hook that recognizes the
    // broken-pipe payload and exits success. Every other panic only
    // *prints* here and then keeps unwinding: the parallel driver catches
    // worker panics and converts them to a typed error with partial
    // results, which an exit() in the hook would silently defeat (hooks
    // run before unwinding reaches any catch_unwind).
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Command::Help { error: None } => {
            print!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Command::Help { error: Some(e) } => {
            eprintln!("error: {e}\n");
            eprint!("{}", args::USAGE);
            ExitCode::FAILURE
        }
        Command::Presets => {
            println!(
                "{:<6}{:<16}{:>12}{:>12}{:>14}{:>16}",
                "abbr", "name", "|U|(real)", "|V|(real)", "|E|(real)", "B(published)"
            );
            for p in gen::all_presets() {
                println!(
                    "{:<6}{:<16}{:>12}{:>12}{:>14}{:>16}",
                    p.abbrev,
                    p.name,
                    p.real.num_u,
                    p.real.num_v,
                    p.real.num_edges,
                    p.real.max_bicliques
                );
            }
            ExitCode::SUCCESS
        }
        Command::Stats { file } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                let s = bigraph::stats::stats(&g);
                println!("file     : {file}");
                println!("|U|      : {}", s.num_u);
                println!("|V|      : {}", s.num_v);
                println!("|E|      : {}", s.num_edges);
                println!("D(U)     : {}", s.max_deg_u);
                println!("D(V)     : {}", s.max_deg_v);
                println!("D2(U)    : {}", s.max_two_hop_u);
                println!("D2(V)    : {}", s.max_two_hop_v);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Butterflies { file } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                let t = std::time::Instant::now();
                let n = bigraph::butterfly::count_butterflies(&g);
                println!(
                    "butterflies: {n} (density {:.4} per edge) in {:?}",
                    bigraph::butterfly::butterfly_density(&g),
                    t.elapsed()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Core { file, alpha, beta, output } => {
            match bigraph::io::read_edge_list_path(&file) {
                Ok(g) => {
                    let red = bigraph::core::alpha_beta_core(&g, alpha, beta);
                    println!(
                        "({alpha},{beta})-core: |U| {} -> {}, |V| {} -> {}, |E| {} -> {}",
                        g.num_u(),
                        red.graph.num_u(),
                        g.num_v(),
                        red.graph.num_v(),
                        g.num_edges(),
                        red.graph.num_edges()
                    );
                    if let Some(out) = output {
                        if let Err(e) = bigraph::io::write_edge_list_path(&red.graph, &out) {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote reduced graph to {out} (ids re-labeled densely)");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Enumerate {
            file,
            algorithm,
            order,
            threads,
            min_left,
            min_right,
            top_k,
            count_only,
            max_print,
            timeout,
            max_bicliques,
            checkpoint,
            resume,
            trace,
            metrics,
            progress,
        } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                let mut control = RunControl::new();
                if let Some(secs) = timeout {
                    control = control.timeout(std::time::Duration::from_secs_f64(secs));
                }
                if let Some(n) = max_bicliques {
                    control = control.max_emitted(n);
                }
                interrupt::register(&control);
                let obs = ObsFlags { trace, metrics, progress, budget: max_bicliques };
                run_enumerate(
                    &g, algorithm, order, threads, min_left, min_right, top_k, count_only,
                    max_print, control, checkpoint, resume, obs,
                )
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::OctEnumerate {
            file,
            algorithm,
            order,
            threads,
            max_oct,
            count_only,
            max_print,
            timeout,
            max_bicliques,
            checkpoint,
            resume,
            trace,
            metrics,
            progress,
        } => match bigraph::general::read_general_edge_list_path(&file) {
            Ok(g) => {
                let mut control = RunControl::new();
                if let Some(secs) = timeout {
                    control = control.timeout(std::time::Duration::from_secs_f64(secs));
                }
                interrupt::register(&control);
                let obs = ObsFlags { trace, metrics, progress, budget: max_bicliques };
                run_oct_enumerate(
                    &g,
                    algorithm,
                    order,
                    threads,
                    max_oct,
                    count_only,
                    max_print,
                    max_bicliques,
                    control,
                    checkpoint,
                    resume,
                    obs,
                )
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Serve {
            addr,
            workers,
            queue,
            cache_mb,
            default_timeout,
            trace_dir,
            metrics_addr,
            preload,
            coordinator,
            no_fallback,
        } => run_serve(
            &addr,
            workers,
            queue,
            cache_mb,
            default_timeout,
            trace_dir,
            metrics_addr,
            &preload,
            &coordinator,
            no_fallback,
        ),
        Command::Client { addr, action } => run_client(&addr, action),
        Command::Generate {
            model: GenModel::OctPlanted { left, right, edges, oct },
            seed,
            output,
            ..
        } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cfg = gen::NearBipartiteConfig::new(left, right, edges, oct);
            let (g, plan) = gen::near_bipartite(&mut rng, &cfg);
            match bigraph::general::write_general_edge_list_path(&g, &output) {
                Ok(()) => {
                    println!(
                        "wrote {} (|V|={} |E|={} planted |OCT|={})",
                        output,
                        g.num_vertices(),
                        g.num_edges(),
                        plan.oct.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Generate { model, seed, scale, output } => {
            let g = build_model(&model, seed, scale);
            match bigraph::io::write_edge_list_path(&g, &output) {
                Ok(()) => {
                    println!(
                        "wrote {} (|U|={} |V|={} |E|={})",
                        output,
                        g.num_u(),
                        g.num_v(),
                        g.num_edges()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_serve(
    addr: &str,
    workers: usize,
    queue: usize,
    cache_mb: usize,
    default_timeout: Option<f64>,
    trace_dir: Option<String>,
    metrics_addr: Option<String>,
    preload: &[(String, String)],
    coordinator: &[String],
    no_fallback: bool,
) -> ExitCode {
    let coordinator_cfg = (!coordinator.is_empty()).then(|| {
        let mut c = serve::CoordinatorConfig::new(coordinator.to_vec());
        c.local_fallback = !no_fallback;
        c
    });
    let metrics_sock = match metrics_addr {
        Some(a) => match a.parse::<std::net::SocketAddr>() {
            Ok(sock) => Some(sock),
            Err(e) => {
                eprintln!("error: bad --metrics-addr {a}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let cfg = serve::ServerConfig {
        workers,
        queue_capacity: queue,
        cache_bytes: cache_mb << 20,
        default_timeout: default_timeout.map(std::time::Duration::from_secs_f64),
        trace_dir: trace_dir.map(std::path::PathBuf::from),
        metrics_addr: metrics_sock,
        coordinator: coordinator_cfg,
        ..serve::ServerConfig::default()
    };
    let server = match serve::Server::bind(addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, file) in preload {
        match bigraph::io::read_edge_list_path(file) {
            Ok(g) => {
                let (nu, nv, ne) = (g.num_u(), g.num_v(), g.num_edges());
                match server.preload(name, g) {
                    Ok(()) => {
                        println!("loaded {name} from {file} (|U|={nu} |V|={nv} |E|={ne})");
                    }
                    Err(e) => {
                        eprintln!("error: cannot register {name}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: cannot load {name} from {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "mbe-serve listening on {} ({workers} workers, queue {queue}, cache {cache_mb} MiB)",
        server.local_addr()
    );
    if let Some(maddr) = server.metrics_addr() {
        println!("metrics exposition on http://{maddr}/metrics");
    }
    if !coordinator.is_empty() {
        println!(
            "coordinator mode: fanning shardable queries out to {} worker(s): {}{}",
            coordinator.len(),
            coordinator.join(", "),
            if no_fallback { " (no local fallback)" } else { "" }
        );
    }
    println!("type `q` + Enter (or send SHUTDOWN) to stop");

    // Bridge the interactive quit watcher onto the server: a RunControl
    // registered with the shared cancel source stands in for a signal
    // handler, and a monitor thread translates its trip into a graceful
    // shutdown. The monitor also exits when a client-issued SHUTDOWN
    // beats it to the flag.
    let quit = RunControl::new();
    interrupt::register(&quit);
    let monitor = server.handle();
    std::thread::Builder::new()
        .name("mbe-serve-quit".into())
        .spawn(move || {
            while !monitor.is_shutting_down() {
                if quit.is_cancelled() {
                    monitor.shutdown();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
        .ok();

    match server.run() {
        Ok(summary) => {
            println!(
                "server stopped: {} queries ({} busy-rejected), {} graphs, \
                 cache {} hits / {} misses",
                summary.queries,
                summary.busy_rejected,
                summary.graphs,
                summary.cache.hits,
                summary.cache.misses
            );
            if summary.queue_wait.executed > 0 {
                println!(
                    "queue wait: {} jobs, max {:?}, mean {:?}",
                    summary.queue_wait.executed,
                    std::time::Duration::from_micros(summary.queue_wait.max_us),
                    std::time::Duration::from_micros(
                        summary.queue_wait.total_us / summary.queue_wait.executed
                    )
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_client(addr: &str, action: ClientAction) -> ExitCode {
    let mut client = match serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match action {
        ClientAction::Load { name, file } => client.load(&name, &file).map(|info| {
            println!(
                "loaded {}: |U|={} |V|={} |E|={} fingerprint={:016x}",
                info.name, info.num_u, info.num_v, info.num_edges, info.fingerprint
            );
        }),
        ClientAction::LoadGeneral { name, file } => client.load_general(&name, &file).map(|info| {
            println!(
                "loaded general {}: |V|={} |E|={} fingerprint={:016x}",
                info.name, info.num_u, info.num_edges, info.fingerprint
            );
        }),
        ClientAction::List => client.list().map(|graphs| {
            if graphs.is_empty() {
                println!("no graphs registered");
            }
            for info in graphs {
                println!(
                    "{:<16} |U|={:<8} |V|={:<8} |E|={:<10} fingerprint={:016x}",
                    info.name, info.num_u, info.num_v, info.num_edges, info.fingerprint
                );
            }
        }),
        ClientAction::Stats { watch: None } => client.stats().map(|s| print_stats(&s)),
        ClientAction::Stats { watch: Some(secs) } => run_client_stats_watch(&mut client, secs),
        ClientAction::Metrics => client.metrics().map(|m| print_metrics(&m)),
        ClientAction::Shutdown => client.shutdown().map(|()| {
            println!("server is shutting down");
        }),
        ClientAction::Query {
            graph,
            algorithm,
            order,
            threads,
            min_left,
            min_right,
            top_k,
            count_only,
            max_bicliques,
            timeout,
            max_print,
        } => {
            let params = mbe::service::QueryParams {
                algorithm,
                order,
                threads,
                min_left,
                min_right,
                top_k,
                max_bicliques,
                timeout: timeout.map(std::time::Duration::from_secs_f64),
                count_only,
            };
            // Only fetch what will be printed; the reply's `total` still
            // reports how many the server holds.
            let max_return = u32::try_from(max_print).unwrap_or(u32::MAX);
            return run_client_query(
                client,
                serve::QueryRequest { graph, params, max_return, trace: None },
            );
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_client_query(mut client: serve::Client, request: serve::QueryRequest) -> ExitCode {
    let reply = match client.query(request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_stop_note(reply.stop);
    let source = if reply.cached { "cache" } else { "server run" };
    println!(
        "{} maximal bicliques from {source} in {:?}",
        reply.emitted,
        std::time::Duration::from_micros(reply.elapsed_us)
    );
    if let Some(d) = reply.dist {
        println!(
            "distributed across {} workers in {} shards ({} retries, {} re-steals, \
             {} speculated)",
            d.workers, d.shards, d.retries, d.resteals, d.speculated
        );
        if d.degraded {
            println!("degraded: local fallback enumerated the remainder after worker loss");
        }
    }
    for b in &reply.bicliques {
        println!("  L={:?} R={:?}", b.left, b.right);
    }
    let shown = reply.bicliques.len() as u64;
    if reply.total > shown {
        println!("  … {} more (raise --max-print)", reply.total - shown);
    }
    if let Some(bytes) = &reply.checkpoint {
        eprintln!(
            "note: the stopped run returned a {}-byte checkpoint — \
             save it with the library API to resume elsewhere",
            bytes.len()
        );
    }
    ExitCode::SUCCESS
}

/// Renders the admission queue-wait counters in human units, with the
/// mean normalized by executed jobs. Zero executed jobs reads as idle
/// rather than dividing by a guess.
fn format_queue_wait(total_us: u64, max_us: u64, executed: u64) -> String {
    if executed == 0 {
        return "no jobs executed yet".to_string();
    }
    format!(
        "max {:?}, mean {:?} over {executed} jobs",
        std::time::Duration::from_micros(max_us),
        std::time::Duration::from_micros(total_us / executed)
    )
}

fn print_stats(s: &serve::ServerStats) {
    println!("graphs        : {}", s.graphs);
    println!("workers       : {}", s.workers);
    println!("inflight      : {}", s.inflight);
    println!("queued        : {}/{}", s.queued, s.queue_capacity);
    println!("queries       : {}", s.queries);
    println!("busy rejected : {}", s.busy_rejected);
    println!("tasks started : {}", s.tasks_started);
    println!("jobs executed : {}", s.jobs_executed);
    // Busy-vs-dead telemetry: a live-but-backlogged server shows
    // rising queue waits; a dead one answers nothing at all.
    println!(
        "queue wait    : {}",
        format_queue_wait(s.queue_wait_total_us, s.queue_wait_max_us, s.jobs_executed)
    );
    println!("cache hits    : {}", s.cache.hits);
    println!("cache misses  : {}", s.cache.misses);
    println!("cache inserts : {}", s.cache.insertions);
    println!("cache evicted : {}", s.cache.evictions);
    println!("cache bytes   : {}", s.cache.bytes_used);
    println!("shutting down : {}", s.shutting_down);
}

/// Polls `STATS` every `secs` seconds until Ctrl-C (or `q` + Enter),
/// repainting in place so the terminal reads like a dashboard.
fn run_client_stats_watch(client: &mut serve::Client, secs: f64) -> Result<(), serve::ServeError> {
    let quit = RunControl::new();
    interrupt::register(&quit);
    let interval = std::time::Duration::from_secs_f64(secs);
    while !quit.is_cancelled() {
        let stats = client.stats()?;
        // Clear the screen and home the cursor so each refresh paints
        // over the last one.
        print!("\x1b[2J\x1b[H");
        print_stats(&stats);
        println!("(refreshing every {secs}s — Ctrl-C or `q` + Enter stops)");
        // Sleep in short slices so the quit flag stays prompt.
        let mut left = interval;
        while left > std::time::Duration::ZERO && !quit.is_cancelled() {
            let slice = left.min(std::time::Duration::from_millis(100));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
    Ok(())
}

fn print_metrics(m: &serve::MetricsSnapshot) {
    println!("uptime        : {:?}", std::time::Duration::from_micros(m.uptime_us));
    println!(
        "graphs        : {} ({} loads, {} name conflicts)",
        m.graphs, m.graph_loads, m.graph_conflicts
    );
    println!(
        "queries       : {} total, {} distributed, {} busy-rejected, {} inflight",
        m.queries, m.dist_queries, m.busy_rejected, m.inflight
    );
    println!(
        "queue         : {}/{} queued, {} pool workers",
        m.queued, m.queue_capacity, m.pool_workers
    );
    println!(
        "queue wait    : {}",
        format_queue_wait(
            m.queue_wait.sum(),
            m.queue_wait.max_bucket_lower_bound().unwrap_or(0),
            m.jobs_executed
        )
    );
    println!(
        "cache         : {} hits / {} misses, {} inserts, {} evictions, {} bytes held, {} bytes evicted",
        m.cache_hits, m.cache_misses, m.cache_insertions, m.cache_evictions, m.cache_bytes_used, m.cache_bytes_evicted
    );
    println!("requests      :");
    for (name, op) in serve::telemetry::OP_NAMES.iter().zip(m.ops.iter()) {
        if op.count == 0 {
            continue;
        }
        let p50 = op.latency.quantile_lower_bound(0.5).unwrap_or(0);
        let p99 = op.latency.quantile_lower_bound(0.99).unwrap_or(0);
        println!(
            "  {name:<12} {:>8} calls, {:>6} errors, p50 ≥ {:?}, p99 ≥ {:?}",
            op.count,
            op.errors,
            std::time::Duration::from_micros(p50),
            std::time::Duration::from_micros(p99)
        );
    }
    if m.shard_dispatches > 0 || m.dist_queries > 0 {
        println!(
            "shards        : {} dispatched, {} retries, {} re-steals, {} speculated",
            m.shard_dispatches, m.shard_retries, m.shard_resteals, m.shard_speculated
        );
        println!(
            "fallback      : {} stranded shards claimed locally, {} full local fallbacks",
            m.shard_stranded_claims, m.shard_fallbacks
        );
    }
    if !m.workers.is_empty() {
        println!(
            "fleet health  : {} quarantines, {} re-admissions",
            m.worker_quarantines, m.worker_readmissions
        );
        for (i, w) in m.workers.iter().enumerate() {
            println!(
                "  worker {i}: {} ({} ok / {} failed attempts, streak {}, {} quarantines)",
                if w.healthy { "healthy" } else { "quarantined" },
                w.successes,
                w.failures,
                w.consecutive_failures,
                w.quarantines
            );
        }
    }
    println!("shutting down : {}", m.shutting_down);
}

/// The observability flags of `enumerate`, bundled to keep
/// [`run_enumerate`]'s signature in check.
struct ObsFlags {
    trace: Option<String>,
    metrics: bool,
    progress: Option<f64>,
    budget: Option<u64>,
}

#[allow(clippy::too_many_arguments)]
fn run_enumerate(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    order: bigraph::order::VertexOrder,
    threads: usize,
    min_left: usize,
    min_right: usize,
    top_k: Option<usize>,
    count_only: bool,
    max_print: usize,
    control: RunControl,
    checkpoint: Option<String>,
    resume: Option<String>,
    obs: ObsFlags,
) -> ExitCode {
    println!(
        "graph: |U|={} |V|={} |E|={}  algorithm={}",
        g.num_u(),
        g.num_v(),
        g.num_edges(),
        algorithm.label()
    );

    if top_k.is_some() && (checkpoint.is_some() || resume.is_some()) {
        eprintln!("error: --checkpoint/--resume do not apply to --top-k runs");
        return ExitCode::FAILURE;
    }
    if top_k.is_some() && (obs.trace.is_some() || obs.metrics || obs.progress.is_some()) {
        eprintln!("note: --trace/--metrics/--progress do not apply to --top-k runs");
    }
    if let Some(k) = top_k {
        let report = mbe::top_k_with_control(g, k, &control);
        print_stop_note(report.stop);
        println!(
            "top {} bicliques by edges ({:?}, {} bound-pruned branches):",
            report.bicliques.len(),
            report.stats.elapsed,
            report.stats.bound_pruned
        );
        for b in report.bicliques.iter().take(max_print) {
            println!(
                "  |L|={} |R|={} edges={}  L={:?} R={:?}",
                b.left.len(),
                b.right.len(),
                b.edges(),
                b.left,
                b.right
            );
        }
        return ExitCode::SUCCESS;
    }

    // Build the observers before the Enumeration so their borrows
    // outlive the run; the fanout combines --trace and --progress into
    // the builder's single observer slot.
    let trace_obs = match &obs.trace {
        Some(path) => match JsonlTraceObserver::create(path) {
            Ok(o) => Some(o),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let progress_obs = obs.progress.map(|secs| {
        observe::StderrProgress::new(std::time::Duration::from_secs_f64(secs), obs.budget)
    });
    let mut fan = FanoutObserver::new();
    if let Some(t) = &trace_obs {
        fan.push(Box::new(t));
    }
    if let Some(p) = &progress_obs {
        fan.push(Box::new(p));
    }

    let mut run =
        Enumeration::new(g).algorithm(algorithm).order(order).threads(threads).control(control);
    if !fan.is_empty() {
        run = run.observer(&fan);
        if progress_obs.is_some() {
            // The progress line is sample-driven; tighten the cadence so
            // it stays live on slow graphs.
            run = run.sample_every(64);
        }
    }
    if min_left > 1 || min_right > 1 {
        run = run.thresholds(SizeThresholds::new(min_left, min_right));
    }
    if let Some(path) = &resume {
        match mbe::Checkpoint::load(path) {
            Ok(ckpt) => {
                eprintln!(
                    "note: resuming from {path} ({} bicliques emitted before the stop)",
                    ckpt.emitted
                );
                // The checkpoint pins algorithm/order/mbet; resume()
                // overrides whatever the flags requested.
                if ckpt.algorithm != algorithm || ckpt.order != order {
                    eprintln!(
                        "note: the checkpoint pins algorithm={} — \
                         --algorithm/--order are ignored on resume",
                        ckpt.algorithm.label()
                    );
                }
                run = run.resume(ckpt);
            }
            Err(e) => {
                eprintln!("error: cannot resume from {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut exit = ExitCode::SUCCESS;
    let report = if count_only { run.count() } else { run.collect() };
    let report = match report {
        Ok(r) => r,
        Err(mbe::MbeError::WorkerPanic { task, payload, report }) => {
            // The driver contained the panic: the partial report (and any
            // checkpoint) is still valid, so print it before failing.
            eprintln!("error: a worker panicked in {task}: {payload}");
            exit = ExitCode::FAILURE;
            *report
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_stop_note(report.stop);
    if let Some(path) = &checkpoint {
        match &report.checkpoint {
            Some(ckpt) => match ckpt.save(path) {
                Ok(()) => eprintln!(
                    "note: checkpoint written to {path} — continue with `--resume {path}`"
                ),
                Err(e) => {
                    eprintln!("error: failed to write checkpoint to {path}: {e}");
                    exit = ExitCode::FAILURE;
                }
            },
            None => eprintln!("note: run completed — no checkpoint written to {path}"),
        }
    }
    let qualifier = if min_left > 1 || min_right > 1 {
        format!(" with |L|>={min_left} |R|>={min_right}")
    } else {
        String::new()
    };
    println!(
        "{} maximal bicliques{} in {:?} (tasks={} nodes={} nonmaximal={} batched={})",
        report.count(),
        qualifier,
        report.stats.elapsed,
        report.stats.tasks,
        report.stats.nodes,
        report.stats.nonmaximal,
        report.stats.batched
    );
    if !count_only {
        for b in report.bicliques.iter().take(max_print) {
            println!("  L={:?} R={:?}", b.left, b.right);
        }
        if report.bicliques.len() > max_print {
            println!("  … {} more (raise --max-print)", report.bicliques.len() - max_print);
        }
    }
    if obs.metrics {
        observe::print_worker_metrics(&report.metrics);
    }
    if let (Some(path), Some(t)) = (&obs.trace, &trace_obs) {
        match t.take_error() {
            Some(e) => {
                eprintln!("error: trace write to {path} failed: {e}");
                exit = ExitCode::FAILURE;
            }
            None => eprintln!("note: trace written to {path}"),
        }
    }
    exit
}

/// The general-graph analogue of [`run_enumerate`]: the OCT driver with
/// the same control/observability surface. `--max-bicliques` is passed
/// to the driver (which counts deduplicated final emissions) rather
/// than to the control (which would gate raw per-assignment candidates
/// before dedup).
#[allow(clippy::too_many_arguments)]
fn run_oct_enumerate(
    g: &bigraph::general::GeneralGraph,
    algorithm: Algorithm,
    order: bigraph::order::VertexOrder,
    threads: usize,
    max_oct: u32,
    count_only: bool,
    max_print: usize,
    max_bicliques: Option<u64>,
    control: RunControl,
    checkpoint: Option<String>,
    resume: Option<String>,
    obs: ObsFlags,
) -> ExitCode {
    println!(
        "general graph: |V|={} |E|={}  algorithm={} (OCT driver)",
        g.num_vertices(),
        g.num_edges(),
        algorithm.label()
    );

    let trace_obs = match &obs.trace {
        Some(path) => match JsonlTraceObserver::create(path) {
            Ok(o) => Some(o),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let progress_obs = obs.progress.map(|secs| {
        observe::StderrProgress::new(std::time::Duration::from_secs_f64(secs), obs.budget)
    });
    let mut fan = FanoutObserver::new();
    if let Some(t) = &trace_obs {
        fan.push(Box::new(t));
    }
    if let Some(p) = &progress_obs {
        fan.push(Box::new(p));
    }

    let mut run = oct::OctEnumeration::new(g)
        .algorithm(algorithm)
        .order(order)
        .threads(threads)
        .max_oct(max_oct)
        .control(control);
    if let Some(n) = max_bicliques {
        run = run.max_bicliques(n);
    }
    if !fan.is_empty() {
        run = run.observer(&fan);
    }
    if let Some(path) = &resume {
        match oct::OctCheckpoint::load(path) {
            Ok(ckpt) => {
                eprintln!(
                    "note: resuming from {path} ({} bicliques emitted before the stop)",
                    ckpt.emitted
                );
                if ckpt.algorithm != algorithm || ckpt.order != order {
                    eprintln!(
                        "note: the checkpoint pins algorithm={} — \
                         --algorithm/--order are ignored on resume",
                        ckpt.algorithm.label()
                    );
                }
                run = run.resume(ckpt);
            }
            Err(e) => {
                eprintln!("error: cannot resume from {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut exit = ExitCode::SUCCESS;
    let report = match if count_only { run.count() } else { run.collect() } {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_stop_note(report.stop);
    if let Some(path) = &checkpoint {
        match &report.checkpoint {
            Some(ckpt) => match ckpt.save(path) {
                Ok(()) => eprintln!(
                    "note: checkpoint written to {path} — continue with `--resume {path}`"
                ),
                Err(e) => {
                    eprintln!("error: failed to write checkpoint to {path}: {e}");
                    exit = ExitCode::FAILURE;
                }
            },
            None => eprintln!("note: run completed — no checkpoint written to {path}"),
        }
    }
    println!(
        "decomposition: |OCT|={} |X|={} |Y|={} ({} valid assignments, {} units, {} inner runs)",
        report.stats.oct_size,
        report.stats.left_size,
        report.stats.right_size,
        report.stats.assignments,
        report.stats.units_run,
        report.stats.inner_runs
    );
    println!(
        "{} maximal induced bicliques in {:?} \
         (candidates={} duplicates={} nonmaximal={})",
        report.stats.emitted,
        report.stats.elapsed,
        report.stats.candidates,
        report.stats.duplicates,
        report.stats.nonmaximal
    );
    if !count_only {
        for b in report.bicliques.iter().take(max_print) {
            println!("  A={:?} B={:?}", b.left, b.right);
        }
        if report.bicliques.len() > max_print {
            println!("  … {} more (raise --max-print)", report.bicliques.len() - max_print);
        }
    }
    if obs.metrics {
        observe::print_worker_metrics(&report.metrics);
    }
    if let (Some(path), Some(t)) = (&obs.trace, &trace_obs) {
        match t.take_error() {
            Some(e) => {
                eprintln!("error: trace write to {path} failed: {e}");
                exit = ExitCode::FAILURE;
            }
            None => eprintln!("note: trace written to {path}"),
        }
    }
    exit
}

/// One line of context when a run stopped early, on stderr so it never
/// contaminates piped output.
fn print_stop_note(stop: StopReason) {
    if !stop.is_complete() {
        eprintln!("note: run stopped early ({}) — results are partial", stop.label());
    }
}

fn build_model(model: &GenModel, seed: u64, scale: f64) -> BipartiteGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match model {
        GenModel::Preset(abbrev) => match gen::presets::by_abbrev(abbrev) {
            Some(p) => p.build_scaled(seed, scale),
            None => {
                eprintln!("unknown preset `{abbrev}` — see `mbe-cli presets`");
                std::process::exit(1);
            }
        },
        GenModel::ChungLu { nu, nv, edges } => {
            let cfg = gen::chung_lu::ChungLuConfig::new(*nu, *nv, *edges);
            gen::chung_lu::generate(&mut rng, &cfg)
        }
        GenModel::Gnm { nu, nv, edges } => gen::er::gnm(&mut rng, *nu, *nv, *edges),
        // Dispatched to the general-graph writer in `main` before
        // reaching the bipartite builder.
        GenModel::OctPlanted { .. } => unreachable!("oct-planted is handled in main"),
    }
}

#[cfg(test)]
mod tests {
    use super::format_queue_wait;

    #[test]
    fn queue_wait_is_normalized_by_executed_jobs() {
        // 900µs over 3 jobs → 300µs mean; max passes through.
        assert_eq!(format_queue_wait(900, 1_200, 3), "max 1.2ms, mean 300µs over 3 jobs");
    }

    #[test]
    fn queue_wait_with_no_jobs_does_not_divide() {
        assert_eq!(format_queue_wait(0, 0, 0), "no jobs executed yet");
        // Stale totals with zero executed still must not panic.
        assert_eq!(format_queue_wait(500, 500, 0), "no jobs executed yet");
    }

    #[test]
    fn queue_wait_uses_human_units_across_scales() {
        assert_eq!(format_queue_wait(2_000_000, 2_000_000, 1), "max 2s, mean 2s over 1 jobs");
        assert_eq!(format_queue_wait(10, 10, 1), "max 10µs, mean 10µs over 1 jobs");
    }
}
