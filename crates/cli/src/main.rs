//! `mbe-cli`: command-line access to the enumeration library.
//!
//! See [`args::USAGE`] or run `mbe-cli help`.

#![forbid(unsafe_code)]

mod args;

use args::{Command, GenModel};
use bigraph::BipartiteGraph;
use mbe::{Algorithm, MbeOptions, SizeThresholds};
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Rust maps SIGPIPE to an Err on stdout writes, which println! turns
    // into a panic when the consumer (`head`, a closed pager) goes away.
    // Dying quietly is the correct CLI behavior; without a libc
    // dependency the portable way is a panic hook that recognizes the
    // broken-pipe payload and exits success.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
        std::process::exit(101);
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Command::Help { error: None } => {
            print!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Command::Help { error: Some(e) } => {
            eprintln!("error: {e}\n");
            eprint!("{}", args::USAGE);
            ExitCode::FAILURE
        }
        Command::Presets => {
            println!(
                "{:<6}{:<16}{:>12}{:>12}{:>14}{:>16}",
                "abbr", "name", "|U|(real)", "|V|(real)", "|E|(real)", "B(published)"
            );
            for p in gen::all_presets() {
                println!(
                    "{:<6}{:<16}{:>12}{:>12}{:>14}{:>16}",
                    p.abbrev,
                    p.name,
                    p.real.num_u,
                    p.real.num_v,
                    p.real.num_edges,
                    p.real.max_bicliques
                );
            }
            ExitCode::SUCCESS
        }
        Command::Stats { file } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                let s = bigraph::stats::stats(&g);
                println!("file     : {file}");
                println!("|U|      : {}", s.num_u);
                println!("|V|      : {}", s.num_v);
                println!("|E|      : {}", s.num_edges);
                println!("D(U)     : {}", s.max_deg_u);
                println!("D(V)     : {}", s.max_deg_v);
                println!("D2(U)    : {}", s.max_two_hop_u);
                println!("D2(V)    : {}", s.max_two_hop_v);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Butterflies { file } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                let t = std::time::Instant::now();
                let n = bigraph::butterfly::count_butterflies(&g);
                println!(
                    "butterflies: {n} (density {:.4} per edge) in {:?}",
                    bigraph::butterfly::butterfly_density(&g),
                    t.elapsed()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Core { file, alpha, beta, output } => {
            match bigraph::io::read_edge_list_path(&file) {
                Ok(g) => {
                    let red = bigraph::core::alpha_beta_core(&g, alpha, beta);
                    println!(
                        "({alpha},{beta})-core: |U| {} -> {}, |V| {} -> {}, |E| {} -> {}",
                        g.num_u(),
                        red.graph.num_u(),
                        g.num_v(),
                        red.graph.num_v(),
                        g.num_edges(),
                        red.graph.num_edges()
                    );
                    if let Some(out) = output {
                        if let Err(e) = bigraph::io::write_edge_list_path(&red.graph, &out) {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote reduced graph to {out} (ids re-labeled densely)");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Enumerate {
            file,
            algorithm,
            order,
            threads,
            min_left,
            min_right,
            top_k,
            count_only,
            max_print,
        } => match bigraph::io::read_edge_list_path(&file) {
            Ok(g) => {
                run_enumerate(
                    &g, algorithm, order, threads, min_left, min_right, top_k, count_only,
                    max_print,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Generate { model, seed, scale, output } => {
            let g = build_model(&model, seed, scale);
            match bigraph::io::write_edge_list_path(&g, &output) {
                Ok(()) => {
                    println!(
                        "wrote {} (|U|={} |V|={} |E|={})",
                        output,
                        g.num_u(),
                        g.num_v(),
                        g.num_edges()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_enumerate(
    g: &BipartiteGraph,
    algorithm: Algorithm,
    order: bigraph::order::VertexOrder,
    threads: usize,
    min_left: usize,
    min_right: usize,
    top_k: Option<usize>,
    count_only: bool,
    max_print: usize,
) {
    println!(
        "graph: |U|={} |V|={} |E|={}  algorithm={}",
        g.num_u(),
        g.num_v(),
        g.num_edges(),
        algorithm.label()
    );

    if let Some(k) = top_k {
        let (top, stats) = mbe::top_k_by_edges(g, k);
        println!(
            "top {} bicliques by edges ({:?}, {} bound-pruned branches):",
            top.len(),
            stats.elapsed,
            stats.bound_pruned
        );
        for b in top.iter().take(max_print) {
            println!(
                "  |L|={} |R|={} edges={}  L={:?} R={:?}",
                b.left.len(),
                b.right.len(),
                b.edges(),
                b.left,
                b.right
            );
        }
        return;
    }

    if min_left > 1 || min_right > 1 {
        let thr = SizeThresholds::new(min_left, min_right);
        let (found, stats) = mbe::collect_filtered(g, thr);
        println!(
            "{} maximal bicliques with |L|>={} |R|>={} in {:?}",
            found.len(),
            thr.min_l,
            thr.min_r,
            stats.elapsed
        );
        if !count_only {
            for b in found.iter().take(max_print) {
                println!("  L={:?} R={:?}", b.left, b.right);
            }
        }
        return;
    }

    let opts = MbeOptions::new(algorithm).order(order).threads(threads);
    if threads != 1 {
        let (n, stats) = mbe::parallel::par_count_bicliques(g, &opts);
        println!("{n} maximal bicliques in {:?} ({} tasks)", stats.elapsed, stats.tasks);
        return;
    }
    if count_only {
        let (n, stats) = mbe::count_bicliques(g, &opts);
        println!(
            "{n} maximal bicliques in {:?} (nodes={} nonmaximal={} batched={})",
            stats.elapsed, stats.nodes, stats.nonmaximal, stats.batched
        );
    } else {
        let (all, stats) = mbe::collect_bicliques(g, &opts).expect("enumeration completes");
        println!("{} maximal bicliques in {:?}", all.len(), stats.elapsed);
        for b in all.iter().take(max_print) {
            println!("  L={:?} R={:?}", b.left, b.right);
        }
        if all.len() > max_print {
            println!("  … {} more (raise --max-print)", all.len() - max_print);
        }
    }
}

fn build_model(model: &GenModel, seed: u64, scale: f64) -> BipartiteGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match model {
        GenModel::Preset(abbrev) => match gen::presets::by_abbrev(abbrev) {
            Some(p) => p.build_scaled(seed, scale),
            None => {
                eprintln!("unknown preset `{abbrev}` — see `mbe-cli presets`");
                std::process::exit(1);
            }
        },
        GenModel::ChungLu { nu, nv, edges } => {
            let cfg = gen::chung_lu::ChungLuConfig::new(*nu, *nv, *edges);
            gen::chung_lu::generate(&mut rng, &cfg)
        }
        GenModel::Gnm { nu, nv, edges } => gen::er::gnm(&mut rng, *nu, *nv, *edges),
    }
}
