//! CLI-side observers: the `--progress` live stderr line and the
//! `--metrics` per-worker table.
//!
//! Both are built on the library's [`mbe::Observer`] hooks; the rate and
//! ETA math is shared with [`mbe::progress::ProgressSink`].

use mbe::metrics::RunMetrics;
use mbe::obs::Observer;
use mbe::Histogram;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Prints a `progress: …` line to stderr at most once per `every`,
/// driven by the run's emission samples. With an emission budget the
/// line includes an ETA at the mean rate observed so far.
pub struct StderrProgress {
    every: Duration,
    budget: Option<u64>,
    state: Mutex<State>,
}

struct State {
    start: Instant,
    last_print: Instant,
    /// Last sampled cumulative emitted count per worker; the live total
    /// is their sum (each worker samples independently).
    per_worker: Vec<u64>,
    printed: bool,
}

impl StderrProgress {
    /// A progress line every `every` (first line after one interval).
    pub fn new(every: Duration, budget: Option<u64>) -> Self {
        let now = Instant::now();
        StderrProgress {
            every,
            budget,
            state: Mutex::new(State {
                start: now,
                last_print: now,
                per_worker: Vec::new(),
                printed: false,
            }),
        }
    }
}

impl Observer for StderrProgress {
    fn on_emit_sample(&self, worker: usize, emitted: u64) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.per_worker.len() <= worker {
            st.per_worker.resize(worker + 1, 0);
        }
        st.per_worker[worker] = emitted;
        if st.last_print.elapsed() < self.every {
            return;
        }
        st.last_print = Instant::now();
        st.printed = true;
        let total: u64 = st.per_worker.iter().sum();
        let elapsed = st.start.elapsed();
        let rate = mbe::progress::rate_per_sec(total, elapsed);
        match self.budget.and_then(|b| mbe::progress::eta(total, b, elapsed)) {
            Some(eta) => eprintln!("progress: {total} bicliques, {rate:.0}/s, eta {eta:.0?}"),
            None => eprintln!("progress: {total} bicliques, {rate:.0}/s"),
        }
    }

    fn on_run_end(&self, _stop: mbe::StopReason, stats: &mbe::Stats) {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.printed {
            // Close the stream of interim lines with the exact final count
            // (interim totals are sample-grained, so they lag slightly).
            eprintln!("progress: done — {} bicliques in {:?}", stats.emitted, st.start.elapsed());
        }
    }
}

/// Prints the per-worker metrics table (`--metrics`) to stderr: task,
/// steal, and idle-wakeup counts, delivered emissions, task-latency
/// quantiles, and the deepest recursion each worker reached.
pub fn print_worker_metrics(m: &RunMetrics) {
    if m.workers.is_empty() {
        eprintln!("metrics: none recorded for this run mode");
        return;
    }
    eprintln!(
        "{:>5} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9} {:>6}",
        "w", "tasks", "steals", "idle", "emitted", "p50_us", "p99_us", "depth"
    );
    for wm in &m.workers {
        eprintln!(
            "{:>5} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9} {:>6}",
            wm.worker,
            wm.tasks,
            wm.steals,
            wm.idle_wakeups,
            wm.emitted,
            quantile(&wm.task_latency_us, 0.50),
            quantile(&wm.task_latency_us, 0.99),
            wm.peak_depth,
        );
    }
    if m.workers.len() > 1 {
        let merged = m.task_latency_us();
        eprintln!(
            "{:>5} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9} {:>6}",
            "total",
            m.total_tasks(),
            m.total_steals(),
            m.total_idle_wakeups(),
            m.total_emitted(),
            quantile(&merged, 0.50),
            quantile(&merged, 0.99),
            m.peak_depth(),
        );
    }
}

/// Formats a histogram quantile as its power-of-two lower bound
/// (`≥N`), or `-` when the histogram is empty.
fn quantile(h: &Histogram, q: f64) -> String {
    match h.quantile_lower_bound(q) {
        Some(v) => format!("\u{2265}{v}"),
        None => "-".to_string(),
    }
}
