//! Hand-rolled argument parsing (no external dependencies).
//!
//! Grammar:
//!
//! ```text
//! mbe-cli stats <file>
//! mbe-cli enumerate <file> [--algorithm A] [--order O] [--threads N]
//!                          [--min-left A] [--min-right B] [--top-k K]
//!                          [--count-only] [--max-print M]
//!                          [--timeout SECS] [--max-bicliques N]
//!                          [--trace FILE] [--metrics] [--progress SECS]
//! mbe-cli generate <preset ABBREV | chung-lu NU NV E | gnm NU NV M>
//!                  [--seed S] [--scale X] --output FILE
//! mbe-cli serve <addr> [--workers N] [--queue N] [--cache-mb MB]
//!                      [--default-timeout SECS] [--trace-dir DIR]
//!                      [--metrics-addr ADDR] [--load NAME=FILE]...
//! mbe-cli client <addr> <load NAME FILE | list | stats [--watch SECS]
//!                        | metrics | shutdown | query GRAPH [flags]>
//! mbe-cli presets
//! ```

use bigraph::order::VertexOrder;
use mbe::Algorithm;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `stats <file>`
    Stats { file: String },
    /// `butterflies <file>`
    Butterflies { file: String },
    /// `core <file> <alpha> <beta> [--output FILE]`
    Core { file: String, alpha: usize, beta: usize, output: Option<String> },
    /// `enumerate <file> ...`
    Enumerate {
        file: String,
        algorithm: Algorithm,
        order: VertexOrder,
        threads: usize,
        min_left: usize,
        min_right: usize,
        top_k: Option<usize>,
        count_only: bool,
        max_print: usize,
        timeout: Option<f64>,
        max_bicliques: Option<u64>,
        checkpoint: Option<String>,
        resume: Option<String>,
        trace: Option<String>,
        metrics: bool,
        progress: Option<f64>,
    },
    /// `oct-enumerate <file> ...` — maximal induced bicliques of a
    /// *general* graph via odd-cycle-transversal decomposition.
    OctEnumerate {
        file: String,
        algorithm: Algorithm,
        order: VertexOrder,
        threads: usize,
        max_oct: u32,
        count_only: bool,
        max_print: usize,
        timeout: Option<f64>,
        max_bicliques: Option<u64>,
        checkpoint: Option<String>,
        resume: Option<String>,
        trace: Option<String>,
        metrics: bool,
        progress: Option<f64>,
    },
    /// `generate ...`
    Generate { model: GenModel, seed: u64, scale: f64, output: String },
    /// `serve <addr> ...`
    Serve {
        addr: String,
        workers: usize,
        queue: usize,
        cache_mb: usize,
        default_timeout: Option<f64>,
        trace_dir: Option<String>,
        /// Prometheus scrape address (`GET /metrics`), when enabled.
        metrics_addr: Option<String>,
        preload: Vec<(String, String)>,
        /// Worker addresses for coordinator mode (empty = plain server).
        coordinator: Vec<String>,
        /// Refuse (typed `no-workers`) instead of falling back to local
        /// enumeration when every worker is lost.
        no_fallback: bool,
    },
    /// `client <addr> <action>`
    Client { addr: String, action: ClientAction },
    /// `presets`
    Presets,
    /// `help` (also on bad input, with the error noted)
    Help { error: Option<String> },
}

/// What `client` should ask the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// `load NAME FILE` — register a server-side edge list.
    Load { name: String, file: String },
    /// `load-general NAME FILE` — register a *general* (non-bipartite)
    /// edge list; queries route through the OCT driver.
    LoadGeneral { name: String, file: String },
    /// `list` — show registered graphs.
    List,
    /// `stats [--watch SECS]` — show server counters, optionally
    /// refreshing in place every SECS seconds until interrupted.
    Stats { watch: Option<f64> },
    /// `metrics` — show the full server telemetry snapshot.
    Metrics,
    /// `shutdown` — graceful server shutdown.
    Shutdown,
    /// `query GRAPH [flags]` — run (or replay from cache) a query.
    Query {
        graph: String,
        algorithm: Algorithm,
        order: VertexOrder,
        threads: usize,
        min_left: usize,
        min_right: usize,
        top_k: Option<usize>,
        count_only: bool,
        max_bicliques: Option<u64>,
        timeout: Option<f64>,
        max_print: usize,
    },
}

/// What `generate` should produce.
#[derive(Debug, Clone, PartialEq)]
pub enum GenModel {
    Preset(String),
    ChungLu {
        nu: u32,
        nv: u32,
        edges: usize,
    },
    Gnm {
        nu: u32,
        nv: u32,
        edges: usize,
    },
    /// Planted near-bipartite *general* graph (written as a general
    /// edge list, consumable by `oct-enumerate` and `LOAD_GENERAL`).
    OctPlanted {
        left: u32,
        right: u32,
        edges: usize,
        oct: u32,
    },
}

/// Parses a full argument list (without the program name).
pub fn parse(args: &[String]) -> Command {
    let Some(cmd) = args.first() else {
        return Command::Help { error: None };
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Command::Help { error: None },
        "presets" => Command::Presets,
        "stats" => match args.get(1) {
            Some(f) => Command::Stats { file: f.clone() },
            None => err("stats requires a file argument"),
        },
        "butterflies" => match args.get(1) {
            Some(f) => Command::Butterflies { file: f.clone() },
            None => err("butterflies requires a file argument"),
        },
        "core" => parse_core(&args[1..]),
        "enumerate" => parse_enumerate(&args[1..]),
        "oct-enumerate" => parse_oct_enumerate(&args[1..]),
        "generate" => parse_generate(&args[1..]),
        "serve" => parse_serve(&args[1..]),
        "client" => parse_client(&args[1..]),
        other => err(&format!("unknown command `{other}`")),
    }
}

fn err(msg: &str) -> Command {
    Command::Help { error: Some(msg.to_string()) }
}

fn parse_enumerate(args: &[String]) -> Command {
    let Some(file) = args.first() else {
        return err("enumerate requires a file argument");
    };
    let mut out = Command::Enumerate {
        file: file.clone(),
        algorithm: Algorithm::Mbet,
        order: VertexOrder::AscendingDegree,
        threads: 1,
        min_left: 1,
        min_right: 1,
        top_k: None,
        count_only: false,
        max_print: 20,
        timeout: None,
        max_bicliques: None,
        checkpoint: None,
        resume: None,
        trace: None,
        metrics: false,
        progress: None,
    };
    let Command::Enumerate {
        algorithm,
        order,
        threads,
        min_left,
        min_right,
        top_k,
        count_only,
        max_print,
        timeout,
        max_bicliques,
        checkpoint,
        resume,
        trace,
        metrics,
        progress,
        ..
    } = &mut out
    else {
        unreachable!()
    };

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count-only" => *count_only = true,
            "--algorithm" => match it.next().map(String::as_str) {
                Some("mbet") => *algorithm = Algorithm::Mbet,
                Some("mbea") => *algorithm = Algorithm::Mbea,
                Some("imbea") => *algorithm = Algorithm::Imbea,
                Some("minelmbc") => *algorithm = Algorithm::MineLmbc,
                other => return err(&format!("bad --algorithm {other:?}")),
            },
            "--order" => match it.next().map(String::as_str) {
                Some("asc") => *order = VertexOrder::AscendingDegree,
                Some("desc") => *order = VertexOrder::DescendingDegree,
                Some("unilateral") => *order = VertexOrder::Unilateral,
                Some("natural") => *order = VertexOrder::Natural,
                Some(s) if s.starts_with("random:") => match s["random:".len()..].parse() {
                    Ok(seed) => *order = VertexOrder::Random(seed),
                    Err(_) => return err("bad random seed in --order"),
                },
                other => return err(&format!("bad --order {other:?}")),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *threads = n,
                None => return err("--threads needs a number"),
            },
            "--min-left" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *min_left = n,
                None => return err("--min-left needs a number"),
            },
            "--min-right" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *min_right = n,
                None => return err("--min-right needs a number"),
            },
            "--top-k" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *top_k = Some(n),
                None => return err("--top-k needs a number"),
            },
            "--max-print" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *max_print = n,
                None => return err("--max-print needs a number"),
            },
            "--timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => *timeout = Some(secs),
                _ => return err("--timeout needs a positive number of seconds"),
            },
            "--max-bicliques" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => *max_bicliques = Some(n),
                _ => return err("--max-bicliques needs a positive number"),
            },
            "--checkpoint" => match it.next() {
                Some(p) => *checkpoint = Some(p.clone()),
                None => return err("--checkpoint needs a path"),
            },
            "--resume" => match it.next() {
                Some(p) => *resume = Some(p.clone()),
                None => return err("--resume needs a path"),
            },
            "--trace" => match it.next() {
                Some(p) => *trace = Some(p.clone()),
                None => return err("--trace needs a path"),
            },
            "--metrics" => *metrics = true,
            "--progress" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => *progress = Some(secs),
                _ => return err("--progress needs a positive number of seconds"),
            },
            other => return err(&format!("unknown enumerate flag `{other}`")),
        }
    }
    out
}

fn parse_oct_enumerate(args: &[String]) -> Command {
    let Some(file) = args.first() else {
        return err("oct-enumerate requires a file argument");
    };
    let mut out = Command::OctEnumerate {
        file: file.clone(),
        algorithm: Algorithm::Mbet,
        order: VertexOrder::AscendingDegree,
        threads: 1,
        max_oct: 12,
        count_only: false,
        max_print: 20,
        timeout: None,
        max_bicliques: None,
        checkpoint: None,
        resume: None,
        trace: None,
        metrics: false,
        progress: None,
    };
    let Command::OctEnumerate {
        algorithm,
        order,
        threads,
        max_oct,
        count_only,
        max_print,
        timeout,
        max_bicliques,
        checkpoint,
        resume,
        trace,
        metrics,
        progress,
        ..
    } = &mut out
    else {
        unreachable!()
    };

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count-only" => *count_only = true,
            "--algorithm" => match it.next().map(String::as_str) {
                Some("mbet") => *algorithm = Algorithm::Mbet,
                Some("mbea") => *algorithm = Algorithm::Mbea,
                Some("imbea") => *algorithm = Algorithm::Imbea,
                Some("minelmbc") => *algorithm = Algorithm::MineLmbc,
                other => return err(&format!("bad --algorithm {other:?}")),
            },
            "--order" => match it.next().map(String::as_str) {
                Some("asc") => *order = VertexOrder::AscendingDegree,
                Some("desc") => *order = VertexOrder::DescendingDegree,
                Some("unilateral") => *order = VertexOrder::Unilateral,
                Some("natural") => *order = VertexOrder::Natural,
                Some(s) if s.starts_with("random:") => match s["random:".len()..].parse() {
                    Ok(seed) => *order = VertexOrder::Random(seed),
                    Err(_) => return err("bad random seed in --order"),
                },
                other => return err(&format!("bad --order {other:?}")),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *threads = n,
                None => return err("--threads needs a number"),
            },
            "--max-oct" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n <= 14 => *max_oct = n,
                _ => return err("--max-oct needs a number <= 14"),
            },
            "--max-print" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *max_print = n,
                None => return err("--max-print needs a number"),
            },
            "--timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => *timeout = Some(secs),
                _ => return err("--timeout needs a positive number of seconds"),
            },
            "--max-bicliques" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => *max_bicliques = Some(n),
                _ => return err("--max-bicliques needs a positive number"),
            },
            "--checkpoint" => match it.next() {
                Some(p) => *checkpoint = Some(p.clone()),
                None => return err("--checkpoint needs a path"),
            },
            "--resume" => match it.next() {
                Some(p) => *resume = Some(p.clone()),
                None => return err("--resume needs a path"),
            },
            "--trace" => match it.next() {
                Some(p) => *trace = Some(p.clone()),
                None => return err("--trace needs a path"),
            },
            "--metrics" => *metrics = true,
            "--progress" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => *progress = Some(secs),
                _ => return err("--progress needs a positive number of seconds"),
            },
            other => return err(&format!("unknown oct-enumerate flag `{other}`")),
        }
    }
    out
}

fn parse_core(args: &[String]) -> Command {
    let (Some(file), Some(a), Some(b)) = (args.first(), args.get(1), args.get(2)) else {
        return err("core requires FILE ALPHA BETA");
    };
    let (Ok(alpha), Ok(beta)) = (a.parse(), b.parse()) else {
        return err("core thresholds must be numbers");
    };
    let mut output = None;
    let mut it = args[3..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--output" | "-o" => match it.next() {
                Some(f) => output = Some(f.clone()),
                None => return err("--output needs a path"),
            },
            other => return err(&format!("unknown core flag `{other}`")),
        }
    }
    Command::Core { file: file.clone(), alpha, beta, output }
}

fn parse_generate(args: &[String]) -> Command {
    let mut it = args.iter();
    let model = match it.next().map(String::as_str) {
        Some("preset") => match it.next() {
            Some(abbrev) => GenModel::Preset(abbrev.clone()),
            None => return err("generate preset requires an abbreviation"),
        },
        Some("chung-lu") => match parse_triple(&mut it) {
            Some((nu, nv, e)) => GenModel::ChungLu { nu, nv, edges: e },
            None => return err("generate chung-lu requires NU NV EDGES"),
        },
        Some("gnm") => match parse_triple(&mut it) {
            Some((nu, nv, e)) => GenModel::Gnm { nu, nv, edges: e },
            None => return err("generate gnm requires NU NV EDGES"),
        },
        Some("oct-planted") => {
            let quad = (|| {
                let left = it.next()?.parse().ok()?;
                let right = it.next()?.parse().ok()?;
                let edges = it.next()?.parse().ok()?;
                let oct = it.next()?.parse().ok()?;
                Some((left, right, edges, oct))
            })();
            match quad {
                Some((left, right, edges, oct)) if left > 0 && right > 0 => {
                    GenModel::OctPlanted { left, right, edges, oct }
                }
                _ => {
                    return err(
                        "generate oct-planted requires LEFT RIGHT EDGES OCT (LEFT, RIGHT > 0)",
                    )
                }
            }
        }
        other => return err(&format!("bad generate model {other:?}")),
    };
    let mut seed = 42u64;
    let mut scale = 1.0f64;
    let mut output = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return err("--seed needs a number"),
            },
            "--scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => scale = s,
                None => return err("--scale needs a number"),
            },
            "--output" | "-o" => match it.next() {
                Some(f) => output = Some(f.clone()),
                None => return err("--output needs a path"),
            },
            other => return err(&format!("unknown generate flag `{other}`")),
        }
    }
    match output {
        Some(output) => Command::Generate { model, seed, scale, output },
        None => err("generate requires --output FILE"),
    }
}

fn parse_serve(args: &[String]) -> Command {
    let Some(addr) = args.first() else {
        return err("serve requires a listen address (e.g. 127.0.0.1:7771)");
    };
    let mut workers = 2usize;
    let mut queue = 8usize;
    let mut cache_mb = 32usize;
    let mut default_timeout = None;
    let mut trace_dir = None;
    let mut metrics_addr = None;
    let mut preload = Vec::new();
    let mut coordinator = Vec::new();
    let mut no_fallback = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return err("--workers needs a number >= 1"),
            },
            "--queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => queue = n,
                _ => return err("--queue needs a number >= 1"),
            },
            "--cache-mb" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cache_mb = n,
                None => return err("--cache-mb needs a number"),
            },
            "--default-timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => default_timeout = Some(secs),
                _ => return err("--default-timeout needs a positive number of seconds"),
            },
            "--trace-dir" => match it.next() {
                Some(d) => trace_dir = Some(d.clone()),
                None => return err("--trace-dir needs a path"),
            },
            "--metrics-addr" => match it.next() {
                Some(a) if !a.is_empty() => metrics_addr = Some(a.clone()),
                _ => return err("--metrics-addr needs an address (e.g. 127.0.0.1:9095)"),
            },
            "--load" => match it.next().and_then(|s| s.split_once('=')) {
                Some((name, file)) if !name.is_empty() && !file.is_empty() => {
                    preload.push((name.to_string(), file.to_string()));
                }
                _ => return err("--load needs NAME=FILE"),
            },
            "--coordinator" => match it.next() {
                Some(list) if !list.is_empty() => {
                    let addrs: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(String::from)
                        .collect();
                    if addrs.is_empty() {
                        return err("--coordinator needs ADDR[,ADDR...]");
                    }
                    coordinator.extend(addrs);
                }
                _ => return err("--coordinator needs ADDR[,ADDR...]"),
            },
            "--no-fallback" => no_fallback = true,
            other => return err(&format!("unknown serve flag `{other}`")),
        }
    }
    if no_fallback && coordinator.is_empty() {
        return err("--no-fallback only makes sense with --coordinator");
    }
    Command::Serve {
        addr: addr.clone(),
        workers,
        queue,
        cache_mb,
        default_timeout,
        trace_dir,
        metrics_addr,
        preload,
        coordinator,
        no_fallback,
    }
}

fn parse_client(args: &[String]) -> Command {
    let Some(addr) = args.first() else {
        return err("client requires a server address (e.g. 127.0.0.1:7771)");
    };
    let action = match args.get(1).map(String::as_str) {
        Some("load") => match (args.get(2), args.get(3)) {
            (Some(name), Some(file)) => {
                if let Some(extra) = args.get(4) {
                    return err(&format!("unexpected client load argument `{extra}`"));
                }
                ClientAction::Load { name: name.clone(), file: file.clone() }
            }
            _ => return err("client load requires NAME FILE"),
        },
        Some("load-general") => match (args.get(2), args.get(3)) {
            (Some(name), Some(file)) => {
                if let Some(extra) = args.get(4) {
                    return err(&format!("unexpected client load-general argument `{extra}`"));
                }
                ClientAction::LoadGeneral { name: name.clone(), file: file.clone() }
            }
            _ => return err("client load-general requires NAME FILE"),
        },
        Some("list") => ClientAction::List,
        Some("stats") => match parse_client_stats(&args[2..]) {
            Ok(action) => action,
            Err(msg) => return err(&msg),
        },
        Some("metrics") => ClientAction::Metrics,
        Some("shutdown") => ClientAction::Shutdown,
        Some("query") => match parse_client_query(&args[2..]) {
            Ok(action) => action,
            Err(msg) => return err(&msg),
        },
        other => {
            return err(&format!(
                "client needs an action \
                 (load|load-general|list|stats|metrics|shutdown|query), got {other:?}"
            ))
        }
    };
    Command::Client { addr: addr.clone(), action }
}

fn parse_client_stats(args: &[String]) -> Result<ClientAction, String> {
    let mut watch = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--watch" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => watch = Some(secs),
                _ => return Err("--watch needs a positive number of seconds".to_string()),
            },
            other => return Err(format!("unknown client stats flag `{other}`")),
        }
    }
    Ok(ClientAction::Stats { watch })
}

fn parse_client_query(args: &[String]) -> Result<ClientAction, String> {
    let Some(graph) = args.first() else {
        return Err("client query requires a graph name".to_string());
    };
    let mut action = ClientAction::Query {
        graph: graph.clone(),
        algorithm: Algorithm::Mbet,
        order: VertexOrder::AscendingDegree,
        threads: 1,
        min_left: 1,
        min_right: 1,
        top_k: None,
        count_only: false,
        max_bicliques: None,
        timeout: None,
        max_print: 20,
    };
    let ClientAction::Query {
        algorithm,
        order,
        threads,
        min_left,
        min_right,
        top_k,
        count_only,
        max_bicliques,
        timeout,
        max_print,
        ..
    } = &mut action
    else {
        unreachable!()
    };
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count-only" => *count_only = true,
            "--algorithm" => match it.next().map(String::as_str) {
                Some("mbet") => *algorithm = Algorithm::Mbet,
                Some("mbea") => *algorithm = Algorithm::Mbea,
                Some("imbea") => *algorithm = Algorithm::Imbea,
                Some("minelmbc") => *algorithm = Algorithm::MineLmbc,
                other => return Err(format!("bad --algorithm {other:?}")),
            },
            "--order" => match it.next().map(String::as_str) {
                Some("asc") => *order = VertexOrder::AscendingDegree,
                Some("desc") => *order = VertexOrder::DescendingDegree,
                Some("unilateral") => *order = VertexOrder::Unilateral,
                Some("natural") => *order = VertexOrder::Natural,
                Some(s) if s.starts_with("random:") => match s["random:".len()..].parse() {
                    Ok(seed) => *order = VertexOrder::Random(seed),
                    Err(_) => return Err("bad random seed in --order".to_string()),
                },
                other => return Err(format!("bad --order {other:?}")),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *threads = n,
                None => return Err("--threads needs a number".to_string()),
            },
            "--min-left" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *min_left = n,
                None => return Err("--min-left needs a number".to_string()),
            },
            "--min-right" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *min_right = n,
                None => return Err("--min-right needs a number".to_string()),
            },
            "--top-k" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *top_k = Some(n),
                None => return Err("--top-k needs a number".to_string()),
            },
            "--max-bicliques" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => *max_bicliques = Some(n),
                _ => return Err("--max-bicliques needs a positive number".to_string()),
            },
            "--timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => *timeout = Some(secs),
                _ => return Err("--timeout needs a positive number of seconds".to_string()),
            },
            "--max-print" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => *max_print = n,
                None => return Err("--max-print needs a number".to_string()),
            },
            other => return Err(format!("unknown client query flag `{other}`")),
        }
    }
    Ok(action)
}

fn parse_triple<'a>(it: &mut impl Iterator<Item = &'a String>) -> Option<(u32, u32, usize)> {
    let nu = it.next()?.parse().ok()?;
    let nv = it.next()?.parse().ok()?;
    let e = it.next()?.parse().ok()?;
    Some((nu, nv, e))
}

/// The help text.
pub const USAGE: &str = "\
mbe-cli — maximal biclique enumeration toolkit

USAGE:
  mbe-cli stats <file>
      Load a bipartite edge list and print its statistics.

  mbe-cli butterflies <file>
      Count 2x2 bicliques (butterflies) and report the density score.

  mbe-cli core <file> <alpha> <beta> [--output FILE]
      Peel to the (alpha, beta)-core; print the reduction, optionally
      write the reduced graph.

  mbe-cli enumerate <file> [options]
      Enumerate maximal bicliques.
        --algorithm mbet|mbea|imbea|minelmbc   (default mbet)
        --order asc|desc|unilateral|natural|random:SEED
        --threads N        parallel driver with N workers (0 = all cores)
        --min-left A       only bicliques with |L| >= A (pruned search)
        --min-right B      only bicliques with |R| >= B (pruned search)
        --top-k K          the K largest bicliques by edge count
        --count-only       print only the count and stats
        --max-print M      cap printed bicliques (default 20)
        --timeout SECS     stop after SECS seconds, report partial results
        --max-bicliques N  stop after N bicliques have been emitted
        --checkpoint PATH  if the run stops early, write the unexplored
                           frontier to PATH so it can be resumed later
        --resume PATH      continue a stopped run from a checkpoint
                           written by --checkpoint; the checkpoint pins
                           the original algorithm/order (only --threads
                           may change)
        --trace PATH       write a JSONL event trace of the run to PATH
                           (schema documented in DESIGN.md §8; validate
                           with `cargo run -p xtask -- trace-check PATH`)
        --metrics          print a per-worker metrics table (tasks,
                           steals, idle wakeups, emitted, latency
                           quantiles) to stderr after the run
        --progress SECS    print a live progress line (emitted, rate,
                           ETA when a budget is set) to stderr every
                           SECS seconds
      Interactive runs can be cancelled by typing `q` + Enter (or
      closing stdin); partial results are reported with the stop reason.

  mbe-cli oct-enumerate <file> [options]
      Enumerate maximal *induced* bicliques of a general (non-bipartite)
      graph, read as a general edge list (one `u v` pair per line, no
      side structure). The graph is decomposed into a small odd cycle
      transversal plus a bipartite remainder; each transversal side
      assignment runs the bipartite engine on a compacted instance, and
      results are deduplicated and maximality-filtered globally.
        --algorithm mbet|mbea|imbea|minelmbc   inner engine (default mbet)
        --order asc|desc|unilateral|natural|random:SEED
        --threads N        worker threads for each inner run
        --max-oct K        refuse transversals larger than K (default 12,
                           max 14; the sweep is 3^K assignments)
        --count-only       print only the count and stats
        --max-print M      cap printed bicliques (default 20)
        --timeout SECS     stop after SECS seconds, report partial results
        --max-bicliques N  stop after N bicliques have been emitted
        --checkpoint PATH  write a resumable position on an early stop
                           (covers the dedup state: a stopped + resumed
                           pair emits no duplicates)
        --resume PATH      continue from a checkpoint; pins the original
                           algorithm/order
        --trace PATH       JSONL event trace (one bracket per assignment
                           unit)
        --metrics          per-worker metrics folded across assignment
                           units, printed to stderr
        --progress SECS    live progress line on stderr
      Interactive runs can be cancelled by typing `q` + Enter; the stop
      lands between assignment units and is checkpointable.

  mbe-cli generate <model> --output FILE [--seed S] [--scale X]
      Write a synthetic bipartite graph as an edge list. Models:
        preset ABBREV      calibrated dataset analogue (see `presets`)
        chung-lu NU NV E   power-law bipartite graph
        gnm NU NV E        uniform random bipartite graph
        oct-planted L R E K  planted near-bipartite *general* graph:
                           an L x R bipartite core with E edges plus K
                           odd-cycle vertices (written as a general edge
                           list for `oct-enumerate`)

  mbe-cli serve <addr> [options]
      Run the multi-client query service on <addr> (e.g. 127.0.0.1:7771).
        --workers N            enumeration worker threads (default 2)
        --queue N              admission queue slots (default 8); overflow
                               is rejected with a typed busy response
        --cache-mb MB          result-cache byte budget (default 32)
        --default-timeout SECS deadline for queries without their own
        --trace-dir DIR        write a JSONL trace per query to DIR; a
                               coordinator also writes one distributed
                               span log per query (join them with
                               `xtask trace-check --distributed DIR`)
        --metrics-addr ADDR    serve Prometheus text exposition over
                               HTTP on ADDR (scrape GET /metrics)
        --load NAME=FILE       register a graph at startup (repeatable)
        --coordinator ADDRS    run as a coordinator: fan shardable
                               queries out to the comma-separated worker
                               addresses, with retry, quarantine, and
                               checkpoint re-steal (repeatable)
        --no-fallback          with --coordinator: answer `no-workers`
                               instead of enumerating locally when every
                               worker is lost
      Interactive servers shut down gracefully on `q` + Enter: running
      queries are cancelled and answer with their checkpoints.

  mbe-cli client <addr> <action>
      Talk to a running server. Actions:
        load NAME FILE         register the server-side edge list FILE
        load-general NAME FILE register a server-side *general* edge
                               list; queries on it route through the
                               OCT driver
        list                   show registered graphs
        stats [--watch SECS]   show server counters (cache hits, queue);
                               --watch refreshes every SECS seconds
                               until q + Enter (or Ctrl-C)
        metrics                show the full telemetry snapshot
                               (per-opcode counters and latency, shard
                               retries/re-steals, worker health)
        shutdown               ask the server to drain and exit
        query GRAPH [flags]    run a query; flags mirror `enumerate`
                               (--algorithm --order --threads --min-left
                               --min-right --top-k --count-only
                               --max-bicliques --timeout --max-print)

  mbe-cli presets
      List the calibrated benchmark-dataset analogues.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn p(line: &str) -> Command {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn parses_stats_and_presets() {
        assert_eq!(p("stats g.txt"), Command::Stats { file: "g.txt".into() });
        assert_eq!(p("presets"), Command::Presets);
        assert!(matches!(p("help"), Command::Help { error: None }));
        assert!(matches!(p(""), Command::Help { error: None }));
    }

    #[test]
    fn parses_butterflies_and_core() {
        assert_eq!(p("butterflies g.txt"), Command::Butterflies { file: "g.txt".into() });
        assert_eq!(
            p("core g.txt 3 4"),
            Command::Core { file: "g.txt".into(), alpha: 3, beta: 4, output: None }
        );
        assert_eq!(
            p("core g.txt 3 4 -o red.txt"),
            Command::Core {
                file: "g.txt".into(),
                alpha: 3,
                beta: 4,
                output: Some("red.txt".into())
            }
        );
        assert!(matches!(p("core g.txt"), Command::Help { error: Some(_) }));
        assert!(matches!(p("core g.txt x 4"), Command::Help { error: Some(_) }));
        assert!(matches!(p("butterflies"), Command::Help { error: Some(_) }));
    }

    #[test]
    fn parses_enumerate_defaults_and_flags() {
        match p("enumerate g.txt") {
            Command::Enumerate { file, algorithm, threads, count_only, .. } => {
                assert_eq!(file, "g.txt");
                assert_eq!(algorithm, Algorithm::Mbet);
                assert_eq!(threads, 1);
                assert!(!count_only);
            }
            other => panic!("{other:?}"),
        }
        match p("enumerate g.txt --algorithm imbea --order random:9 --threads 4 \
                 --min-left 3 --min-right 2 --top-k 5 --count-only")
        {
            Command::Enumerate {
                algorithm,
                order,
                threads,
                min_left,
                min_right,
                top_k,
                count_only,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Imbea);
                assert_eq!(order, VertexOrder::Random(9));
                assert_eq!(threads, 4);
                assert_eq!(min_left, 3);
                assert_eq!(min_right, 2);
                assert_eq!(top_k, Some(5));
                assert!(count_only);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_control_flags() {
        match p("enumerate g.txt --timeout 2.5 --max-bicliques 100") {
            Command::Enumerate { timeout, max_bicliques, .. } => {
                assert_eq!(timeout, Some(2.5));
                assert_eq!(max_bicliques, Some(100));
            }
            other => panic!("{other:?}"),
        }
        match p("enumerate g.txt") {
            Command::Enumerate { timeout, max_bicliques, .. } => {
                assert_eq!(timeout, None);
                assert_eq!(max_bicliques, None);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "enumerate g.txt --timeout 0",
            "enumerate g.txt --timeout -1",
            "enumerate g.txt --timeout nope",
            "enumerate g.txt --max-bicliques 0",
            "enumerate g.txt --max-bicliques x",
        ] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }

    #[test]
    fn parses_checkpoint_flags() {
        match p("enumerate g.txt --checkpoint c.mbck --resume old.mbck") {
            Command::Enumerate { checkpoint, resume, .. } => {
                assert_eq!(checkpoint, Some("c.mbck".into()));
                assert_eq!(resume, Some("old.mbck".into()));
            }
            other => panic!("{other:?}"),
        }
        match p("enumerate g.txt") {
            Command::Enumerate { checkpoint, resume, .. } => {
                assert_eq!(checkpoint, None);
                assert_eq!(resume, None);
            }
            other => panic!("{other:?}"),
        }
        for bad in ["enumerate g.txt --checkpoint", "enumerate g.txt --resume"] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }

    #[test]
    fn parses_observability_flags() {
        match p("enumerate g.txt --trace t.jsonl --metrics --progress 0.5") {
            Command::Enumerate { trace, metrics, progress, .. } => {
                assert_eq!(trace, Some("t.jsonl".into()));
                assert!(metrics);
                assert_eq!(progress, Some(0.5));
            }
            other => panic!("{other:?}"),
        }
        match p("enumerate g.txt") {
            Command::Enumerate { trace, metrics, progress, .. } => {
                assert_eq!(trace, None);
                assert!(!metrics);
                assert_eq!(progress, None);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "enumerate g.txt --trace",
            "enumerate g.txt --progress",
            "enumerate g.txt --progress 0",
            "enumerate g.txt --progress -2",
            "enumerate g.txt --progress soon",
        ] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }

    #[test]
    fn parses_oct_enumerate() {
        match p("oct-enumerate g.txt") {
            Command::OctEnumerate { file, algorithm, threads, max_oct, count_only, .. } => {
                assert_eq!(file, "g.txt");
                assert_eq!(algorithm, Algorithm::Mbet);
                assert_eq!(threads, 1);
                assert_eq!(max_oct, 12);
                assert!(!count_only);
            }
            other => panic!("{other:?}"),
        }
        match p("oct-enumerate g.txt --algorithm imbea --order random:9 --threads 4 \
                 --max-oct 10 --count-only --timeout 2.5 --max-bicliques 100 \
                 --checkpoint c.mbok --resume old.mbok --trace t.jsonl --metrics \
                 --progress 0.5 --max-print 3")
        {
            Command::OctEnumerate {
                algorithm,
                order,
                threads,
                max_oct,
                count_only,
                timeout,
                max_bicliques,
                checkpoint,
                resume,
                trace,
                metrics,
                progress,
                max_print,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Imbea);
                assert_eq!(order, VertexOrder::Random(9));
                assert_eq!(threads, 4);
                assert_eq!(max_oct, 10);
                assert!(count_only);
                assert_eq!(timeout, Some(2.5));
                assert_eq!(max_bicliques, Some(100));
                assert_eq!(checkpoint, Some("c.mbok".into()));
                assert_eq!(resume, Some("old.mbok".into()));
                assert_eq!(trace, Some("t.jsonl".into()));
                assert!(metrics);
                assert_eq!(progress, Some(0.5));
                assert_eq!(max_print, 3);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "oct-enumerate",
            "oct-enumerate g --max-oct 15",
            "oct-enumerate g --max-oct nope",
            "oct-enumerate g --min-left 2",
            "oct-enumerate g --top-k 3",
            "oct-enumerate g --timeout 0",
            "oct-enumerate g --bogus",
        ] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }

    #[test]
    fn parses_generate_oct_planted() {
        match p("generate oct-planted 60 60 360 4 --seed 3 -o g.txt") {
            Command::Generate { model, seed, output, .. } => {
                assert_eq!(model, GenModel::OctPlanted { left: 60, right: 60, edges: 360, oct: 4 });
                assert_eq!(seed, 3);
                assert_eq!(output, "g.txt");
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "generate oct-planted 60 60 360 -o g.txt",
            "generate oct-planted 0 60 360 4 -o g.txt",
            "generate oct-planted 60 0 360 4 -o g.txt",
            "generate oct-planted a b c d -o g.txt",
        ] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }

    #[test]
    fn parses_client_load_general() {
        assert_eq!(
            p("client :1 load-general web graph.txt"),
            Command::Client {
                addr: ":1".into(),
                action: ClientAction::LoadGeneral { name: "web".into(), file: "graph.txt".into() }
            }
        );
        for bad in ["client :1 load-general onlyname", "client :1 load-general a b extra"] {
            assert!(matches!(p(bad), Command::Help { error: Some(_) }), "`{bad}`");
        }
    }

    #[test]
    fn parses_generate() {
        match p("generate preset BX --seed 7 --scale 0.5 -o out.txt") {
            Command::Generate { model, seed, scale, output } => {
                assert_eq!(model, GenModel::Preset("BX".into()));
                assert_eq!(seed, 7);
                assert!((scale - 0.5).abs() < 1e-9);
                assert_eq!(output, "out.txt");
            }
            other => panic!("{other:?}"),
        }
        match p("generate chung-lu 100 50 400 --output x") {
            Command::Generate { model, .. } => {
                assert_eq!(model, GenModel::ChungLu { nu: 100, nv: 50, edges: 400 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_serve() {
        match p("serve 127.0.0.1:7771") {
            Command::Serve {
                addr,
                workers,
                queue,
                cache_mb,
                default_timeout,
                trace_dir,
                metrics_addr,
                preload,
                coordinator,
                no_fallback,
            } => {
                assert_eq!(addr, "127.0.0.1:7771");
                assert_eq!(workers, 2);
                assert_eq!(queue, 8);
                assert_eq!(cache_mb, 32);
                assert_eq!(default_timeout, None);
                assert_eq!(trace_dir, None);
                assert_eq!(metrics_addr, None);
                assert!(preload.is_empty());
                assert!(coordinator.is_empty());
                assert!(!no_fallback);
            }
            other => panic!("{other:?}"),
        }
        match p("serve 0.0.0.0:9 --workers 4 --queue 2 --cache-mb 64 \
                 --default-timeout 1.5 --trace-dir /tmp/tr --metrics-addr 127.0.0.1:9095 \
                 --load a=x.txt --load b=y.txt")
        {
            Command::Serve {
                workers,
                queue,
                cache_mb,
                default_timeout,
                trace_dir,
                metrics_addr,
                preload,
                ..
            } => {
                assert_eq!(workers, 4);
                assert_eq!(queue, 2);
                assert_eq!(cache_mb, 64);
                assert_eq!(default_timeout, Some(1.5));
                assert_eq!(trace_dir, Some("/tmp/tr".into()));
                assert_eq!(metrics_addr, Some("127.0.0.1:9095".into()));
                assert_eq!(preload, [("a".into(), "x.txt".into()), ("b".into(), "y.txt".into())]);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "serve",
            "serve :0 --workers 0",
            "serve :0 --queue nope",
            "serve :0 --load broken",
            "serve :0 --load =x",
            "serve :0 --metrics-addr",
            "serve :0 --wat",
        ] {
            assert!(matches!(p(bad), Command::Help { error: Some(_) }), "`{bad}`");
        }
    }

    #[test]
    fn parses_coordinator_flags() {
        // Comma-separated and repeated forms compose.
        match p("serve :0 --coordinator 10.0.0.1:7771,10.0.0.2:7771 \
                 --coordinator 10.0.0.3:7771 --no-fallback")
        {
            Command::Serve { coordinator, no_fallback, .. } => {
                assert_eq!(coordinator, ["10.0.0.1:7771", "10.0.0.2:7771", "10.0.0.3:7771"]);
                assert!(no_fallback);
            }
            other => panic!("{other:?}"),
        }
        for bad in ["serve :0 --coordinator", "serve :0 --coordinator ,", "serve :0 --no-fallback"]
        {
            assert!(matches!(p(bad), Command::Help { error: Some(_) }), "`{bad}`");
        }
    }

    #[test]
    fn parses_client() {
        assert_eq!(
            p("client :1 load web graph.txt"),
            Command::Client {
                addr: ":1".into(),
                action: ClientAction::Load { name: "web".into(), file: "graph.txt".into() }
            }
        );
        assert_eq!(
            p("client :1 list"),
            Command::Client { addr: ":1".into(), action: ClientAction::List }
        );
        assert_eq!(
            p("client :1 stats"),
            Command::Client { addr: ":1".into(), action: ClientAction::Stats { watch: None } }
        );
        assert_eq!(
            p("client :1 stats --watch 0.5"),
            Command::Client { addr: ":1".into(), action: ClientAction::Stats { watch: Some(0.5) } }
        );
        assert_eq!(
            p("client :1 metrics"),
            Command::Client { addr: ":1".into(), action: ClientAction::Metrics }
        );
        assert_eq!(
            p("client :1 shutdown"),
            Command::Client { addr: ":1".into(), action: ClientAction::Shutdown }
        );
        match p("client :1 query web --algorithm imbea --order random:3 --min-left 2 \
                 --count-only --max-bicliques 50 --timeout 2.5 --max-print 5")
        {
            Command::Client {
                action:
                    ClientAction::Query {
                        graph,
                        algorithm,
                        order,
                        min_left,
                        count_only,
                        max_bicliques,
                        timeout,
                        max_print,
                        ..
                    },
                ..
            } => {
                assert_eq!(graph, "web");
                assert_eq!(algorithm, Algorithm::Imbea);
                assert_eq!(order, VertexOrder::Random(3));
                assert_eq!(min_left, 2);
                assert!(count_only);
                assert_eq!(max_bicliques, Some(50));
                assert_eq!(timeout, Some(2.5));
                assert_eq!(max_print, 5);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "client",
            "client :1",
            "client :1 load onlyname",
            "client :1 load a b extra",
            "client :1 query",
            "client :1 query g --timeout 0",
            "client :1 stats --watch 0",
            "client :1 stats --watch nope",
            "client :1 stats --wat",
            "client :1 poke",
        ] {
            assert!(matches!(p(bad), Command::Help { error: Some(_) }), "`{bad}`");
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        for bad in [
            "stats",
            "enumerate",
            "enumerate f --algorithm nope",
            "enumerate f --threads abc",
            "enumerate f --bogus",
            "generate preset BX", // missing --output
            "generate nope -o f",
            "generate chung-lu 1 2 -o f",
            "wat",
        ] {
            assert!(
                matches!(p(bad), Command::Help { error: Some(_) }),
                "`{bad}` should be an error"
            );
        }
    }
}
