//! Prefix trees over sorted vertex-id sequences.
//!
//! This crate implements the data structure that gives the prefix-tree MBE
//! algorithm (MBET, ICDE 2024) its name. Two specializations are provided:
//!
//! * [`CandidateTrie`] — a *per-enumeration-node* trie over the local
//!   neighborhoods (`N(w) ∩ L`, encoded as ranks within `L`) of the
//!   candidate and excluded vertices. One pass of insertions groups
//!   *equivalent* candidates (identical local neighborhoods), and a single
//!   superset walk answers the maximality question "is any excluded vertex
//!   adjacent to all of `L'`?" — the two checks that dominate enumeration
//!   node processing in baseline algorithms.
//!
//! * [`RTrie`] — a *per-task or global* trie storing a family of sorted
//!   `u32` sets (the `R`-sets of emitted maximal bicliques) with prefix
//!   sharing. It is the compressed output store behind MBET's published
//!   `O(R(|V(B)|) + |G|)` space bound, and its node-budgeted mode backs
//!   the space-bounded MBETM variant.
//!
//! Both tries use first-child/next-sibling arena nodes with `u32` links
//! (see the type-size guidance in the workspace's performance notes), and
//! both are designed for workhorse reuse: `clear` retains allocations.
//!
//! All sequences must be strictly increasing; this is asserted in debug
//! builds and fuzzed by property tests.

#![forbid(unsafe_code)]

pub mod ctrie;
pub mod rtrie;

pub use ctrie::CandidateTrie;
pub use rtrie::RTrie;

pub(crate) const NIL: u32 = u32::MAX;
