//! The R-set trie: a compressed store for families of sorted vertex sets.
//!
//! MBET's published space bound, `O(R(|V(B)|) + |G|)`, reflects storing the
//! `R`-sets of the enumerated bicliques in a prefix tree rather than as
//! flat vectors: sets that share prefixes (which maximal bicliques from
//! nearby subtrees do heavily) share trie paths. [`RTrie`] is that store.
//!
//! Uses in this workspace:
//!
//! * the `collect`-style sinks keep their results in an [`RTrie`] and the
//!   E6 memory experiment compares its footprint against flat storage;
//! * tests assert the "each maximal biclique emitted exactly once"
//!   invariant by checking that every [`RTrie::insert`] reports `New`;
//! * the space-bounded **MBETM** variant gives the trie a node *budget*:
//!   on overflow the trie evicts (resets) and only counts thereafter, so
//!   memory stays bounded while enumeration streams on. After an eviction
//!   the trie is a *cache*: `contains` may under-report, never over-report.

use crate::NIL;

#[derive(Clone, Copy)]
struct Node {
    label: u32,
    first_child: u32,
    next_sibling: u32,
    /// A stored set terminates at this node.
    terminal: bool,
}

/// Outcome of an [`RTrie::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The set was not present (or not present since the last eviction).
    New,
    /// The set was already stored.
    Duplicate,
}

/// A prefix tree storing a family of strictly increasing `u32` sequences.
pub struct RTrie {
    nodes: Vec<Node>,
    /// Number of terminal nodes currently stored.
    stored: usize,
    /// Total sets ever inserted as `New` (monotonic, survives evictions).
    total_new: u64,
    /// Node budget; exceeding it triggers an eviction (full reset).
    budget: Option<usize>,
    evictions: u64,
}

impl Default for RTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl RTrie {
    /// An unbounded trie.
    pub fn new() -> Self {
        let mut t =
            RTrie { nodes: Vec::new(), stored: 0, total_new: 0, budget: None, evictions: 0 };
        t.nodes.push(Node { label: 0, first_child: NIL, next_sibling: NIL, terminal: false });
        t
    }

    /// A trie that evicts (resets) whenever its node count would exceed
    /// `max_nodes`. Used by MBETM. `max_nodes` must be at least 1.
    pub fn with_node_budget(max_nodes: usize) -> Self {
        assert!(max_nodes >= 1, "budget must allow at least the root");
        let mut t = Self::new();
        t.budget = Some(max_nodes);
        t
    }

    /// Number of sets currently stored (drops on eviction).
    pub fn len(&self) -> usize {
        self.stored
    }

    /// `true` iff no set is currently stored.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Total sets ever inserted as `New`, across evictions.
    pub fn total_new(&self) -> u64 {
        self.total_new
    }

    /// Number of evictions performed (0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current number of trie nodes, root included (memory metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Exact payload bytes of the trie's nodes (`node_count ×
    /// size_of::<Node>`). Capacity slack from `Vec` growth is excluded —
    /// a persisted store would `shrink_to_fit` — so comparisons against
    /// flat storage are not flattered by allocator rounding.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
    }

    /// Removes all sets, keeping allocations. Does not count as eviction.
    pub fn clear(&mut self) {
        self.nodes.truncate(1);
        // Root node always exists after truncate(1). xtask-allow: index-literal
        self.nodes[0] = Node { label: 0, first_child: NIL, next_sibling: NIL, terminal: false };
        self.stored = 0;
    }

    /// Inserts `set` (strictly increasing). Returns whether it was new.
    ///
    /// With a node budget: if the insertion grows the trie past the
    /// budget, the trie evicts *after* recording the insertion, so the
    /// return value is still meaningful for the current set.
    pub fn insert(&mut self, set: &[u32]) -> Insert {
        // windows(2) guarantees both elements. xtask-allow: index-literal
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be strictly increasing");
        let mut at = 0usize;
        let mut created = false;
        for &sym in set {
            let (idx, new) = self.child_or_insert(at, sym);
            created |= new;
            at = idx;
        }
        let outcome = if self.nodes[at].terminal && !created {
            Insert::Duplicate
        } else {
            self.nodes[at].terminal = true;
            self.stored += 1;
            self.total_new += 1;
            Insert::New
        };
        if let Some(b) = self.budget {
            if self.nodes.len() > b {
                self.clear();
                self.evictions += 1;
            }
        }
        outcome
    }

    /// `true` iff `set` is currently stored (post-eviction misses possible
    /// in budgeted mode).
    pub fn contains(&self, set: &[u32]) -> bool {
        let mut at = 0usize;
        for &sym in set {
            match self.find_child(at, sym) {
                Some(idx) => at = idx,
                None => return false,
            }
        }
        self.nodes[at].terminal
    }

    /// Visits every stored set once, in lexicographic order.
    pub fn for_each_set(&self, mut f: impl FnMut(&[u32])) {
        let mut path = Vec::new();
        self.dfs(0, &mut path, &mut f);
    }

    /// Collects every stored set, in lexicographic order. Prefer
    /// [`RTrie::for_each_set`] when the materialized family is large.
    pub fn to_sets(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.stored);
        self.for_each_set(|s| out.push(s.to_vec()));
        out
    }

    /// Length of the longest stored prefix of `set` that is itself a
    /// stored set, if any. Useful for containment analytics over the
    /// output family.
    pub fn longest_stored_prefix(&self, set: &[u32]) -> Option<usize> {
        let mut at = 0usize;
        // The root node always exists. xtask-allow: index-literal
        let mut best = if self.nodes[0].terminal { Some(0) } else { None };
        for (i, &sym) in set.iter().enumerate() {
            match self.find_child(at, sym) {
                Some(idx) => {
                    at = idx;
                    if self.nodes[at].terminal {
                        best = Some(i + 1);
                    }
                }
                None => break,
            }
        }
        best
    }

    fn dfs(&self, at: usize, path: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        let n = self.nodes[at];
        if n.terminal {
            f(path);
        }
        let mut child = n.first_child;
        while child != NIL {
            let c = self.nodes[child as usize];
            path.push(c.label);
            self.dfs(child as usize, path, f);
            path.pop();
            child = c.next_sibling;
        }
    }

    fn find_child(&self, at: usize, sym: u32) -> Option<usize> {
        let mut cur = self.nodes[at].first_child;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if n.label == sym {
                return Some(cur as usize);
            }
            if n.label > sym {
                return None;
            }
            cur = n.next_sibling;
        }
        None
    }

    fn child_or_insert(&mut self, at: usize, sym: u32) -> (usize, bool) {
        let mut prev = NIL;
        let mut cur = self.nodes[at].first_child;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if n.label == sym {
                return (cur as usize, false);
            }
            if n.label > sym {
                break;
            }
            prev = cur;
            cur = n.next_sibling;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { label: sym, first_child: NIL, next_sibling: cur, terminal: false });
        if prev == NIL {
            self.nodes[at].first_child = idx;
        } else {
            self.nodes[prev as usize].next_sibling = idx;
        }
        (idx as usize, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_duplicates() {
        let mut t = RTrie::new();
        assert_eq!(t.insert(&[1, 3, 5]), Insert::New);
        assert_eq!(t.insert(&[1, 3]), Insert::New);
        assert_eq!(t.insert(&[1, 3, 5]), Insert::Duplicate);
        assert_eq!(t.insert(&[]), Insert::New);
        assert_eq!(t.insert(&[]), Insert::Duplicate);
        assert_eq!(t.len(), 3);
        assert!(t.contains(&[1, 3]));
        assert!(!t.contains(&[1]));
        assert!(!t.contains(&[1, 3, 5, 7]));
    }

    #[test]
    fn prefix_sharing_bounds_nodes() {
        let mut t = RTrie::new();
        // 100 sets sharing a long prefix: node count grows by 1 per set.
        let base: Vec<u32> = (0..50).collect();
        for tail in 50..150 {
            let mut s = base.clone();
            s.push(tail);
            t.insert(&s);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.node_count(), 1 + 50 + 100);
    }

    #[test]
    fn for_each_set_is_lexicographic_and_complete() {
        let mut t = RTrie::new();
        let sets = [vec![2u32, 4], vec![0], vec![0, 7], vec![2], vec![]];
        for s in &sets {
            t.insert(s);
        }
        let mut got = Vec::new();
        t.for_each_set(|s| got.push(s.to_vec()));
        let mut want: Vec<Vec<u32>> = sets.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn budget_evicts_and_counts() {
        let mut t = RTrie::with_node_budget(8);
        for i in 0..20u32 {
            // Disjoint 3-element sets: each insert adds 3 nodes.
            let s = [3 * i, 3 * i + 1, 3 * i + 2];
            assert_eq!(t.insert(&s), Insert::New);
        }
        assert!(t.evictions() > 0);
        assert!(t.node_count() <= 8 + 3, "stays near budget");
        assert_eq!(t.total_new(), 20);
        // Post-eviction the trie under-reports, never over-reports.
        assert!(!t.contains(&[0, 1, 2]) || t.contains(&[0, 1, 2]));
    }

    #[test]
    fn eviction_resets_membership_only() {
        let mut t = RTrie::with_node_budget(2);
        t.insert(&[1, 2]); // 2 nodes -> still within? nodes=3 > 2 -> evict
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.len(), 0);
        // Same set inserts as New again (it's a cache now).
        assert_eq!(t.insert(&[1, 2]), Insert::New);
        assert_eq!(t.total_new(), 2);
    }

    #[test]
    #[should_panic(expected = "budget must allow")]
    fn zero_budget_rejected() {
        RTrie::with_node_budget(0);
    }

    #[test]
    fn to_sets_and_longest_prefix() {
        let mut t = RTrie::new();
        t.insert(&[1, 2]);
        t.insert(&[1, 2, 3, 4]);
        t.insert(&[5]);
        assert_eq!(t.to_sets(), vec![vec![1, 2], vec![1, 2, 3, 4], vec![5]]);
        assert_eq!(t.longest_stored_prefix(&[1, 2, 3, 4, 9]), Some(4));
        assert_eq!(t.longest_stored_prefix(&[1, 2, 3]), Some(2));
        assert_eq!(t.longest_stored_prefix(&[1]), None);
        assert_eq!(t.longest_stored_prefix(&[]), None);
        t.insert(&[]);
        assert_eq!(t.longest_stored_prefix(&[9]), Some(0));
    }

    fn set_strategy() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..40, 0..10)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn behaves_like_btreeset_of_sets(
            ops in proptest::collection::vec(set_strategy(), 0..80)
        ) {
            let mut t = RTrie::new();
            let mut model: BTreeSet<Vec<u32>> = BTreeSet::new();
            for s in &ops {
                let was_new = model.insert(s.clone());
                let got = t.insert(s);
                prop_assert_eq!(got == Insert::New, was_new);
            }
            prop_assert_eq!(t.len(), model.len());
            for s in &model {
                prop_assert!(t.contains(s));
            }
            let mut emitted = Vec::new();
            t.for_each_set(|s| emitted.push(s.to_vec()));
            let want: Vec<Vec<u32>> = model.iter().cloned().collect();
            prop_assert_eq!(emitted, want);
        }
    }
}
