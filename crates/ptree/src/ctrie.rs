//! The per-node candidate trie.
//!
//! At an enumeration node `(L, R, C, Q)` every candidate `w ∈ C` and
//! excluded vertex `q ∈ Q` is characterized by its *local neighborhood*
//! `NL(w) = N(w) ∩ L`, re-encoded as the sorted sequence of ranks of its
//! members within `L`. Inserting those rank sequences into this trie makes
//! the three hot per-node questions structural:
//!
//! 1. **Equivalence batching** — candidates with identical `NL` end at the
//!    same trie node ([`CandidateTrie::for_each_group`]); they expand to
//!    identical subtrees and are processed once.
//! 2. **Absorption** — when expanding candidate `v` (so `L' = NL(v)`), all
//!    candidates `w` with `NL(w) ⊇ NL(v)` belong in `R'`
//!    ([`CandidateTrie::for_each_superset`]); the walk shares prefix
//!    comparisons across all of them.
//! 3. **Maximality** — `(L', R')` is non-maximal iff some excluded `q` has
//!    `NL(q) ⊇ L'` ([`CandidateTrie::any_superset`]), one walk instead of
//!    `|Q|` subset scans.
//!
//! Because keys are strictly increasing sequences, labels strictly
//! increase along any root-to-leaf path, and sibling lists are kept sorted
//! — both facts are what make the superset walks prunable.

use crate::NIL;

#[derive(Clone, Copy)]
struct Node {
    /// Symbol (rank within `L`) on the incoming edge. Unused for the root.
    label: u32,
    first_child: u32,
    next_sibling: u32,
    /// Head of the linked list of vertices whose key terminates here.
    verts_head: u32,
}

/// A trie over strictly increasing rank sequences with vertex payloads.
///
/// Reusable across enumeration nodes: [`CandidateTrie::clear`] retains all
/// allocations, so steady-state insertion allocates nothing.
pub struct CandidateTrie {
    nodes: Vec<Node>,
    /// `(vertex, next_index)` payload pool shared by all nodes.
    payload: Vec<(u32, u32)>,
    keys: usize,
}

impl Default for CandidateTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl CandidateTrie {
    /// An empty trie.
    pub fn new() -> Self {
        let mut t = CandidateTrie { nodes: Vec::new(), payload: Vec::new(), keys: 0 };
        t.nodes.push(Node { label: 0, first_child: NIL, next_sibling: NIL, verts_head: NIL });
        t
    }

    /// Removes all keys, keeping allocations.
    pub fn clear(&mut self) {
        self.nodes.truncate(1);
        // Root node always exists after truncate(1). xtask-allow: index-literal
        self.nodes[0] = Node { label: 0, first_child: NIL, next_sibling: NIL, verts_head: NIL };
        self.payload.clear();
        self.keys = 0;
    }

    /// Number of inserted keys (with multiplicity).
    pub fn len(&self) -> usize {
        self.keys
    }

    /// `true` iff nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Number of trie nodes, including the root (memory metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts `key` (strictly increasing ranks) with payload `vertex`.
    ///
    /// Returns `true` iff the key was already present (i.e. `vertex` joins
    /// an existing equivalence group).
    pub fn insert(&mut self, key: &[u32], vertex: u32) -> bool {
        // windows(2) guarantees both elements. xtask-allow: index-literal
        debug_assert!(key.windows(2).all(|w| w[0] < w[1]), "key must be strictly increasing");
        let mut at = 0usize;
        for &sym in key {
            at = self.child_or_insert(at, sym);
        }
        let head = self.nodes[at].verts_head;
        self.payload.push((vertex, head));
        self.nodes[at].verts_head = (self.payload.len() - 1) as u32;
        self.keys += 1;
        head != NIL
    }

    /// Finds the child of `at` labeled `sym`, creating it (in sorted
    /// sibling position) if absent. Returns its index.
    fn child_or_insert(&mut self, at: usize, sym: u32) -> usize {
        let mut prev = NIL;
        let mut cur = self.nodes[at].first_child;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if n.label == sym {
                return cur as usize;
            }
            if n.label > sym {
                break;
            }
            prev = cur;
            cur = n.next_sibling;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { label: sym, first_child: NIL, next_sibling: cur, verts_head: NIL });
        if prev == NIL {
            self.nodes[at].first_child = idx;
        } else {
            self.nodes[prev as usize].next_sibling = idx;
        }
        idx as usize
    }

    /// Visits every distinct key once, with the slice of payload vertices
    /// that share it. `f(key_ranks, vertices)`; vertices are in reverse
    /// insertion order.
    pub fn for_each_group(&self, mut f: impl FnMut(&[u32], &[u32])) {
        let mut path: Vec<u32> = Vec::new();
        let mut verts: Vec<u32> = Vec::new();
        // Child-reversal scratch, reused across all node visits.
        let mut tmp: Vec<u32> = Vec::new();
        // Explicit DFS: (node, entering) — entering=false pops the path.
        let mut stack: Vec<(u32, bool)> = vec![(0, true)];
        while let Some((idx, entering)) = stack.pop() {
            if !entering {
                path.pop();
                continue;
            }
            let n = self.nodes[idx as usize];
            if idx != 0 {
                path.push(n.label);
                stack.push((idx, false));
            }
            if n.verts_head != NIL {
                verts.clear();
                let mut p = n.verts_head;
                while p != NIL {
                    let (v, next) = self.payload[p as usize];
                    verts.push(v);
                    p = next;
                }
                f(&path, &verts);
            }
            // Push children (any order; reverse keeps visitation sorted).
            let mut kids = n.first_child;
            tmp.clear();
            while kids != NIL {
                tmp.push(kids);
                kids = self.nodes[kids as usize].next_sibling;
            }
            for &k in tmp.iter().rev() {
                stack.push((k, true));
            }
        }
    }

    /// `true` iff some inserted key is a superset of `query`
    /// (equality counts). `query` must be strictly increasing.
    pub fn any_superset(&self, query: &[u32]) -> bool {
        let mut found = false;
        self.walk_supersets(0, query, 0, &mut |_| {
            found = true;
            false // stop
        });
        found
    }

    /// Calls `f(vertex)` for every payload vertex whose key is a superset
    /// of `query` (equality counts). Return `false` from `f` to stop early.
    pub fn for_each_superset(&self, query: &[u32], mut f: impl FnMut(u32) -> bool) {
        self.walk_supersets(0, query, 0, &mut f);
    }

    /// DFS for superset matching. Returns `false` if the visitor aborted.
    fn walk_supersets(
        &self,
        at: usize,
        query: &[u32],
        qi: usize,
        f: &mut impl FnMut(u32) -> bool,
    ) -> bool {
        let n = self.nodes[at];
        if qi == query.len() {
            // Everything below (and here) is a superset.
            if !self.emit_subtree(at, f) {
                return false;
            }
            return true;
        }
        let _ = n;
        let need = query[qi];
        let mut child = self.nodes[at].first_child;
        while child != NIL {
            let c = self.nodes[child as usize];
            if c.label < need {
                // Extra element; still hunting for `need` below.
                if !self.walk_supersets(child as usize, query, qi, f) {
                    return false;
                }
            } else if c.label == need {
                if !self.walk_supersets(child as usize, query, qi + 1, f) {
                    return false;
                }
                // Labels strictly increase along paths, so no other sibling
                // subtree can contain `need` after this one.
                break;
            } else {
                // c.label > need: `need` cannot occur in this or any later
                // sibling subtree (labels only grow deeper).
                break;
            }
            child = c.next_sibling;
        }
        true
    }

    /// Emits every payload vertex in the subtree rooted at `at`.
    fn emit_subtree(&self, at: usize, f: &mut impl FnMut(u32) -> bool) -> bool {
        let n = self.nodes[at];
        let mut p = n.verts_head;
        while p != NIL {
            let (v, next) = self.payload[p as usize];
            if !f(v) {
                return false;
            }
            p = next;
        }
        let mut child = n.first_child;
        while child != NIL {
            if !self.emit_subtree(child as usize, f) {
                return false;
            }
            child = self.nodes[child as usize].next_sibling;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn collect_groups(t: &CandidateTrie) -> BTreeMap<Vec<u32>, BTreeSet<u32>> {
        let mut m = BTreeMap::new();
        t.for_each_group(|k, vs| {
            m.insert(k.to_vec(), vs.iter().copied().collect());
        });
        m
    }

    fn supersets(t: &CandidateTrie, q: &[u32]) -> BTreeSet<u32> {
        let mut s = BTreeSet::new();
        t.for_each_superset(q, |v| {
            s.insert(v);
            true
        });
        s
    }

    #[test]
    fn groups_by_identical_keys() {
        let mut t = CandidateTrie::new();
        t.insert(&[0, 2, 5], 10);
        t.insert(&[0, 2], 11);
        t.insert(&[0, 2, 5], 12);
        t.insert(&[], 13);
        assert_eq!(t.len(), 4);
        let g = collect_groups(&t);
        assert_eq!(g.len(), 3);
        assert_eq!(g[&vec![0, 2, 5]], BTreeSet::from([10, 12]));
        assert_eq!(g[&vec![0, 2]], BTreeSet::from([11]));
        assert_eq!(g[&vec![]], BTreeSet::from([13]));
    }

    #[test]
    fn superset_queries() {
        let mut t = CandidateTrie::new();
        t.insert(&[0, 2, 5], 1);
        t.insert(&[1, 2], 2);
        t.insert(&[2], 3);
        t.insert(&[0, 1, 2, 3], 4);

        assert_eq!(supersets(&t, &[2]), BTreeSet::from([1, 2, 3, 4]));
        assert_eq!(supersets(&t, &[0, 2]), BTreeSet::from([1, 4]));
        assert_eq!(supersets(&t, &[5]), BTreeSet::from([1]));
        assert_eq!(supersets(&t, &[0, 5]), BTreeSet::from([1]));
        assert_eq!(supersets(&t, &[4]), BTreeSet::new());
        assert_eq!(supersets(&t, &[]), BTreeSet::from([1, 2, 3, 4]));
        assert!(t.any_superset(&[1, 2, 3]));
        assert!(!t.any_superset(&[1, 2, 5]));
    }

    #[test]
    fn early_stop_in_superset_walk() {
        let mut t = CandidateTrie::new();
        for v in 0..10 {
            t.insert(&[0, 1], v);
        }
        let mut seen = 0;
        t.for_each_superset(&[0], |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn clear_retains_capacity_and_resets() {
        let mut t = CandidateTrie::new();
        t.insert(&[0, 1, 2], 7);
        assert!(t.node_count() > 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        assert!(!t.any_superset(&[]));
        t.insert(&[3], 9);
        assert_eq!(supersets(&t, &[3]), BTreeSet::from([9]));
    }

    #[test]
    fn empty_key_is_superset_of_nothing_but_empty() {
        let mut t = CandidateTrie::new();
        t.insert(&[], 5);
        assert!(t.any_superset(&[]));
        assert!(!t.any_superset(&[0]));
    }

    fn key_strategy() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..24, 0..8)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            keys in proptest::collection::vec(key_strategy(), 0..40),
            queries in proptest::collection::vec(key_strategy(), 0..10),
        ) {
            let mut t = CandidateTrie::new();
            for (i, k) in keys.iter().enumerate() {
                t.insert(k, i as u32);
            }

            // Groups match a map-based model.
            let mut model: BTreeMap<Vec<u32>, BTreeSet<u32>> = BTreeMap::new();
            for (i, k) in keys.iter().enumerate() {
                model.entry(k.clone()).or_default().insert(i as u32);
            }
            prop_assert_eq!(collect_groups(&t), model);

            // Superset queries match a scan-based model.
            for q in &queries {
                let want: BTreeSet<u32> = keys
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| q.iter().all(|x| k.contains(x)))
                    .map(|(i, _)| i as u32)
                    .collect();
                prop_assert_eq!(supersets(&t, q), want.clone());
                prop_assert_eq!(t.any_superset(q), !want.is_empty());
            }
        }
    }
}
