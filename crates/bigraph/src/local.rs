//! Per-root localized subgraphs with dense relabeling.
//!
//! The enumeration subtree rooted at a right vertex `v` only ever
//! touches `L ⊆ N(v)` and candidates/excluded drawn from `N²(v)`
//! (see [`crate::two_hop`]). [`LocalGraph`] extracts that induced
//! subgraph once per root (or per resumed node), relabels both sides
//! into dense local id spaces, and stores each right vertex's
//! localized adjacency `N(w) ∩ left` twice when profitable: as a
//! strictly increasing local-id row (CSR) and as packed bitmap words
//! over the left universe.
//!
//! The payoff is in the inner loop: a node at depth `d` used to
//! intersect each candidate's *full global* adjacency (length
//! `deg(w)`) against the current `L`; on the local graph the same
//! operation runs on a row already clipped to `N(root)` — and, when
//! the left universe is small, on `u64` words. Which representation a
//! given operation uses is decided per node by [`LocalGraph::row_view`]
//! under the [`Kernel`] policy; both representations are observably
//! identical (property-tested here, differentially tested at the
//! enumeration level in `mbe`).
//!
//! Id-space rules: `left` and `right` hold *global* ids sorted
//! ascending; a local id is the rank of its global id in that vector,
//! so local order is isomorphic to global order and every
//! tie-breaking comparison downstream is preserved. Mapping local →
//! global is an indexed load ([`LocalGraph::left_global`] /
//! [`LocalGraph::right_global`]); global → local is a binary search.

use crate::BipartiteGraph;
use setops::{Kernel, SetView};

/// Bitmap rows are only built when the left universe packs into this
/// many words or fewer (universe ≤ 4096): beyond that, per-row probe
/// cost no longer beats galloping and the quadratic
/// `rows × words_per_row` footprint stops paying for itself.
const MAX_BITS_WORDS_PER_ROW: usize = 64;

/// Cap on the total packed-words footprint per localization
/// (`2^21` words = 16 MiB) so one hub root cannot balloon a worker's
/// resident memory.
const MAX_BITS_TOTAL_WORDS: usize = 1 << 21;

/// Below this left-universe size the adaptive policy skips bitmap rows
/// entirely: [`LocalGraph::row_view`] picks a bitmap only when
/// `probe_len / GALLOP_RATIO > row_len`, and with `|left| <
/// 2 * GALLOP_RATIO` every probe satisfies `probe_len / GALLOP_RATIO
/// ≤ 1`, so only rows of at most one element could ever qualify —
/// intersections too small for the packing cost to pay off. Sparse
/// graphs hit this on nearly every root.
const MIN_BITS_LEFT: usize = 2 * setops::GALLOP_RATIO;

/// An induced, densely relabeled subgraph of one enumeration subtree.
///
/// Holds reusable buffers: [`LocalGraph::localize`] clears and refills
/// them, so one instance per worker amortizes all allocation across
/// roots.
pub struct LocalGraph {
    /// Global left (`U`-side) ids, sorted ascending; the local left id
    /// of `left[i]` is `i`.
    left: Vec<u32>,
    /// Global right (`V`-side) ids, sorted ascending; the local right
    /// id of `right[j]` is `j`.
    right: Vec<u32>,
    /// CSR row boundaries over `adj`: row `j` is
    /// `adj[offsets[j] .. offsets[j + 1]]`.
    offsets: Vec<u32>,
    /// Concatenated rows of local left ids, strictly increasing per row.
    adj: Vec<u32>,
    /// Packed bitmap rows (`words_per_row` words each), empty when the
    /// kernel policy or the size heuristic rejected bitmaps.
    bits: Vec<u64>,
    /// Words per bitmap row: `ceil(|left| / 64)`.
    words_per_row: usize,
    /// The kernel policy this localization was built under.
    kernel: Kernel,
    /// Row-building scratch, kept so localization allocates nothing
    /// steady-state.
    scratch: Vec<u32>,
}

impl LocalGraph {
    /// An empty localizer with no buffers allocated yet.
    pub fn new(kernel: Kernel) -> Self {
        LocalGraph {
            left: Vec::new(),
            right: Vec::new(),
            offsets: Vec::new(),
            adj: Vec::new(),
            bits: Vec::new(),
            words_per_row: 0,
            kernel,
            scratch: Vec::new(),
        }
    }

    /// Rebuilds this localization for the subtree whose left universe
    /// is `left` and whose right vertices are `rights` (both strictly
    /// increasing slices of *global* ids). Buffer capacity is reused
    /// across calls.
    ///
    /// Each right vertex `w` gets the row `N(w) ∩ left`, expressed in
    /// local left ids; bitmap rows are packed according to the
    /// [`Kernel`] policy and the size heuristic.
    pub fn localize(&mut self, g: &BipartiteGraph, left: &[u32], rights: &[u32]) {
        debug_assert!(setops::is_strictly_increasing(left));
        debug_assert!(setops::is_strictly_increasing(rights));
        self.left.clear();
        self.left.extend_from_slice(left);
        self.right.clear();
        self.right.extend_from_slice(rights);

        self.words_per_row = self.left.len().div_ceil(64);
        let build_bits = match self.kernel {
            Kernel::SortedOnly => false,
            Kernel::BitmapOnly => true,
            Kernel::Adaptive => {
                self.left.len() >= MIN_BITS_LEFT
                    && self.words_per_row <= MAX_BITS_WORDS_PER_ROW
                    && rights.len().saturating_mul(self.words_per_row) <= MAX_BITS_TOTAL_WORDS
            }
        };

        self.offsets.clear();
        self.offsets.push(0);
        self.adj.clear();
        self.bits.clear();
        if build_bits {
            self.bits.resize(rights.len() * self.words_per_row, 0);
        }

        for (j, &w) in rights.iter().enumerate() {
            setops::intersect_ranks(g.nbr_v(w), &self.left, &mut self.scratch);
            self.adj.extend_from_slice(&self.scratch);
            self.offsets.push(self.adj.len() as u32);
            if build_bits {
                let base = j * self.words_per_row;
                for &lid in &self.scratch {
                    self.bits[base + (lid >> 6) as usize] |= 1u64 << (lid & 63);
                }
            }
        }
    }

    /// Number of left vertices in the local universe.
    pub fn num_left(&self) -> usize {
        self.left.len()
    }

    /// Number of localized right vertices.
    pub fn num_right(&self) -> usize {
        self.right.len()
    }

    /// The sorted global left ids; index = local left id.
    pub fn left_ids(&self) -> &[u32] {
        &self.left
    }

    /// The sorted global right ids; index = local right id.
    pub fn right_ids(&self) -> &[u32] {
        &self.right
    }

    /// Global id of a local left vertex.
    #[inline]
    pub fn left_global(&self, lid: u32) -> u32 {
        self.left[lid as usize]
    }

    /// Global id of a local right vertex.
    #[inline]
    pub fn right_global(&self, rid: u32) -> u32 {
        self.right[rid as usize]
    }

    /// Local right id of a global right vertex, if it was localized.
    #[inline]
    pub fn right_local(&self, w: u32) -> Option<u32> {
        self.right.binary_search(&w).ok().map(|i| i as u32)
    }

    /// The sorted local-left-id row `N(w) ∩ left` of local right `rid`.
    #[inline]
    pub fn row(&self, rid: u32) -> &[u32] {
        let (s, e) = (self.offsets[rid as usize], self.offsets[rid as usize + 1]);
        &self.adj[s as usize..e as usize]
    }

    /// A [`SetView`] of the row of `rid`, choosing the representation
    /// that is cheapest to probe with a sorted operand of length
    /// `probe_len` under this localization's kernel policy.
    ///
    /// Bitmap probing costs `O(probe_len)`; galloping a much shorter
    /// row into the probe costs `O(|row| · log probe_len)`, so sorted
    /// wins exactly when the probe dwarfs the row — the same ratio
    /// test the slice kernels use.
    #[inline]
    pub fn row_view(&self, rid: u32, probe_len: usize) -> SetView<'_> {
        let row = self.row(rid);
        if self.bits.is_empty() {
            return SetView::Sorted(row);
        }
        if self.kernel == Kernel::Adaptive && probe_len / setops::GALLOP_RATIO > row.len() {
            return SetView::Sorted(row);
        }
        let base = rid as usize * self.words_per_row;
        SetView::Bits(&self.bits[base..base + self.words_per_row])
    }

    /// Whether bitmap rows were built for this localization.
    pub fn has_bits(&self) -> bool {
        !self.bits.is_empty()
    }

    /// Maps a slice of local left ids to their global ids (appended to
    /// `out`, which is cleared first). A strictly increasing input
    /// yields a strictly increasing output because local left order is
    /// global order.
    pub fn left_to_global(&self, locals: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.extend(locals.iter().map(|&lid| self.left[lid as usize]));
    }

    /// Structural self-check for the relabeling invariants; called by
    /// the `mbe` debug-invariants harness after every localization.
    ///
    /// Asserts: both id vectors strictly increasing; every row strictly
    /// increasing with ids inside the left universe; every row equal to
    /// the global intersection `N(w) ∩ left` mapped through the
    /// relabeling; and, when bitmaps were built, each packed row
    /// decoding to exactly its sorted row.
    pub fn check_consistency(&self, g: &BipartiteGraph) {
        assert!(setops::is_strictly_increasing(&self.left), "left ids not sorted");
        assert!(setops::is_strictly_increasing(&self.right), "right ids not sorted");
        assert_eq!(self.offsets.len(), self.right.len() + 1);
        let mut want = Vec::new();
        for (j, &w) in self.right.iter().enumerate() {
            let row = self.row(j as u32);
            assert!(setops::is_strictly_increasing(row), "row {j} not sorted");
            assert!(
                row.iter().all(|&lid| (lid as usize) < self.left.len()),
                "row {j} escapes the left universe"
            );
            setops::intersect_ranks(g.nbr_v(w), &self.left, &mut want);
            assert_eq!(row, &want[..], "row {j} disagrees with N({w}) ∩ left");
            if !self.bits.is_empty() {
                let base = j * self.words_per_row;
                let words = &self.bits[base..base + self.words_per_row];
                let decoded: Vec<u32> = (0..self.left.len() as u32)
                    .filter(|&lid| words[(lid >> 6) as usize] >> (lid & 63) & 1 == 1)
                    .collect();
                assert_eq!(&decoded[..], row, "bitmap row {j} disagrees with sorted row");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn localized(g: &BipartiteGraph, left: &[u32], rights: &[u32], kernel: Kernel) -> LocalGraph {
        let mut lg = LocalGraph::new(kernel);
        lg.localize(g, left, rights);
        lg
    }

    #[test]
    fn g0_root_localization() {
        let g = crate::tests::g0();
        // Root v=0: left = N(v0), rights = N²(v0) ∪ {v0}.
        let left = g.nbr_v(0).to_vec();
        let mut th = crate::two_hop::TwoHop::new(g.num_v() as usize);
        let mut rights = Vec::new();
        th.of_v(&g, 0, &mut rights);
        rights.push(0);
        rights.sort_unstable();
        for kernel in [Kernel::Adaptive, Kernel::SortedOnly, Kernel::BitmapOnly] {
            let lg = localized(&g, &left, &rights, kernel);
            lg.check_consistency(&g);
            assert_eq!(lg.num_left(), left.len());
            assert_eq!(lg.num_right(), rights.len());
            // g0's left universe is far below MIN_BITS_LEFT, so the
            // adaptive policy skips packing; only a forced bitmap
            // kernel builds rows here.
            assert_eq!(lg.has_bits(), kernel == Kernel::BitmapOnly);
            // The root's own row covers the whole left universe.
            let v_local = lg.right_local(0).unwrap();
            let full: Vec<u32> = (0..left.len() as u32).collect();
            assert_eq!(lg.row(v_local), &full[..]);
            // Round-trip local → global.
            let mut back = Vec::new();
            lg.left_to_global(&full, &mut back);
            assert_eq!(back, left);
        }
    }

    #[test]
    fn reuse_shrinks_and_regrows() {
        let g = crate::tests::g0();
        let mut lg = LocalGraph::new(Kernel::Adaptive);
        lg.localize(&g, g.nbr_v(3), &[0, 1, 2, 3]);
        lg.check_consistency(&g);
        // Re-localize to a smaller then larger universe; stale state
        // must not leak.
        lg.localize(&g, &g.nbr_v(1)[..1], &[1]);
        lg.check_consistency(&g);
        lg.localize(&g, g.nbr_v(3), &[0, 2, 3]);
        lg.check_consistency(&g);
    }

    proptest! {
        #[test]
        fn localization_is_consistent(
            edges in proptest::collection::vec((0u32..14, 0u32..12), 0..140),
            v in 0u32..12,
        ) {
            let g = BipartiteGraph::from_edges(14, 12, &edges).unwrap();
            let left = g.nbr_v(v).to_vec();
            let mut th = crate::two_hop::TwoHop::new(g.num_v() as usize);
            let mut rights = Vec::new();
            th.of_v(&g, v, &mut rights);
            rights.push(v);
            rights.sort_unstable();
            for kernel in [Kernel::Adaptive, Kernel::SortedOnly, Kernel::BitmapOnly] {
                let lg = localized(&g, &left, &rights, kernel);
                lg.check_consistency(&g);
            }
        }

        #[test]
        fn row_views_agree_across_kernels(
            edges in proptest::collection::vec((0u32..14, 0u32..12), 0..140),
            v in 0u32..12,
        ) {
            let g = BipartiteGraph::from_edges(14, 12, &edges).unwrap();
            let left = g.nbr_v(v).to_vec();
            let rights: Vec<u32> = (0..g.num_v()).collect();
            let sorted = localized(&g, &left, &rights, Kernel::SortedOnly);
            let bits = localized(&g, &left, &rights, Kernel::BitmapOnly);
            let probe: Vec<u32> = (0..left.len() as u32).step_by(2).collect();
            for rid in 0..rights.len() as u32 {
                let sv = sorted.row_view(rid, probe.len());
                let bv = bits.row_view(rid, probe.len());
                prop_assert!(matches!(sv, SetView::Sorted(_)));
                // A zero-width universe packs into zero words, so the
                // bitmap build degenerates to sorted rows.
                prop_assert!(matches!(bv, SetView::Bits(_)) || left.is_empty());
                prop_assert_eq!(sv.intersect_count(&probe), bv.intersect_count(&probe));
                prop_assert_eq!(sv.contains_all(&probe), bv.contains_all(&probe));
                let (mut a, mut b) = (Vec::new(), Vec::new());
                sv.intersect_into(&probe, &mut a);
                bv.intersect_into(&probe, &mut b);
                prop_assert_eq!(a, b);
            }
        }
    }
}
