//! Bipartite graph substrate for maximal biclique enumeration.
//!
//! A [`BipartiteGraph`] stores both sides of a bipartite graph
//! `G = (U, V, E)` in compressed-sparse-row (CSR) form with neighbor lists
//! sorted by vertex id. Vertices of each side are dense `u32` ids in their
//! own id space (`0..num_u()` and `0..num_v()`).
//!
//! The crate also provides:
//!
//! * [`io`] — plain edge-list readers/writers (KONECT-style comments
//!   tolerated);
//! * [`order`] — the vertex orderings that MBE algorithms impose on `V`
//!   (ascending degree, descending degree, unilateral/degeneracy, random);
//! * [`stats`] — degree and 2-hop-degree statistics (`D`, `D₂`) used for
//!   load estimation and reporting;
//! * [`two_hop`] — 2-hop neighborhood computation, the root-task substrate.
//!
//! The conventions follow the MBE literature: the side with *fewer*
//! vertices is canonicalized to `V` (see [`BipartiteGraph::canonicalize`]),
//! since enumeration explores the powerset of `V`.

#![forbid(unsafe_code)]

pub mod builder;
pub mod butterfly;
pub mod core;
pub mod general;
pub mod io;
pub mod local;
pub mod order;
pub mod stats;
pub mod two_hop;

pub use builder::GraphBuilder;
pub use general::GeneralGraph;
pub use local::LocalGraph;

/// Which side of the bipartite graph a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left side `U` (canonically the larger one).
    U,
    /// The right side `V` (canonically the smaller one; enumeration
    /// explores subsets of `V`).
    V,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::U => Side::V,
            Side::V => Side::U,
        }
    }
}

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was out of the declared vertex range.
    VertexOutOfRange {
        /// Side of the offending endpoint.
        side: Side,
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices declared for that side.
        len: u32,
    },
    /// An input line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The input exceeds a configured size limit (see
    /// [`io::ReadLimits`]). Reported instead of silently truncating or
    /// attempting an allocation sized by hostile input.
    TooLarge {
        /// What grew past its limit (e.g. `"edges"`, `"line bytes"`).
        what: &'static str,
        /// The limit that was exceeded.
        limit: u64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { side, vertex, len } => {
                write!(f, "vertex {vertex} out of range for side {side:?} (size {len})")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            GraphError::TooLarge { what, limit } => {
                write!(f, "input too large: {what} exceeds the limit of {limit}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// An immutable bipartite graph in two-sided CSR form.
///
/// Construct via [`BipartiteGraph::from_edges`] or [`GraphBuilder`].
/// Neighbor lists are strictly increasing; duplicate edges are merged at
/// construction.
#[derive(Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    // CSR for U -> V.
    u_offsets: Vec<usize>,
    u_adj: Vec<u32>,
    // CSR for V -> U.
    v_offsets: Vec<usize>,
    v_adj: Vec<u32>,
}

impl BipartiteGraph {
    /// Builds a graph from an edge list. Duplicate edges are merged.
    ///
    /// `nu`/`nv` declare the number of vertices on each side; every edge
    /// endpoint must be `< nu` (left) resp. `< nv` (right).
    ///
    /// ```
    /// use bigraph::BipartiteGraph;
    /// let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (0, 1), (2, 1), (0, 1)]).unwrap();
    /// assert_eq!(g.num_edges(), 3);
    /// assert_eq!(g.nbr_u(0), &[0, 1]);
    /// assert_eq!(g.nbr_v(1), &[0, 2]);
    /// ```
    pub fn from_edges(nu: u32, nv: u32, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(nu, nv);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    pub(crate) fn from_csr(
        u_offsets: Vec<usize>,
        u_adj: Vec<u32>,
        v_offsets: Vec<usize>,
        v_adj: Vec<u32>,
    ) -> Self {
        let g = BipartiteGraph { u_offsets, u_adj, v_offsets, v_adj };
        debug_assert!(g.check_invariants());
        g
    }

    fn check_invariants(&self) -> bool {
        (0..self.num_u()).all(|u| setops::is_strictly_increasing(self.nbr_u(u)))
            && (0..self.num_v()).all(|v| setops::is_strictly_increasing(self.nbr_v(v)))
            && self.u_adj.len() == self.v_adj.len()
    }

    /// Number of vertices on the `U` side.
    #[inline]
    pub fn num_u(&self) -> u32 {
        (self.u_offsets.len() - 1) as u32
    }

    /// Number of vertices on the `V` side.
    #[inline]
    pub fn num_v(&self) -> u32 {
        (self.v_offsets.len() - 1) as u32
    }

    /// Number of (distinct) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.u_adj.len()
    }

    /// Sorted neighbors (in `V`) of left vertex `u`.
    #[inline]
    pub fn nbr_u(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.u_adj[self.u_offsets[u]..self.u_offsets[u + 1]]
    }

    /// Sorted neighbors (in `U`) of right vertex `v`.
    #[inline]
    pub fn nbr_v(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.v_adj[self.v_offsets[v]..self.v_offsets[v + 1]]
    }

    /// Degree of left vertex `u`.
    #[inline]
    pub fn deg_u(&self, u: u32) -> usize {
        self.nbr_u(u).len()
    }

    /// Degree of right vertex `v`.
    #[inline]
    pub fn deg_v(&self, v: u32) -> usize {
        self.nbr_v(v).len()
    }

    /// `true` iff edge `(u, v)` exists (binary search on the shorter list).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if self.deg_u(u) <= self.deg_v(v) {
            self.nbr_u(u).binary_search(&v).is_ok()
        } else {
            self.nbr_v(v).binary_search(&u).is_ok()
        }
    }

    /// All edges as `(u, v)` pairs, ordered by `u` then `v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_u()).flat_map(move |u| self.nbr_u(u).iter().map(move |&v| (u, v)))
    }

    /// Swaps the two sides: `U` becomes `V` and vice versa.
    pub fn swap_sides(&self) -> BipartiteGraph {
        BipartiteGraph {
            u_offsets: self.v_offsets.clone(),
            u_adj: self.v_adj.clone(),
            v_offsets: self.u_offsets.clone(),
            v_adj: self.u_adj.clone(),
        }
    }

    /// Canonicalizes side assignment so that `|U| ≥ |V|`, the convention
    /// assumed by the enumeration algorithms (they explore subsets of `V`).
    ///
    /// Returns the (possibly swapped) graph and whether a swap happened, so
    /// callers can map reported bicliques back to original sides.
    pub fn canonicalize(&self) -> (BipartiteGraph, bool) {
        if self.num_u() >= self.num_v() {
            (self.clone(), false)
        } else {
            (self.swap_sides(), true)
        }
    }

    /// Relabels the `V` side by `perm`, where `perm[new_id] = old_id`.
    /// Neighbor lists on the `U` side are re-sorted accordingly.
    ///
    /// Panics if `perm` is not a permutation of `0..num_v()`.
    pub fn permute_v(&self, perm: &[u32]) -> BipartiteGraph {
        let nv = self.num_v() as usize;
        assert_eq!(perm.len(), nv, "permutation length mismatch");
        let mut inv = vec![u32::MAX; nv];
        for (new_id, &old_id) in perm.iter().enumerate() {
            assert!(
                (old_id as usize) < nv && inv[old_id as usize] == u32::MAX,
                "not a permutation"
            );
            inv[old_id as usize] = new_id as u32;
        }
        // Rebuild V side CSR in the new order.
        let mut v_offsets = Vec::with_capacity(nv + 1);
        let mut v_adj = Vec::with_capacity(self.v_adj.len());
        v_offsets.push(0);
        for &old_id in perm {
            v_adj.extend_from_slice(self.nbr_v(old_id));
            v_offsets.push(v_adj.len());
        }
        // Rewrite U side ids and re-sort each list.
        let mut u_adj = self.u_adj.clone();
        for w in u_adj.iter_mut() {
            *w = inv[*w as usize];
        }
        for u in 0..self.num_u() as usize {
            u_adj[self.u_offsets[u]..self.u_offsets[u + 1]].sort_unstable();
        }
        BipartiteGraph::from_csr(self.u_offsets.clone(), u_adj, v_offsets, v_adj)
    }

    /// Induced subgraph on the given (sorted, deduplicated) vertex subsets.
    /// Vertices are re-labeled densely in the order given.
    pub fn induced(&self, us: &[u32], vs: &[u32]) -> BipartiteGraph {
        debug_assert!(setops::is_strictly_increasing(us));
        debug_assert!(setops::is_strictly_increasing(vs));
        let mut vmap = std::collections::HashMap::with_capacity(vs.len());
        for (i, &v) in vs.iter().enumerate() {
            vmap.insert(v, i as u32);
        }
        let mut b = GraphBuilder::new(us.len() as u32, vs.len() as u32);
        let mut keep = Vec::new();
        for (i, &u) in us.iter().enumerate() {
            setops::intersect_into(self.nbr_u(u), vs, &mut keep);
            for &v in &keep {
                b.add_edge(i as u32, vmap[&v]).expect("in-range by construction");
            }
        }
        b.build()
    }
}

impl std::fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BipartiteGraph {{ |U|: {}, |V|: {}, |E|: {} }}",
            self.num_u(),
            self.num_v(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example graph G0 from the MBE literature:
    /// U = {u1..u5} (ids 0..5), V = {v1..v4} (ids 0..4).
    pub(crate) fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0), // u1-v1
                (0, 1), // u1-v2
                (0, 2), // u1-v3
                (1, 0), // u2-v1
                (1, 1), // u2-v2
                (1, 2), // u2-v3
                (1, 3), // u2-v4
                (2, 1), // u3-v2
                (3, 1), // u4-v2
                (3, 2), // u4-v3
                (3, 3), // u4-v4
                (4, 3), // u5-v4
            ],
        )
        .unwrap()
    }

    #[test]
    fn g0_shape() {
        let g = g0();
        assert_eq!(g.num_u(), 5);
        assert_eq!(g.num_v(), 4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.nbr_u(1), &[0, 1, 2, 3]);
        assert_eq!(g.nbr_v(1), &[0, 1, 2, 3]);
        assert_eq!(g.nbr_v(3), &[1, 3, 4]);
        assert!(g.has_edge(4, 3));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 0), (1, 1), (0, 0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.nbr_u(0), &[0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = BipartiteGraph::from_edges(2, 2, &[(2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { side: Side::U, vertex: 2, len: 2 }));
        let err = BipartiteGraph::from_edges(2, 2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { side: Side::V, vertex: 5, len: 2 }));
    }

    #[test]
    fn swap_and_canonicalize() {
        let g = BipartiteGraph::from_edges(2, 4, &[(0, 0), (1, 3), (1, 2)]).unwrap();
        let (c, swapped) = g.canonicalize();
        assert!(swapped);
        assert_eq!(c.num_u(), 4);
        assert_eq!(c.num_v(), 2);
        assert_eq!(c.num_edges(), 3);
        // Round trip.
        let back = c.swap_sides();
        assert_eq!(back, g);
        // Already canonical graphs are untouched.
        let (c2, swapped2) = c.canonicalize();
        assert!(!swapped2);
        assert_eq!(c2, c);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = g0();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        let g2 = BipartiteGraph::from_edges(5, 4, &edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn permute_v_identity_and_reverse() {
        let g = g0();
        let id: Vec<u32> = (0..4).collect();
        assert_eq!(g.permute_v(&id), g);

        let rev: Vec<u32> = (0..4).rev().collect();
        let p = g.permute_v(&rev);
        // v3 (old id 2) is new id 1; u1's neighbors {v1,v2,v3} = old {0,1,2}
        // map to new {3,2,1}, sorted {1,2,3}.
        assert_eq!(p.nbr_u(0), &[1, 2, 3]);
        assert_eq!(p.nbr_v(1), g.nbr_v(2));
        // Degree multiset preserved.
        let mut d1: Vec<usize> = (0..4).map(|v| g.deg_v(v)).collect();
        let mut d2: Vec<usize> = (0..4).map(|v| p.deg_v(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_v_rejects_non_permutation() {
        g0().permute_v(&[0, 0, 1, 2]);
    }

    #[test]
    fn induced_subgraph() {
        let g = g0();
        // Restrict to U {u1,u2,u4} = {0,1,3}, V {v2,v3} = {1,2}.
        let s = g.induced(&[0, 1, 3], &[1, 2]);
        assert_eq!(s.num_u(), 3);
        assert_eq!(s.num_v(), 2);
        assert_eq!(s.nbr_u(0), &[0, 1]); // u1 -> {v2,v3}
        assert_eq!(s.nbr_u(2), &[0, 1]); // u4 -> {v2,v3}
        assert_eq!(s.nbr_v(0), &[0, 1, 2]); // v2 adjacent to all three
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        assert_eq!(g.num_u(), 0);
        assert_eq!(g.num_v(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = BipartiteGraph::from_edges(3, 3, &[(1, 1)]).unwrap();
        assert_eq!(g.deg_u(0), 0);
        assert_eq!(g.deg_u(2), 0);
        assert_eq!(g.deg_v(0), 0);
        assert_eq!(g.nbr_u(1), &[1]);
    }
}
