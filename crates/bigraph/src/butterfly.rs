//! Butterfly (2×2 biclique) counting.
//!
//! The butterfly — a complete 2×2 biclique — is the smallest non-trivial
//! biclique and the standard density motif of bipartite analysis. Its
//! count relates directly to MBE difficulty: every butterfly lies inside
//! some maximal biclique, and graphs with high butterfly-per-edge ratios
//! produce the combinatorial biclique families that make enumeration
//! expensive. The workload generators use it as a calibration metric and
//! the examples report it as a cohesion score.
//!
//! Counting uses the standard wedge-aggregation algorithm: for each
//! vertex on the chosen side, count wedges (paths of length 2) it closes
//! with each 2-hop neighbor; `k` wedges between a pair contribute
//! `k·(k−1)/2` butterflies. Complexity `O(Σ_u d(u)²)` over the wedge
//! side, so we aggregate from the side with the smaller sum of squared
//! degrees.

use crate::{BipartiteGraph, Side};

/// Exact number of butterflies (2×2 complete bicliques) in `g`.
pub fn count_butterflies(g: &BipartiteGraph) -> u64 {
    // Aggregate wedges through the side whose squared-degree sum is
    // smaller: wedges are centered on the *other* side's vertices.
    let sq = |side: Side| -> u128 {
        match side {
            Side::U => (0..g.num_u()).map(|u| (g.deg_u(u) as u128).pow(2)).sum(),
            Side::V => (0..g.num_v()).map(|v| (g.deg_v(v) as u128).pow(2)).sum(),
        }
    };
    if sq(Side::U) <= sq(Side::V) {
        count_via_u_wedges(g)
    } else {
        count_via_u_wedges(&g.swap_sides())
    }
}

/// Counts wedges `v — u — v'` (centered on `U`), aggregated per endpoint
/// pair via a per-`v` accumulator array.
fn count_via_u_wedges(g: &BipartiteGraph) -> u64 {
    let nv = g.num_v() as usize;
    // wedge_count[v'] = wedges between the current v and v'.
    let mut wedge_count: Vec<u32> = vec![0; nv];
    let mut touched: Vec<u32> = Vec::new();
    let mut total: u64 = 0;
    for v in 0..g.num_v() {
        // All wedges v — u — v' with v' > v (avoid double counting).
        for &u in g.nbr_v(v) {
            for &v2 in g.nbr_u(u) {
                if v2 > v {
                    if wedge_count[v2 as usize] == 0 {
                        touched.push(v2);
                    }
                    wedge_count[v2 as usize] += 1;
                }
            }
        }
        for &v2 in &touched {
            let k = wedge_count[v2 as usize] as u64;
            total += k * (k - 1) / 2;
            wedge_count[v2 as usize] = 0;
        }
        touched.clear();
    }
    total
}

/// Butterfly count per edge (the standard density score); 0 for edgeless
/// graphs.
pub fn butterfly_density(g: &BipartiteGraph) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    count_butterflies(g) as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference: test all C(nu,2) × C(nv,2) quadruples directly.
    fn brute(g: &BipartiteGraph) -> u64 {
        let mut n = 0;
        for u1 in 0..g.num_u() {
            for u2 in u1 + 1..g.num_u() {
                for v1 in 0..g.num_v() {
                    for v2 in v1 + 1..g.num_v() {
                        if g.has_edge(u1, v1)
                            && g.has_edge(u1, v2)
                            && g.has_edge(u2, v1)
                            && g.has_edge(u2, v2)
                        {
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    #[test]
    fn complete_block_count() {
        // K(a,b) has C(a,2)·C(b,2) butterflies.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 0..3 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(4, 3, &edges).unwrap();
        assert_eq!(count_butterflies(&g), 6 * 3);
        assert_eq!(brute(&g), 18);
    }

    #[test]
    fn g0_count() {
        let g = crate::tests::g0();
        assert_eq!(count_butterflies(&g), brute(&g));
    }

    #[test]
    fn no_butterflies_in_trees_or_matchings() {
        let matching = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        assert_eq!(count_butterflies(&matching), 0);
        let star = BipartiteGraph::from_edges(1, 4, &[(0, 0), (0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(count_butterflies(&star), 0);
        assert_eq!(butterfly_density(&star), 0.0);
    }

    #[test]
    fn density_of_complete_block() {
        let mut edges = Vec::new();
        for u in 0..2 {
            for v in 0..2 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(2, 2, &edges).unwrap();
        assert_eq!(count_butterflies(&g), 1);
        assert!((butterfly_density(&g) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        assert_eq!(count_butterflies(&g), 0);
        assert_eq!(butterfly_density(&g), 0.0);
    }

    proptest! {
        #[test]
        fn matches_brute_force(
            edges in proptest::collection::vec((0u32..8, 0u32..9), 0..45)
        ) {
            let g = BipartiteGraph::from_edges(8, 9, &edges).unwrap();
            prop_assert_eq!(count_butterflies(&g), brute(&g));
            // Side choice must not matter.
            prop_assert_eq!(count_butterflies(&g.swap_sides()), brute(&g));
        }
    }
}
