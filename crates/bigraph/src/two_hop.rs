//! 2-hop neighborhood computation.
//!
//! For a right vertex `v`, the 2-hop neighborhood
//! `N²(v) = ∪_{u ∈ N(v)} N(u) − {v}` is the candidate universe of the
//! enumeration subtree rooted at `v`: only vertices in `N²(v)` can share a
//! maximal biclique with `v`. Computing it is a multi-way union of sorted
//! lists; we provide a mark-based accumulator (reusable across calls) and a
//! k-way merge alternative, both exercised against each other in tests.

use crate::BipartiteGraph;

/// Workhorse buffer for repeated 2-hop computations over one graph.
///
/// Keeps a `seen` epoch array sized to the relevant side so that repeated
/// calls allocate nothing. Epoch-based clearing means `reset` is `O(1)`.
pub struct TwoHop {
    seen: Vec<u32>,
    epoch: u32,
}

impl TwoHop {
    /// An accumulator for a side of `n` vertices.
    pub fn new(n: usize) -> Self {
        TwoHop { seen: vec![0; n], epoch: 0 }
    }

    /// `N²(v)` for a right vertex, sorted ascending, excluding `v` itself.
    /// Output replaces the contents of `out`.
    pub fn of_v(&mut self, g: &BipartiteGraph, v: u32, out: &mut Vec<u32>) {
        debug_assert_eq!(self.seen.len(), g.num_v() as usize);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: invalidate all marks.
            self.seen.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
        out.clear();
        self.seen[v as usize] = self.epoch;
        for &u in g.nbr_v(v) {
            for &w in g.nbr_u(u) {
                let slot = &mut self.seen[w as usize];
                if *slot != self.epoch {
                    *slot = self.epoch;
                    out.push(w);
                }
            }
        }
        out.sort_unstable();
    }

    /// Size of `N²(v)` without materializing it.
    ///
    /// Counts fresh epoch marks directly — no allocation and no sort,
    /// honoring the struct's "repeated calls allocate nothing" contract.
    pub fn degree_v(&mut self, g: &BipartiteGraph, v: u32) -> usize {
        debug_assert_eq!(self.seen.len(), g.num_v() as usize);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
        // Mark `v` first so it is excluded without a per-hit comparison.
        self.seen[v as usize] = self.epoch;
        let mut n = 0;
        for &u in g.nbr_v(v) {
            for &w in g.nbr_u(u) {
                let slot = &mut self.seen[w as usize];
                if *slot != self.epoch {
                    *slot = self.epoch;
                    n += 1;
                }
            }
        }
        n
    }
}

/// `N²(v)` via a k-way union of the neighbor lists (reference
/// implementation used to validate [`TwoHop`]).
pub fn two_hop_v_kway(g: &BipartiteGraph, v: u32) -> Vec<u32> {
    let mut acc: Vec<u32> = Vec::new();
    let mut tmp = Vec::new();
    for &u in g.nbr_v(v) {
        setops::union_into(&acc, g.nbr_u(u), &mut tmp);
        std::mem::swap(&mut acc, &mut tmp);
    }
    acc.retain(|&w| w != v);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn g0_two_hops() {
        // In G0: N(v1) = {u1,u2}; N(u1) ∪ N(u2) = {v1,v2,v3,v4};
        // so N²(v1) = {v2,v3,v4} = ids {1,2,3}.
        let g = crate::tests::g0();
        let mut th = TwoHop::new(g.num_v() as usize);
        let mut out = Vec::new();
        th.of_v(&g, 0, &mut out);
        assert_eq!(out, [1, 2, 3]);
        // v4 (id 3): N = {u2,u4,u5}; their neighborhoods cover all of V.
        th.of_v(&g, 3, &mut out);
        assert_eq!(out, [0, 1, 2]);
    }

    #[test]
    fn isolated_vertex_has_empty_two_hop() {
        let g = crate::BipartiteGraph::from_edges(2, 2, &[(0, 0)]).unwrap();
        let mut th = TwoHop::new(2);
        let mut out = vec![99];
        th.of_v(&g, 1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reuse_across_many_calls() {
        let g = crate::tests::g0();
        let mut th = TwoHop::new(g.num_v() as usize);
        let mut out = Vec::new();
        for _ in 0..3 {
            for v in 0..g.num_v() {
                th.of_v(&g, v, &mut out);
                assert_eq!(out, two_hop_v_kway(&g, v), "v={v}");
            }
        }
    }

    #[test]
    fn degree_matches_materialized_size() {
        let g = crate::tests::g0();
        let mut th = TwoHop::new(g.num_v() as usize);
        let mut out = Vec::new();
        for v in 0..g.num_v() {
            // Interleave with of_v to prove the epoch marks don't bleed.
            th.of_v(&g, v, &mut out);
            let want = out.len();
            assert_eq!(th.degree_v(&g, v), want, "v={v}");
            assert_eq!(th.degree_v(&g, v), want, "repeat v={v}");
        }
    }

    proptest! {
        #[test]
        fn degree_v_matches_of_v(
            edges in proptest::collection::vec((0u32..12, 0u32..10), 0..120)
        ) {
            let g = crate::BipartiteGraph::from_edges(12, 10, &edges).unwrap();
            let mut th = TwoHop::new(10);
            let mut out = Vec::new();
            for v in 0..g.num_v() {
                let deg = th.degree_v(&g, v);
                th.of_v(&g, v, &mut out);
                prop_assert_eq!(deg, out.len());
            }
        }

        #[test]
        fn mark_based_matches_kway(
            edges in proptest::collection::vec((0u32..12, 0u32..10), 0..120)
        ) {
            let g = crate::BipartiteGraph::from_edges(12, 10, &edges).unwrap();
            let mut th = TwoHop::new(10);
            let mut out = Vec::new();
            for v in 0..g.num_v() {
                th.of_v(&g, v, &mut out);
                prop_assert_eq!(&out, &two_hop_v_kway(&g, v));
                prop_assert!(setops::is_strictly_increasing(&out));
                prop_assert!(!out.contains(&v));
            }
        }
    }
}
