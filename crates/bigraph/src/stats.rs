//! Graph statistics: the `|U| |V| |E| D(U) D₂(U) D(V) D₂(V)` columns of the
//! standard MBE dataset tables, plus degree distributions used by the
//! workload generators for calibration.

use crate::two_hop::TwoHop;
use crate::BipartiteGraph;

/// Summary statistics of a bipartite graph, in the shape the MBE papers
/// tabulate (their Table "dataset statistics").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of left vertices.
    pub num_u: u32,
    /// Number of right vertices.
    pub num_v: u32,
    /// Number of distinct edges.
    pub num_edges: usize,
    /// Maximum degree on the `U` side.
    pub max_deg_u: usize,
    /// Maximum degree on the `V` side.
    pub max_deg_v: usize,
    /// Maximum 2-hop degree on the `U` side (`D₂(U)`).
    pub max_two_hop_u: usize,
    /// Maximum 2-hop degree on the `V` side (`D₂(V)`).
    pub max_two_hop_v: usize,
}

/// Computes full statistics. 2-hop degrees make this `O(Σ_v Σ_{u∈N(v)}
/// |N(u)|)` — fine for the benchmark scales used here; prefer
/// [`basic_stats`] when 2-hop columns are not needed.
pub fn stats(g: &BipartiteGraph) -> GraphStats {
    let mut s = basic_stats(g);
    let mut th_v = TwoHop::new(g.num_v() as usize);
    let mut buf = Vec::new();
    for v in 0..g.num_v() {
        th_v.of_v(g, v, &mut buf);
        s.max_two_hop_v = s.max_two_hop_v.max(buf.len());
    }
    let swapped = g.swap_sides();
    let mut th_u = TwoHop::new(swapped.num_v() as usize);
    for u in 0..swapped.num_v() {
        th_u.of_v(&swapped, u, &mut buf);
        s.max_two_hop_u = s.max_two_hop_u.max(buf.len());
    }
    s
}

/// Degree-only statistics (2-hop columns left at zero).
pub fn basic_stats(g: &BipartiteGraph) -> GraphStats {
    GraphStats {
        num_u: g.num_u(),
        num_v: g.num_v(),
        num_edges: g.num_edges(),
        max_deg_u: (0..g.num_u()).map(|u| g.deg_u(u)).max().unwrap_or(0),
        max_deg_v: (0..g.num_v()).map(|v| g.deg_v(v)).max().unwrap_or(0),
        max_two_hop_u: 0,
        max_two_hop_v: 0,
    }
}

/// Degree histogram of one side: `hist[d]` = number of vertices with
/// degree `d`.
pub fn degree_histogram(g: &BipartiteGraph, side: crate::Side) -> Vec<usize> {
    let (n, deg): (u32, Box<dyn Fn(u32) -> usize>) = match side {
        crate::Side::U => (g.num_u(), Box::new(|u| g.deg_u(u))),
        crate::Side::V => (g.num_v(), Box::new(|v| g.deg_v(v))),
    };
    let mut hist = Vec::new();
    for x in 0..n {
        let d = deg(x);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Mean degree of one side.
pub fn mean_degree(g: &BipartiteGraph, side: crate::Side) -> f64 {
    let n = match side {
        crate::Side::U => g.num_u(),
        crate::Side::V => g.num_v(),
    };
    if n == 0 {
        return 0.0;
    }
    g.num_edges() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Side;

    #[test]
    fn g0_stats() {
        let g = crate::tests::g0();
        let s = stats(&g);
        assert_eq!(s.num_u, 5);
        assert_eq!(s.num_v, 4);
        assert_eq!(s.num_edges, 12);
        assert_eq!(s.max_deg_u, 4); // u2
        assert_eq!(s.max_deg_v, 4); // v2
                                    // N²(v2) = {v1,v3,v4}; N²(v1)={v2,v3,v4}; max over V is 3.
        assert_eq!(s.max_two_hop_v, 3);
        // N²(u2) covers {u1,u3,u4,u5}: 4.
        assert_eq!(s.max_two_hop_u, 4);
    }

    #[test]
    fn histogram_sums_to_side_size() {
        let g = crate::tests::g0();
        let h = degree_histogram(&g, Side::V);
        assert_eq!(h.iter().sum::<usize>(), 4);
        let total_deg: usize = h.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(total_deg, g.num_edges());
    }

    #[test]
    fn empty_graph_stats() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        let s = stats(&g);
        assert_eq!(s.max_deg_u, 0);
        assert_eq!(s.max_two_hop_v, 0);
        assert_eq!(mean_degree(&g, Side::U), 0.0);
    }

    #[test]
    fn mean_degree_matches() {
        let g = crate::tests::g0();
        assert!((mean_degree(&g, Side::U) - 12.0 / 5.0).abs() < 1e-12);
        assert!((mean_degree(&g, Side::V) - 3.0).abs() < 1e-12);
    }
}
