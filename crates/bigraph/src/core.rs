//! (α, β)-core reduction.
//!
//! The (α, β)-core of a bipartite graph is the maximal subgraph where
//! every `U` vertex has degree ≥ α and every `V` vertex degree ≥ β. Any
//! biclique with `|R| ≥ α` and `|L| ≥ β` lies entirely inside the
//! (α, β)-core (each `u ∈ L` has ≥ |R| ≥ α neighbors in the subgraph and
//! symmetrically), so size-constrained enumeration can peel the graph
//! first — the standard preprocessing step of the threshold-aware MBE
//! algorithms.

use crate::{BipartiteGraph, GraphBuilder};
use std::collections::VecDeque;

/// Result of a core reduction: the peeled subgraph plus the id maps back
/// to the original graph.
#[derive(Debug, Clone)]
pub struct CoreReduction {
    /// The reduced graph with dense re-labeled ids.
    pub graph: BipartiteGraph,
    /// `u_map[new_u] = old_u`.
    pub u_map: Vec<u32>,
    /// `v_map[new_v] = old_v`.
    pub v_map: Vec<u32>,
}

impl CoreReduction {
    /// Maps a left vertex of the reduced graph back to the original id.
    pub fn original_u(&self, u: u32) -> u32 {
        self.u_map[u as usize]
    }

    /// Maps a right vertex of the reduced graph back to the original id.
    pub fn original_v(&self, v: u32) -> u32 {
        self.v_map[v as usize]
    }
}

/// Peels `g` to its (α, β)-core: every surviving `U` vertex keeps degree
/// ≥ α and every surviving `V` vertex degree ≥ β.
///
/// Runs in `O(|E|)` via cascading queue-based peeling.
pub fn alpha_beta_core(g: &BipartiteGraph, alpha: usize, beta: usize) -> CoreReduction {
    let nu = g.num_u() as usize;
    let nv = g.num_v() as usize;
    let mut deg_u: Vec<usize> = (0..g.num_u()).map(|u| g.deg_u(u)).collect();
    let mut deg_v: Vec<usize> = (0..g.num_v()).map(|v| g.deg_v(v)).collect();
    let mut dead_u = vec![false; nu];
    let mut dead_v = vec![false; nv];

    // Seed the peel queue with everything already below threshold.
    let mut queue: VecDeque<(bool, u32)> = VecDeque::new();
    for u in 0..nu {
        if deg_u[u] < alpha {
            dead_u[u] = true;
            queue.push_back((true, u as u32));
        }
    }
    for v in 0..nv {
        if deg_v[v] < beta {
            dead_v[v] = true;
            queue.push_back((false, v as u32));
        }
    }
    while let Some((is_u, x)) = queue.pop_front() {
        if is_u {
            for &v in g.nbr_u(x) {
                let v = v as usize;
                if !dead_v[v] {
                    deg_v[v] -= 1;
                    if deg_v[v] < beta {
                        dead_v[v] = true;
                        queue.push_back((false, v as u32));
                    }
                }
            }
        } else {
            for &u in g.nbr_v(x) {
                let u = u as usize;
                if !dead_u[u] {
                    deg_u[u] -= 1;
                    if deg_u[u] < alpha {
                        dead_u[u] = true;
                        queue.push_back((true, u as u32));
                    }
                }
            }
        }
    }

    // Re-label survivors densely.
    let u_map: Vec<u32> = (0..nu as u32).filter(|&u| !dead_u[u as usize]).collect();
    let v_map: Vec<u32> = (0..nv as u32).filter(|&v| !dead_v[v as usize]).collect();
    let mut u_inv = vec![u32::MAX; nu];
    for (new, &old) in u_map.iter().enumerate() {
        u_inv[old as usize] = new as u32;
    }
    let mut v_inv = vec![u32::MAX; nv];
    for (new, &old) in v_map.iter().enumerate() {
        v_inv[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(u_map.len() as u32, v_map.len() as u32);
    for &old_u in &u_map {
        for &old_v in g.nbr_u(old_u) {
            if !dead_v[old_v as usize] {
                b.add_edge(u_inv[old_u as usize], v_inv[old_v as usize])
                    .expect("survivor ids are dense");
            }
        }
    }
    CoreReduction { graph: b.build(), u_map, v_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_core_keeps_everything_with_edges() {
        let g = crate::tests::g0();
        let red = alpha_beta_core(&g, 1, 1);
        assert_eq!(red.graph.num_u(), 5);
        assert_eq!(red.graph.num_v(), 4);
        assert_eq!(red.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn pendant_vertices_peel_and_cascade() {
        // u0-v0, u1-v0, u1-v1: (2,1)-core requires deg_u ≥ 2 → only u1
        // survives the first pass, then v0 has deg 1 ≥ 1, v1 deg 1 ≥ 1.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        let red = alpha_beta_core(&g, 2, 1);
        assert_eq!(red.graph.num_u(), 1);
        assert_eq!(red.original_u(0), 1);
        assert_eq!(red.graph.num_edges(), 2);

        // (2, 2)-core: u1 has deg 2 but v0,v1 then have deg 1 < 2 →
        // everything cascades away.
        let red = alpha_beta_core(&g, 2, 2);
        assert_eq!(red.graph.num_edges(), 0);
        assert_eq!(red.graph.num_u(), 0);
        assert_eq!(red.graph.num_v(), 0);
    }

    #[test]
    fn complete_block_survives_its_own_size() {
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..4 {
                edges.push((u, v));
            }
        }
        // Add pendant noise that must peel away.
        edges.push((3, 4));
        let g = BipartiteGraph::from_edges(4, 5, &edges).unwrap();
        let red = alpha_beta_core(&g, 4, 3);
        assert_eq!(red.graph.num_u(), 3);
        assert_eq!(red.graph.num_v(), 4);
        assert_eq!(red.graph.num_edges(), 12);
    }

    #[test]
    fn id_maps_are_consistent() {
        let g = crate::tests::g0();
        let red = alpha_beta_core(&g, 2, 2);
        for new_u in 0..red.graph.num_u() {
            for &new_v in red.graph.nbr_u(new_u) {
                assert!(
                    g.has_edge(red.original_u(new_u), red.original_v(new_v)),
                    "reduced edge must exist in the original"
                );
            }
        }
    }

    proptest! {
        /// Core invariant: every surviving vertex meets its threshold.
        #[test]
        fn survivors_meet_thresholds(
            edges in proptest::collection::vec((0u32..15, 0u32..12), 0..120),
            alpha in 1usize..4,
            beta in 1usize..4,
        ) {
            let g = crate::BipartiteGraph::from_edges(15, 12, &edges).unwrap();
            let red = alpha_beta_core(&g, alpha, beta);
            for u in 0..red.graph.num_u() {
                prop_assert!(red.graph.deg_u(u) >= alpha);
            }
            for v in 0..red.graph.num_v() {
                prop_assert!(red.graph.deg_v(v) >= beta);
            }
            // Maximality of the core: no peeled vertex could re-enter.
            // (Checked indirectly: peeling the core again is a no-op.)
            let red2 = alpha_beta_core(&red.graph, alpha, beta);
            prop_assert_eq!(red2.graph.num_edges(), red.graph.num_edges());
        }
    }
}
