//! Vertex orderings on the `V` side.
//!
//! MBE algorithms traverse candidates of `V` in a fixed global order; the
//! order determines both the shape of the enumeration tree and how early
//! non-maximal branches are cut. The literature converges on *ascending
//! degree* as the robust default (small-degree roots produce small `L`
//! universes early); ooMBEA additionally proposed a "unilateral" order
//! driven by 2-hop connectivity. Both are provided here, along with the
//! descending and seeded-random controls used by the ordering-sensitivity
//! experiment (E7).

use crate::two_hop::TwoHop;
use crate::BipartiteGraph;

/// Ordering strategies for the `V` side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexOrder {
    /// Keep input ids (control).
    Natural,
    /// Ascending degree, ties by id — the literature's default.
    AscendingDegree,
    /// Descending degree, ties by id (adversarial control).
    DescendingDegree,
    /// Ascending 2-hop degree, ties by degree then id — our reconstruction
    /// of the "unilateral" order (RECONSTRUCTED; see DESIGN.md §3.5).
    Unilateral,
    /// Seeded pseudo-random shuffle (control).
    Random(u64),
}

impl VertexOrder {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            VertexOrder::Natural => "natural",
            VertexOrder::AscendingDegree => "asc-deg",
            VertexOrder::DescendingDegree => "desc-deg",
            VertexOrder::Unilateral => "unilateral",
            VertexOrder::Random(_) => "random",
        }
    }
}

/// Computes the permutation `perm[new_id] = old_id` realizing `order`.
pub fn permutation(g: &BipartiteGraph, order: VertexOrder) -> Vec<u32> {
    let nv = g.num_v() as usize;
    let mut perm: Vec<u32> = (0..nv as u32).collect();
    match order {
        VertexOrder::Natural => {}
        VertexOrder::AscendingDegree => {
            perm.sort_by_key(|&v| (g.deg_v(v), v));
        }
        VertexOrder::DescendingDegree => {
            perm.sort_by_key(|&v| (std::cmp::Reverse(g.deg_v(v)), v));
        }
        VertexOrder::Unilateral => {
            let mut th = TwoHop::new(nv);
            let mut buf = Vec::new();
            let keys: Vec<(usize, usize)> = (0..nv as u32)
                .map(|v| {
                    th.of_v(g, v, &mut buf);
                    (buf.len(), g.deg_v(v))
                })
                .collect();
            perm.sort_by_key(|&v| (keys[v as usize], v));
        }
        VertexOrder::Random(seed) => {
            // Fisher–Yates with a splitmix64 stream; deterministic for a
            // given seed without pulling `rand` into the library.
            let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = move || {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            for i in (1..nv).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
        }
    }
    perm
}

/// Relabels `V` according to `order` and returns the reordered graph plus
/// the permutation applied (`perm[new_id] = old_id`), so reported bicliques
/// can be mapped back.
pub fn apply(g: &BipartiteGraph, order: VertexOrder) -> (BipartiteGraph, Vec<u32>) {
    let perm = permutation(g, order);
    (g.permute_v(&perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u32]) -> bool {
        let mut seen = vec![false; p.len()];
        p.iter().all(|&x| {
            let i = x as usize;
            i < seen.len() && !std::mem::replace(&mut seen[i], true)
        })
    }

    #[test]
    fn all_orders_are_permutations() {
        let g = crate::tests::g0();
        for order in [
            VertexOrder::Natural,
            VertexOrder::AscendingDegree,
            VertexOrder::DescendingDegree,
            VertexOrder::Unilateral,
            VertexOrder::Random(42),
        ] {
            let p = permutation(&g, order);
            assert!(is_permutation(&p), "{order:?}");
            assert_eq!(p.len(), 4);
        }
    }

    #[test]
    fn ascending_degree_is_sorted() {
        let g = crate::tests::g0();
        let p = permutation(&g, VertexOrder::AscendingDegree);
        let degs: Vec<usize> = p.iter().map(|&v| g.deg_v(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
        // G0 degrees: v1:2 v2:4 v3:3 v4:3 -> order v1, v3, v4, v2.
        assert_eq!(p, [0, 2, 3, 1]);
    }

    #[test]
    fn descending_is_reverse_of_ascending_on_distinct_degrees() {
        let g = BipartiteGraph::from_edges(4, 3, &[(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (0, 2)])
            .unwrap();
        let asc = permutation(&g, VertexOrder::AscendingDegree);
        let desc = permutation(&g, VertexOrder::DescendingDegree);
        let rev: Vec<u32> = asc.iter().rev().copied().collect();
        assert_eq!(desc, rev);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = crate::tests::g0();
        let a = permutation(&g, VertexOrder::Random(7));
        let b = permutation(&g, VertexOrder::Random(7));
        let c = permutation(&g, VertexOrder::Random(8));
        assert_eq!(a, b);
        assert!(is_permutation(&c));
    }

    #[test]
    fn apply_reorders_consistently() {
        let g = crate::tests::g0();
        let (h, perm) = apply(&g, VertexOrder::AscendingDegree);
        for new_v in 0..h.num_v() {
            assert_eq!(h.nbr_v(new_v), g.nbr_v(perm[new_v as usize]));
        }
        // Edge count preserved.
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_graph_orders() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        for order in [VertexOrder::Unilateral, VertexOrder::Random(1)] {
            assert!(permutation(&g, order).is_empty());
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every strategy yields a valid permutation, and `apply`
            /// preserves the edge multiset on arbitrary graphs.
            #[test]
            fn orders_are_permutations_and_apply_is_lossless(
                edges in proptest::collection::vec((0u32..14, 0u32..11), 0..90),
                seed in 0u64..100,
            ) {
                let g = BipartiteGraph::from_edges(14, 11, &edges).unwrap();
                for order in [
                    VertexOrder::Natural,
                    VertexOrder::AscendingDegree,
                    VertexOrder::DescendingDegree,
                    VertexOrder::Unilateral,
                    VertexOrder::Random(seed),
                ] {
                    let (h, perm) = apply(&g, order);
                    prop_assert!(is_permutation(&perm), "{:?}", order);
                    prop_assert_eq!(h.num_edges(), g.num_edges());
                    // Mapping edges back through the permutation recovers
                    // the original edge set exactly.
                    let mut back: Vec<(u32, u32)> = h
                        .edges()
                        .map(|(u, v)| (u, perm[v as usize]))
                        .collect();
                    back.sort_unstable();
                    let mut want: Vec<(u32, u32)> = g.edges().collect();
                    want.sort_unstable();
                    prop_assert_eq!(back, want);
                }
            }
        }
    }
}
