//! Undirected general graphs (no side labels).
//!
//! A [`GeneralGraph`] stores a simple undirected graph in CSR form with
//! neighbor lists sorted by vertex id — the substrate for the odd-cycle
//! -transversal driver (`crates/oct`), which lifts bipartite maximal
//! biclique enumeration to graphs that are only *nearly* bipartite.
//!
//! The edge-list reader accepts the same plain-text format as
//! [`crate::io`] (KONECT-style comments, sparse or 1-based ids, extra
//! columns tolerated) and applies the same [`ReadLimits`] hardening:
//! exceeding a limit is a typed [`GraphError::TooLarge`], never a
//! silent truncation or a hostile-input-sized allocation. The only
//! format difference is that both endpoints of a row share one vertex
//! id space.
//!
//! Self-loops are discarded at construction: the graphs are simple, and
//! a looped vertex could never join either (independent) side of an
//! induced biclique anyway.

use crate::io::ReadLimits;
use crate::GraphError;
use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

/// An immutable simple undirected graph in CSR form.
///
/// Vertices are dense `u32` ids `0..num_vertices()`; neighbor lists are
/// strictly increasing; duplicate edges and self-loops are merged away
/// at construction.
#[derive(Clone, PartialEq, Eq)]
pub struct GeneralGraph {
    offsets: Vec<usize>,
    adj: Vec<u32>,
}

impl GeneralGraph {
    /// Builds a graph on `n` vertices from an undirected edge list.
    /// Edge direction is irrelevant; duplicates (in either orientation)
    /// are merged and self-loops dropped.
    ///
    /// ```
    /// use bigraph::general::GeneralGraph;
    /// let g = GeneralGraph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3)]).unwrap();
    /// assert_eq!(g.num_edges(), 2); // (0,1) deduped, (2,2) dropped
    /// assert_eq!(g.nbr(1), &[0, 3]);
    /// ```
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut half: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            for x in [a, b] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange {
                        side: crate::Side::U,
                        vertex: x,
                        len: n,
                    });
                }
            }
            if a == b {
                continue;
            }
            half.push((a, b));
            half.push((b, a));
        }
        half.sort_unstable();
        half.dedup();
        let mut offsets = vec![0usize; n as usize + 1];
        for &(a, _) in &half {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n as usize {
            offsets[i + 1] += offsets[i];
        }
        let adj: Vec<u32> = half.iter().map(|&(_, b)| b).collect();
        Ok(GeneralGraph { offsets, adj })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of (distinct, undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Sorted neighbors of vertex `v`.
    #[inline]
    pub fn nbr(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn deg(&self, v: u32) -> usize {
        self.nbr(v).len()
    }

    /// `true` iff edge `{a, b}` exists (binary search on the shorter
    /// neighbor list).
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        if self.deg(a) <= self.deg(b) {
            self.nbr(a).binary_search(&b).is_ok()
        } else {
            self.nbr(b).binary_search(&a).is_ok()
        }
    }

    /// All edges as `(a, b)` pairs with `a < b`, ordered by `a` then `b`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |a| self.nbr(a).iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// FNV-1a fingerprint over the vertex count and adjacency structure.
    /// Two structurally identical graphs hash equal; used to pin
    /// checkpoints and service cache entries to their graph.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_vertices() as u64);
        for v in 0..self.num_vertices() {
            let nbrs = self.nbr(v);
            mix(nbrs.len() as u64);
            for &w in nbrs {
                mix(w as u64);
            }
        }
        h
    }

    /// Views a bipartite graph as a general graph: left vertex `u`
    /// keeps id `u`, right vertex `v` becomes `num_u() + v`. Useful for
    /// routing bipartite inputs through the general-graph pipeline.
    pub fn from_bipartite(g: &crate::BipartiteGraph) -> GeneralGraph {
        let nu = g.num_u();
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u, nu + v)).collect();
        GeneralGraph::from_edges(nu + g.num_v(), &edges)
            .expect("bipartite endpoints are in range by construction")
    }
}

impl std::fmt::Debug for GeneralGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GeneralGraph {{ |V|: {}, |E|: {} }}", self.num_vertices(), self.num_edges())
    }
}

/// Reads a general-graph edge list from any buffered reader under the
/// default [`ReadLimits`]. Both endpoints share one id space; ids are
/// compacted to dense 0-based ids preserving numeric order.
pub fn read_general_edge_list<R: BufRead>(reader: R) -> Result<GeneralGraph, GraphError> {
    read_general_edge_list_with_limits(reader, ReadLimits::default())
}

/// Reads a general-graph edge list with caller-chosen size limits.
/// Exceeding a limit is always a typed error — never a silent
/// truncation of the input. The format and hardening mirror
/// [`crate::io::read_edge_list_with_limits`] exactly.
pub fn read_general_edge_list_with_limits<R: BufRead>(
    mut reader: R,
    limits: ReadLimits,
) -> Result<GeneralGraph, GraphError> {
    let mut raw: Vec<(u64, u64)> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut idx = 0usize;
    loop {
        idx += 1;
        buf.clear();
        // Read at most one byte past the line cap: enough to tell "fits
        // exactly" from "too long" without buffering an unbounded line.
        let n = (&mut reader).take(limits.max_line_bytes as u64 + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        if buf.len() > limits.max_line_bytes {
            return Err(GraphError::TooLarge {
                what: "line bytes",
                limit: limits.max_line_bytes as u64,
            });
        }
        let line = std::str::from_utf8(&buf)
            .map_err(|e| GraphError::Parse { line: idx, msg: format!("invalid UTF-8: {e}") })?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx,
                msg: format!("missing {what} endpoint"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: idx, msg: format!("{what}: {e}") })
        };
        let a = parse(it.next(), "first")?;
        let b = parse(it.next(), "second")?;
        // Extra columns (weights, timestamps) are tolerated and ignored.
        if raw.len() as u64 >= limits.max_edges {
            return Err(GraphError::TooLarge { what: "edges", limit: limits.max_edges });
        }
        raw.push((a, b));
    }
    compact(&raw)
}

/// Compacts sparse/1-based ids (one shared id space) to dense 0-based.
fn compact(raw: &[(u64, u64)]) -> Result<GeneralGraph, GraphError> {
    let mut ids: Vec<u64> = Vec::with_capacity(raw.len() * 2);
    for &(a, b) in raw {
        ids.push(a);
        ids.push(b);
    }
    ids.sort_unstable();
    ids.dedup();
    // Dense ids are u32; more distinct raw ids than u32 can address
    // cannot be represented, only mis-truncated — reject it.
    if ids.len() > u32::MAX as usize {
        return Err(GraphError::TooLarge { what: "distinct ids", limit: u32::MAX as u64 });
    }
    let id = |x: u64| ids.binary_search(&x).expect("present by construction") as u32;
    let edges: Vec<(u32, u32)> = raw.iter().map(|&(a, b)| (id(a), id(b))).collect();
    GeneralGraph::from_edges(ids.len() as u32, &edges)
}

/// Reads a general-graph edge list from a file path.
pub fn read_general_edge_list_path<P: AsRef<Path>>(path: P) -> Result<GeneralGraph, GraphError> {
    read_general_edge_list_path_with_limits(path, ReadLimits::default())
}

/// Reads a general-graph edge list from a file path with caller-chosen
/// size limits — the entry point for loaders that treat the path as
/// untrusted input (the query service's `LOAD_GENERAL` verb reads
/// server-side files this way).
pub fn read_general_edge_list_path_with_limits<P: AsRef<Path>>(
    path: P,
    limits: ReadLimits,
) -> Result<GeneralGraph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_general_edge_list_with_limits(std::io::BufReader::new(f), limits)
}

/// Writes a graph as a plain 0-based edge list (each edge once, `a < b`).
pub fn write_general_edge_list<W: Write>(g: &GeneralGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% general edge list: |V|={} |E|={}", g.num_vertices(), g.num_edges())?;
    for (a, b) in g.edges() {
        writeln!(w, "{a} {b}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_general_edge_list_path<P: AsRef<Path>>(
    g: &GeneralGraph,
    path: P,
) -> Result<(), GraphError> {
    write_general_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.nbr(1), &[0, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn duplicates_and_loops_merged() {
        let g = GeneralGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.deg(2), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = GeneralGraph::from_edges(2, &[(0, 2)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 2, len: 2, .. }));
    }

    #[test]
    fn reader_matches_bipartite_reader_hardening() {
        let text = "% comment\n# more\n\n1 10 5.0\n2 10\n1 11\n";
        let g = read_general_edge_list(text.as_bytes()).unwrap();
        // ids {1, 2, 10, 11} -> {0, 1, 2, 3}
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.nbr(0), &[2, 3]);

        let limits = ReadLimits { max_line_bytes: 8, ..ReadLimits::default() };
        let long = format!("% {}\n1 2\n", "x".repeat(64));
        match read_general_edge_list_with_limits(long.as_bytes(), limits).unwrap_err() {
            GraphError::TooLarge { what, limit } => {
                assert_eq!(what, "line bytes");
                assert_eq!(limit, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }

        let tight = ReadLimits { max_edges: 2, ..ReadLimits::default() };
        match read_general_edge_list_with_limits("1 2\n2 3\n3 4\n".as_bytes(), tight).unwrap_err() {
            GraphError::TooLarge { what, limit } => {
                assert_eq!(what, "edges");
                assert_eq!(limit, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }

        match read_general_edge_list("1 2\nx 3\n".as_bytes()).unwrap_err() {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        match read_general_edge_list("7\n".as_bytes()).unwrap_err() {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 1);
                assert!(msg.contains("second"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let g = GeneralGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_general_edge_list(&g, &mut buf).unwrap();
        let g2 = read_general_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = GeneralGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let b = GeneralGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let c = GeneralGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn from_bipartite_offsets_right_side() {
        let bg = crate::BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1), (0, 1)]).unwrap();
        let g = GeneralGraph::from_bipartite(&bg);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 2)); // u0 - v0
        assert!(g.has_edge(1, 3)); // u1 - v1
        assert!(g.has_edge(0, 3)); // u0 - v1
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = read_general_edge_list("% nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
