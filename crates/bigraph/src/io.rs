//! Plain-text edge-list readers and writers.
//!
//! The accepted format matches what the public MBE benchmark datasets
//! (KONECT, SNAP) reduce to after the usual preprocessing:
//!
//! ```text
//! % comment lines start with '%' or '#'
//! <u> <v>
//! <u> <v>
//! ...
//! ```
//!
//! Ids may be 0- or 1-based and need not be dense: the loader compacts
//! each side to dense ids (preserving numeric order) and merges duplicate
//! edges, mirroring the "only retain one unique edge" rule the papers
//! apply to multi-edge datasets.

use crate::{BipartiteGraph, GraphBuilder, GraphError};
use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Size limits applied while reading an edge list from untrusted input.
///
/// Real benchmark files fit comfortably inside the defaults; the limits
/// exist so that a hostile or corrupted file is rejected with a typed
/// [`GraphError::TooLarge`] instead of exhausting memory (a single
/// newline-free multi-gigabyte "line", or more edge rows than the
/// compacted representation can address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLimits {
    /// Maximum number of edge rows accepted (counted before duplicate
    /// merging). Defaults to 2^31.
    pub max_edges: u64,
    /// Maximum bytes in a single input line, delimiter included.
    /// Defaults to 64 KiB.
    pub max_line_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        ReadLimits { max_edges: 1 << 31, max_line_bytes: 1 << 16 }
    }
}

/// Reads an edge list from any buffered reader under the default
/// [`ReadLimits`]. See the module docs for the format. Returns the
/// compacted graph.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<BipartiteGraph, GraphError> {
    read_edge_list_with_limits(reader, ReadLimits::default())
}

/// Reads an edge list with caller-chosen size limits. Exceeding a limit
/// is always a typed error — never a silent truncation of the input.
pub fn read_edge_list_with_limits<R: BufRead>(
    mut reader: R,
    limits: ReadLimits,
) -> Result<BipartiteGraph, GraphError> {
    let mut raw: Vec<(u64, u64)> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut idx = 0usize;
    loop {
        idx += 1;
        buf.clear();
        // Read at most one byte past the line cap: enough to tell "fits
        // exactly" from "too long" without buffering an unbounded line.
        let n = (&mut reader).take(limits.max_line_bytes as u64 + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        if buf.len() > limits.max_line_bytes {
            return Err(GraphError::TooLarge {
                what: "line bytes",
                limit: limits.max_line_bytes as u64,
            });
        }
        let line = std::str::from_utf8(&buf)
            .map_err(|e| GraphError::Parse { line: idx, msg: format!("invalid UTF-8: {e}") })?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx,
                msg: format!("missing {what} endpoint"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: idx, msg: format!("{what}: {e}") })
        };
        let u = parse(it.next(), "left")?;
        let v = parse(it.next(), "right")?;
        // Extra columns (weights, timestamps) are tolerated and ignored,
        // as in the KONECT "out." files.
        if raw.len() as u64 >= limits.max_edges {
            return Err(GraphError::TooLarge { what: "edges", limit: limits.max_edges });
        }
        raw.push((u, v));
    }
    compact(&raw)
}

/// Compacts sparse/1-based ids to dense 0-based ids per side.
fn compact(raw: &[(u64, u64)]) -> Result<BipartiteGraph, GraphError> {
    let mut us: Vec<u64> = raw.iter().map(|&(u, _)| u).collect();
    let mut vs: Vec<u64> = raw.iter().map(|&(_, v)| v).collect();
    us.sort_unstable();
    us.dedup();
    vs.sort_unstable();
    vs.dedup();
    // Dense ids are u32; a side with more distinct raw ids than u32 can
    // address cannot be represented, only mis-truncated — reject it.
    if us.len() > u32::MAX as usize {
        return Err(GraphError::TooLarge { what: "distinct left ids", limit: u32::MAX as u64 });
    }
    if vs.len() > u32::MAX as usize {
        return Err(GraphError::TooLarge { what: "distinct right ids", limit: u32::MAX as u64 });
    }
    let uid = |x: u64| us.binary_search(&x).expect("present by construction") as u32;
    let vid = |x: u64| vs.binary_search(&x).expect("present by construction") as u32;
    let mut b = GraphBuilder::with_capacity(us.len() as u32, vs.len() as u32, raw.len());
    for &(u, v) in raw {
        b.add_edge(uid(u), vid(v)).expect("dense ids are in range");
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph, GraphError> {
    read_edge_list_path_with_limits(path, ReadLimits::default())
}

/// Reads an edge list from a file path with caller-chosen size limits —
/// the entry point for loaders that treat the path as untrusted input
/// (the query service's `LOAD` verb reads server-side files this way).
pub fn read_edge_list_path_with_limits<P: AsRef<Path>>(
    path: P,
    limits: ReadLimits,
) -> Result<BipartiteGraph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list_with_limits(std::io::BufReader::new(f), limits)
}

/// Writes a graph as a plain 0-based edge list.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "% bipartite edge list: |U|={} |V|={} |E|={}",
        g.num_u(),
        g.num_v(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &BipartiteGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_extra_columns() {
        let text = "% a KONECT-ish header\n# another comment\n\n1 10 5.0 1234567\n2 10\n1 11\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_u(), 2);
        assert_eq!(g.num_v(), 2);
        assert_eq!(g.num_edges(), 3);
        // id 1 -> 0, id 2 -> 1; id 10 -> 0, id 11 -> 1.
        assert_eq!(g.nbr_u(0), &[0, 1]);
        assert_eq!(g.nbr_u(1), &[0]);
    }

    #[test]
    fn sparse_ids_compacted_in_numeric_order() {
        let text = "100 7\n5 7\n100 900\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_u(), 2); // {5, 100} -> {0, 1}
        assert_eq!(g.num_v(), 2); // {7, 900} -> {0, 1}
        assert_eq!(g.nbr_u(1), &[0, 1]); // old 100
        assert_eq!(g.nbr_u(0), &[0]); // old 5
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = read_edge_list("1 1\n1 1\n1 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("1 2\nxyz 3\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("7\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 1);
                assert!(msg.contains("right"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let g = BipartiteGraph::from_edges(4, 3, &[(0, 0), (1, 2), (3, 1), (3, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // The loader compacts away the isolated vertex u2, so compare edges
        // through degree multisets.
        let mut d1: Vec<usize> = g.edges().map(|(u, _)| g.deg_u(u)).collect();
        let mut d2: Vec<usize> = g2.edges().map(|(u, _)| g2.deg_u(u)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn path_loader_applies_limits() {
        let dir = std::env::temp_dir().join(format!("bigraph-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("limits.txt");
        std::fs::write(&path, "1 1\n1 2\n2 1\n").unwrap();

        let g = read_edge_list_path_with_limits(&path, ReadLimits::default()).unwrap();
        assert_eq!(g.num_edges(), 3);

        let tight = ReadLimits { max_edges: 2, ..ReadLimits::default() };
        match read_edge_list_path_with_limits(&path, tight).unwrap_err() {
            GraphError::TooLarge { what, limit } => {
                assert_eq!(what, "edges");
                assert_eq!(limit, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_line_is_rejected_not_buffered() {
        let limits = ReadLimits { max_line_bytes: 16, ..ReadLimits::default() };
        // Even a comment line past the cap is rejected: it would otherwise
        // still be buffered in full.
        let text = format!("% {}\n1 2\n", "x".repeat(64));
        match read_edge_list_with_limits(text.as_bytes(), limits).unwrap_err() {
            GraphError::TooLarge { what, limit } => {
                assert_eq!(what, "line bytes");
                assert_eq!(limit, 16);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Lines inside the cap still parse, with or without a final newline.
        let g = read_edge_list_with_limits("1 2\n3 4".as_bytes(), limits).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_cap_is_a_typed_error_not_truncation() {
        let limits = ReadLimits { max_edges: 2, ..ReadLimits::default() };
        match read_edge_list_with_limits("1 1\n2 2\n3 3\n".as_bytes(), limits).unwrap_err() {
            GraphError::TooLarge { what, limit } => {
                assert_eq!(what, "edges");
                assert_eq!(limit, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Exactly at the cap is fine; duplicates count as rows read.
        let g = read_edge_list_with_limits("1 1\n2 2\n".as_bytes(), limits).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn invalid_utf8_is_a_parse_error_with_line_number() {
        let bytes: &[u8] = &[b'1', b' ', b'2', b'\n', 0xff, 0xfe, b' ', b'3', b'\n'];
        match read_edge_list(bytes).unwrap_err() {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("UTF-8"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("% nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_u(), 0);
        assert_eq!(g.num_v(), 0);
    }
}
