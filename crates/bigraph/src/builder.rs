//! Incremental construction of [`BipartiteGraph`]s.

use crate::{BipartiteGraph, GraphError, Side};

/// Accumulates edges and produces a deduplicated, sorted CSR graph.
///
/// Building is `O(|E| log |E|)` (a sort plus two counting passes); no
/// intermediate per-vertex `Vec`s are allocated.
pub struct GraphBuilder {
    nu: u32,
    nv: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph with `nu` left and `nv` right vertices.
    pub fn new(nu: u32, nv: u32) -> Self {
        GraphBuilder { nu, nv, edges: Vec::new() }
    }

    /// Pre-reserves capacity for `n` edges.
    pub fn with_capacity(nu: u32, nv: u32, n: usize) -> Self {
        GraphBuilder { nu, nv, edges: Vec::with_capacity(n) }
    }

    /// Number of edges added so far (duplicates included).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff no edge has been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds edge `(u, v)`; duplicates are tolerated and merged at build.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        if u >= self.nu {
            return Err(GraphError::VertexOutOfRange { side: Side::U, vertex: u, len: self.nu });
        }
        if v >= self.nv {
            return Err(GraphError::VertexOutOfRange { side: Side::V, vertex: v, len: self.nv });
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Finalizes into an immutable CSR graph.
    pub fn build(mut self) -> BipartiteGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let ne = self.edges.len();
        let nu = self.nu as usize;
        let nv = self.nv as usize;

        // U side: edges are already grouped by u and sorted by v.
        let mut u_offsets = vec![0usize; nu + 1];
        for &(u, _) in &self.edges {
            u_offsets[u as usize + 1] += 1;
        }
        for i in 0..nu {
            u_offsets[i + 1] += u_offsets[i];
        }
        let u_adj: Vec<u32> = self.edges.iter().map(|&(_, v)| v).collect();

        // V side: counting sort by v; u's arrive in increasing order per v
        // because the edge list is sorted by (u, v).
        let mut v_offsets = vec![0usize; nv + 1];
        for &(_, v) in &self.edges {
            v_offsets[v as usize + 1] += 1;
        }
        for i in 0..nv {
            v_offsets[i + 1] += v_offsets[i];
        }
        let mut cursor = v_offsets.clone();
        let mut v_adj = vec![0u32; ne];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            v_adj[*c] = u;
            *c += 1;
        }

        BipartiteGraph::from_csr(u_offsets, u_adj, v_offsets, v_adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn build_matches_from_edges() {
        let mut b = GraphBuilder::with_capacity(4, 3, 5);
        for (u, v) in [(3, 2), (0, 0), (3, 2), (1, 1), (0, 2)] {
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(b.len(), 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.nbr_u(0), &[0, 2]);
        assert_eq!(g.nbr_v(2), &[0, 3]);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new(3, 3);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_u(), 3);
    }

    proptest! {
        /// Both CSR sides describe the same edge set, regardless of input
        /// order or duplication.
        #[test]
        fn csr_sides_agree(
            edges in proptest::collection::vec((0u32..20, 0u32..15), 0..200)
        ) {
            let g = crate::BipartiteGraph::from_edges(20, 15, &edges).unwrap();
            let mut from_u: Vec<(u32, u32)> = g.edges().collect();
            let mut from_v: Vec<(u32, u32)> = (0..g.num_v())
                .flat_map(|v| g.nbr_v(v).iter().map(move |&u| (u, v)).collect::<Vec<_>>())
                .collect();
            from_u.sort_unstable();
            from_v.sort_unstable();
            prop_assert_eq!(&from_u, &from_v);

            let mut want: Vec<(u32, u32)> = edges.clone();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(from_u, want);
        }
    }
}
