//! Bipartite Chung–Lu generator.
//!
//! Each side gets a target (expected) degree sequence; edges are sampled
//! by drawing endpoints proportionally to their weights until the target
//! number of *distinct* edges is reached. The result reproduces the
//! power-law degree skew of the real benchmark graphs — the property that
//! governs both enumeration-tree shape and load imbalance in MBE.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::distributions::Distribution;
use rand::Rng;

use crate::WeightedIndex;

/// Parameters of a bipartite Chung–Lu instance.
#[derive(Debug, Clone)]
pub struct ChungLuConfig {
    /// Left-side vertex count.
    pub nu: u32,
    /// Right-side vertex count.
    pub nv: u32,
    /// Target distinct edge count.
    pub edges: usize,
    /// Power-law exponent of the `U` degree sequence.
    pub gamma_u: f64,
    /// Power-law exponent of the `V` degree sequence.
    pub gamma_v: f64,
    /// Degree cap on the `U` side.
    pub max_deg_u: usize,
    /// Degree cap on the `V` side.
    pub max_deg_v: usize,
}

impl ChungLuConfig {
    /// A config with literature-typical exponents (2.1) and caps at 10%
    /// of the opposite side.
    pub fn new(nu: u32, nv: u32, edges: usize) -> Self {
        ChungLuConfig {
            nu,
            nv,
            edges,
            gamma_u: 2.1,
            gamma_v: 2.1,
            max_deg_u: (nv as usize / 10).max(4),
            max_deg_v: (nu as usize / 10).max(4),
        }
    }
}

/// Generates a graph from `cfg`, deterministically for a given `rng`
/// state.
///
/// The sampler draws endpoint pairs until `cfg.edges` distinct edges are
/// collected (or a retry cap is hit, for configs denser than the
/// universe allows — the result then simply has fewer edges).
pub fn generate<R: Rng>(rng: &mut R, cfg: &ChungLuConfig) -> BipartiteGraph {
    assert!(cfg.nu > 0 && cfg.nv > 0, "both sides must be non-empty");
    let max_possible = cfg.nu as usize * cfg.nv as usize;
    let target = cfg.edges.min(max_possible);

    let wu = crate::power_law_degrees(rng, cfg.nu as usize, cfg.gamma_u, cfg.max_deg_u, target);
    let wv = crate::power_law_degrees(rng, cfg.nv as usize, cfg.gamma_v, cfg.max_deg_v, target);
    let du = WeightedIndex::new(&wu);
    let dv = WeightedIndex::new(&wv);

    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut builder = GraphBuilder::with_capacity(cfg.nu, cfg.nv, target);
    let mut attempts: usize = 0;
    let attempt_cap = target.saturating_mul(50).max(1000);
    while seen.len() < target && attempts < attempt_cap {
        attempts += 1;
        let u = du.sample(rng) as u32;
        let v = dv.sample(rng) as u32;
        if seen.insert(((u as u64) << 32) | v as u64) {
            builder.add_edge(u, v).expect("sampled ids are in range");
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hits_edge_target() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = ChungLuConfig::new(500, 200, 3000);
        let g = generate(&mut rng, &cfg);
        assert_eq!(g.num_u(), 500);
        assert_eq!(g.num_v(), 200);
        assert!(g.num_edges() >= 2900, "got {}", g.num_edges());
        assert!(g.num_edges() <= 3000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChungLuConfig::new(100, 80, 500);
        let a = generate(&mut StdRng::seed_from_u64(5), &cfg);
        let b = generate(&mut StdRng::seed_from_u64(5), &cfg);
        let c = generate(&mut StdRng::seed_from_u64(6), &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_skew_present() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = ChungLuConfig::new(2000, 800, 10_000);
        let g = generate(&mut rng, &cfg);
        let mut degs: Vec<usize> = (0..g.num_v()).map(|v| g.deg_v(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = degs[..8].iter().sum();
        // Top 1% of V vertices should hold well above the uniform share.
        assert!(top * 100 / g.num_edges() >= 3, "top share {top}/{}", g.num_edges());
    }

    #[test]
    fn overfull_target_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ChungLuConfig::new(3, 3, 100);
        let g = generate(&mut rng, &cfg);
        assert!(g.num_edges() <= 9);
        assert!(g.num_edges() >= 5, "should get most of the universe");
    }
}
