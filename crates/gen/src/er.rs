//! Bipartite Erdős–Rényi controls.
//!
//! `G(nu, nv, p)` includes each of the `nu · nv` possible edges
//! independently with probability `p`; `G(nu, nv, m)` picks exactly `m`
//! distinct edges uniformly. Unskewed controls for the experiments that
//! isolate the effect of degree skew.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// `G(nu, nv, p)`: each edge present independently with probability `p`.
pub fn gnp<R: Rng>(rng: &mut R, nu: u32, nv: u32, p: f64) -> BipartiteGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(nu, nv);
    // Geometric skipping: jump straight to the next present edge. This is
    // O(edges) rather than O(nu · nv) for small p.
    if p > 0.0 {
        let total = nu as u64 * nv as u64;
        let mut idx: u64 = 0;
        let log1mp = (1.0 - p).ln();
        loop {
            if p >= 1.0 {
                if idx >= total {
                    break;
                }
            } else {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (u.ln() / log1mp).floor() as u64;
                idx = idx.saturating_add(skip);
                if idx >= total {
                    break;
                }
            }
            let eu = (idx / nv as u64) as u32;
            let ev = (idx % nv as u64) as u32;
            b.add_edge(eu, ev).expect("in range");
            idx += 1;
            if idx >= total {
                break;
            }
        }
    }
    b.build()
}

/// `G(nu, nv, m)`: exactly `min(m, nu·nv)` distinct edges, uniform.
pub fn gnm<R: Rng>(rng: &mut R, nu: u32, nv: u32, m: usize) -> BipartiteGraph {
    let total = nu as usize * nv as usize;
    let m = m.min(total);
    let mut b = GraphBuilder::with_capacity(nu, nv, m);
    if total == 0 || m == 0 {
        return b.build();
    }
    if m * 3 >= total {
        // Dense: shuffle the full universe (small by assumption).
        let mut all: Vec<usize> = (0..total).collect();
        all.shuffle(rng);
        for &idx in &all[..m] {
            b.add_edge((idx / nv as usize) as u32, (idx % nv as usize) as u32).expect("in range");
        }
    } else {
        // Sparse: rejection sampling.
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let idx = rng.gen_range(0..total);
            if seen.insert(idx) {
                b.add_edge((idx / nv as usize) as u32, (idx % nv as usize) as u32)
                    .expect("in range");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(&mut rng, 30, 20, 100);
        assert_eq!(g.num_edges(), 100);
        let g = gnm(&mut rng, 4, 4, 100);
        assert_eq!(g.num_edges(), 16, "capped at the universe");
        let g = gnm(&mut rng, 4, 4, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_expected_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(&mut rng, 100, 100, 0.1);
        let got = g.num_edges() as f64;
        assert!((700.0..1300.0).contains(&got), "got {got}");
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(&mut rng, 10, 10, 0.0).num_edges(), 0);
        assert_eq!(gnp(&mut rng, 10, 10, 1.0).num_edges(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gnm(&mut StdRng::seed_from_u64(9), 20, 20, 50);
        let b = gnm(&mut StdRng::seed_from_u64(9), 20, 20, 50);
        assert_eq!(a, b);
    }
}
