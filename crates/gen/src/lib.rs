//! Synthetic bipartite workloads for the experiment suite.
//!
//! The MBE literature evaluates on 13 KONECT/SNAP datasets. Those cannot
//! be downloaded in this offline environment, so — per the substitution
//! rule in DESIGN.md §5 — this crate generates *calibrated analogues*:
//!
//! * [`chung_lu`] — a bipartite Chung–Lu model driven by power-law degree
//!   sequences, reproducing the degree skew that drives MBE difficulty;
//! * [`planted`] — complete `a × b` blocks overlaid on a background
//!   graph, controlling biclique density and nesting;
//! * [`er`] — bipartite Erdős–Rényi controls;
//! * [`presets`] — one entry per benchmark dataset, carrying the
//!   published `(|U|, |V|, |E|)` statistics and a default *scale* at
//!   which the generated analogue enumerates in seconds on a laptop.
//!
//! All generators are deterministic for a given seed.

#![forbid(unsafe_code)]

pub mod chung_lu;
pub mod er;
pub mod near_bipartite;
pub mod planted;
pub mod preferential;
pub mod presets;

pub use near_bipartite::{
    gnp_general, near_bipartite, oct_presets, NearBipartiteConfig, NearBipartitePlan, OctPreset,
};
pub use presets::{all_presets, Preset};

use rand::distributions::Distribution;
use rand::Rng;

/// Samples `n` degrees from a discrete power law `P(d) ∝ d^(-gamma)`
/// truncated to `[1, max_d]`, then rescales them so their sum is close to
/// `target_sum` (the desired edge count).
pub fn power_law_degrees<R: Rng>(
    rng: &mut R,
    n: usize,
    gamma: f64,
    max_d: usize,
    target_sum: usize,
) -> Vec<f64> {
    assert!(n > 0, "need at least one vertex");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let max_d = max_d.max(1) as f64;
    // Inverse-CDF sampling of the continuous Pareto-like density on
    // [1, max_d]: F^-1(u) = (1 - u (1 - max_d^(1-γ)))^(1/(1-γ)).
    let a = 1.0 - gamma;
    let tail = max_d.powf(a);
    let mut degs: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            (1.0 - u * (1.0 - tail)).powf(1.0 / a)
        })
        .collect();
    let sum: f64 = degs.iter().sum();
    let scale = target_sum as f64 / sum;
    for d in &mut degs {
        *d = (*d * scale).max(f64::MIN_POSITIVE);
    }
    degs
}

/// A cumulative-weight sampler over `0..weights.len()`.
///
/// `O(log n)` per sample via binary search on the prefix sums; good
/// enough for the edge counts used here.
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler. Weights must be positive.
    pub fn new(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w > 0.0, "weights must be positive");
            acc += w;
            cumulative.push(acc);
        }
        WeightedIndex { cumulative }
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen::<f64>() * self.total();
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_sums_to_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let degs = power_law_degrees(&mut rng, 1000, 2.1, 200, 5000);
        let sum: f64 = degs.iter().sum();
        assert!((sum - 5000.0).abs() < 1.0);
        assert!(degs.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn power_law_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut degs = power_law_degrees(&mut rng, 10_000, 2.1, 1000, 100_000);
        degs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top 1% of vertices should carry far more than 1% of the weight.
        let top: f64 = degs[..100].iter().sum();
        let total: f64 = degs.iter().sum();
        assert!(top / total > 0.05, "top share {}", top / total);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let wi = WeightedIndex::new(&[1.0, 0.0001, 99.0]);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert!(counts[2] > 9000);
        assert!(counts[0] > 20);
        assert!(counts[1] < 100);
    }

    #[test]
    fn weighted_index_single_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let wi = WeightedIndex::new(&[42.0]);
        assert_eq!(wi.sample(&mut rng), 0);
    }
}
