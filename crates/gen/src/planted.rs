//! Planted-biclique overlays.
//!
//! Real bipartite graphs owe their enormous maximal-biclique counts to
//! dense, overlapping near-complete blocks (communities, spam rings,
//! co-expression modules). This generator overlays complete `a × b`
//! blocks — with controlled overlap — on a background graph, so that the
//! experiment suite can dial biclique density independently of degree
//! skew, and the fraud-detection example has actual rings to find.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// A planted block specification.
#[derive(Debug, Clone, Copy)]
pub struct BlockSpec {
    /// Vertices drawn from `U`.
    pub a: usize,
    /// Vertices drawn from `V`.
    pub b: usize,
    /// Number of blocks with this shape.
    pub count: usize,
}

/// Overlay configuration.
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Block shapes to plant.
    pub blocks: Vec<BlockSpec>,
    /// Probability that a block member is drawn from the pool of vertices
    /// already used by earlier blocks (creates overlapping blocks and
    /// therefore combinatorial biclique interactions). 0 = disjoint-ish.
    pub overlap: f64,
}

/// The planted blocks' memberships, returned for ground-truth checks.
#[derive(Debug, Clone)]
pub struct PlantedBlock {
    /// `U`-side members, sorted.
    pub us: Vec<u32>,
    /// `V`-side members, sorted.
    pub vs: Vec<u32>,
}

/// Plants `cfg.blocks` on top of `base`, returning the union graph and
/// the planted memberships.
pub fn plant<R: Rng>(
    rng: &mut R,
    base: &BipartiteGraph,
    cfg: &PlantedConfig,
) -> (BipartiteGraph, Vec<PlantedBlock>) {
    let nu = base.num_u();
    let nv = base.num_v();
    let mut builder = GraphBuilder::with_capacity(nu, nv, base.num_edges() * 2);
    for (u, v) in base.edges() {
        builder.add_edge(u, v).expect("base edges are in range");
    }

    let mut used_u: Vec<u32> = Vec::new();
    let mut used_v: Vec<u32> = Vec::new();
    let mut blocks = Vec::new();
    for spec in &cfg.blocks {
        for _ in 0..spec.count {
            let us = pick(rng, nu, spec.a, &used_u, cfg.overlap);
            let vs = pick(rng, nv, spec.b, &used_v, cfg.overlap);
            for &u in &us {
                for &v in &vs {
                    builder.add_edge(u, v).expect("in range");
                }
            }
            used_u.extend_from_slice(&us);
            used_v.extend_from_slice(&vs);
            used_u.sort_unstable();
            used_u.dedup();
            used_v.sort_unstable();
            used_v.dedup();
            blocks.push(PlantedBlock { us, vs });
        }
    }
    (builder.build(), blocks)
}

/// Picks `k` distinct vertices from `0..n`, preferring the `pool` with
/// probability `overlap` per slot. Sorted output.
fn pick<R: Rng>(rng: &mut R, n: u32, k: usize, pool: &[u32], overlap: f64) -> Vec<u32> {
    let k = k.min(n as usize);
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    let mut tries = 0;
    while chosen.len() < k && tries < k * 40 {
        tries += 1;
        let cand = if !pool.is_empty() && rng.gen::<f64>() < overlap {
            *pool.choose(rng).expect("non-empty pool")
        } else {
            rng.gen_range(0..n)
        };
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
    }
    // Fallback fill for tiny universes: walk the id space.
    let mut next = 0u32;
    while chosen.len() < k {
        if !chosen.contains(&next) {
            chosen.push(next);
        }
        next += 1;
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empty(nu: u32, nv: u32) -> BipartiteGraph {
        BipartiteGraph::from_edges(nu, nv, &[]).unwrap()
    }

    #[test]
    fn blocks_are_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = PlantedConfig { blocks: vec![BlockSpec { a: 3, b: 4, count: 2 }], overlap: 0.0 };
        let (g, blocks) = plant(&mut rng, &empty(50, 50), &cfg);
        assert_eq!(blocks.len(), 2);
        for blk in &blocks {
            assert_eq!(blk.us.len(), 3);
            assert_eq!(blk.vs.len(), 4);
            for &u in &blk.us {
                for &v in &blk.vs {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn overlap_reuses_vertices() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = PlantedConfig { blocks: vec![BlockSpec { a: 5, b: 5, count: 8 }], overlap: 0.9 };
        let (_, blocks) = plant(&mut rng, &empty(1000, 1000), &cfg);
        let mut all_u: Vec<u32> = blocks.iter().flat_map(|b| b.us.iter().copied()).collect();
        let total = all_u.len();
        all_u.sort_unstable();
        all_u.dedup();
        assert!(all_u.len() < total, "high overlap must reuse vertices");
    }

    #[test]
    fn preserves_base_edges() {
        let base = BipartiteGraph::from_edges(10, 10, &[(9, 9), (0, 5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PlantedConfig { blocks: vec![BlockSpec { a: 2, b: 2, count: 1 }], overlap: 0.0 };
        let (g, _) = plant(&mut rng, &base, &cfg);
        assert!(g.has_edge(9, 9));
        assert!(g.has_edge(0, 5));
    }

    #[test]
    fn tiny_universe_fallback() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PlantedConfig { blocks: vec![BlockSpec { a: 5, b: 5, count: 1 }], overlap: 0.0 };
        let (g, blocks) = plant(&mut rng, &empty(3, 3), &cfg);
        assert_eq!(blocks[0].us.len(), 3, "capped at the side size");
        assert_eq!(g.num_edges(), 9);
    }
}
