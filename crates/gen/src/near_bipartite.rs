//! Planted near-bipartite general graphs for the OCT driver.
//!
//! The model starts from a bipartite core `X × Y` (Erdős–Rényi with an
//! exact edge count, like [`crate::er::gnm`]) and then plants `k`
//! *transversal* vertices. Each planted vertex is anchored on a random
//! core edge `(x, y)` — connecting to both endpoints closes a triangle,
//! so the vertex genuinely sits on an odd cycle — and then attaches to
//! a few extra random core vertices on both sides. Planted vertices are
//! never adjacent to each other, so deleting the `k` planted vertices
//! always leaves the graph bipartite: the optimal odd cycle transversal
//! has size ≤ `k`, and the heuristic in `oct::decompose` is expected to
//! land at or below that.
//!
//! Also provides [`gnp_general`], a general-graph Erdős–Rényi control
//! used by the differential tests.

use bigraph::general::GeneralGraph;
use rand::Rng;

/// Parameters of the planted near-bipartite model.
#[derive(Debug, Clone)]
pub struct NearBipartiteConfig {
    /// Vertices in the bipartite core's `X` class (ids `0..left`).
    pub left: u32,
    /// Vertices in the `Y` class (ids `left..left + right`).
    pub right: u32,
    /// Exact number of core `X × Y` edges (capped at the universe).
    pub core_edges: usize,
    /// Planted transversal vertices
    /// (ids `left + right..left + right + oct`).
    pub oct: u32,
    /// Extra random core attachments per planted vertex, beyond the two
    /// anchor edges.
    pub extra_degree: u32,
}

impl NearBipartiteConfig {
    /// A config with `extra_degree = 4`.
    pub fn new(left: u32, right: u32, core_edges: usize, oct: u32) -> Self {
        NearBipartiteConfig { left, right, core_edges, oct, extra_degree: 4 }
    }
}

/// Where the generator put everything — the ground truth the tests and
/// the experiment tables compare the heuristic against.
#[derive(Debug, Clone)]
pub struct NearBipartitePlan {
    /// Ids of the planted transversal vertices, sorted.
    pub oct: Vec<u32>,
    /// Ids of the core `X` class, sorted.
    pub left: Vec<u32>,
    /// Ids of the core `Y` class, sorted.
    pub right: Vec<u32>,
}

/// Generates a planted near-bipartite general graph. Deterministic for
/// a given RNG state.
pub fn near_bipartite<R: Rng>(
    rng: &mut R,
    cfg: &NearBipartiteConfig,
) -> (GeneralGraph, NearBipartitePlan) {
    assert!(cfg.left > 0 && cfg.right > 0, "core classes must be non-empty");
    assert!(
        cfg.core_edges > 0 || cfg.oct == 0,
        "planted vertices need at least one core edge to anchor on"
    );
    let n = cfg.left + cfg.right + cfg.oct;
    let y0 = cfg.left; // first Y id
    let s0 = cfg.left + cfg.right; // first planted id
    let universe = cfg.left as usize * cfg.right as usize;
    let m = cfg.core_edges.min(universe).max(if cfg.oct > 0 { 1 } else { 0 });

    // Core edges: rejection-sample exactly m distinct (x, y) pairs.
    let mut core: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while core.len() < m {
        let idx = rng.gen_range(0..universe);
        if seen.insert(idx) {
            let x = (idx / cfg.right as usize) as u32;
            let y = y0 + (idx % cfg.right as usize) as u32;
            core.push((x, y));
        }
    }

    let mut edges = core.clone();
    for i in 0..cfg.oct {
        let s = s0 + i;
        // Anchor on a random core edge: triangle s-x-y.
        let &(ax, ay) = &core[rng.gen_range(0..core.len())];
        edges.push((s, ax));
        edges.push((s, ay));
        // Extra attachments anywhere in the core (duplicates are merged
        // by the graph constructor).
        for _ in 0..cfg.extra_degree {
            let t = rng.gen_range(0..(cfg.left + cfg.right));
            edges.push((s, t));
        }
    }

    let g = GeneralGraph::from_edges(n, &edges).expect("generated ids are in range");
    let plan = NearBipartitePlan {
        oct: (s0..s0 + cfg.oct).collect(),
        left: (0..cfg.left).collect(),
        right: (y0..s0).collect(),
    };
    (g, plan)
}

/// General-graph `G(n, p)`: each of the `n(n-1)/2` possible edges is
/// present independently with probability `p`. Small-n control for the
/// differential tests against the brute-force oracle.
pub fn gnp_general<R: Rng>(rng: &mut R, n: u32, p: f64) -> GeneralGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    GeneralGraph::from_edges(n, &edges).expect("ids in range")
}

/// One planted near-bipartite experiment point, scaling transversal
/// size against a fixed core. Mirrors [`crate::presets::Preset`] but
/// for general graphs; kept separate so the pinned 13-dataset bipartite
/// preset table is untouched.
#[derive(Debug, Clone)]
pub struct OctPreset {
    /// Human-readable name.
    pub name: &'static str,
    /// Short label used by the bench harness (`oc2`, `oc4`, ...).
    pub abbrev: &'static str,
    /// Generator parameters.
    pub config: NearBipartiteConfig,
}

impl OctPreset {
    /// Generates the instance for `seed`.
    pub fn build(&self, seed: u64) -> (GeneralGraph, NearBipartitePlan) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0c7);
        near_bipartite(&mut rng, &self.config)
    }
}

/// The OCT-size sweep used by EXPERIMENTS.md and `bench-snapshot`:
/// the same 60+60 core with 2, 4, 6 and 8 planted transversal
/// vertices.
pub fn oct_presets() -> Vec<OctPreset> {
    let core = |oct| NearBipartiteConfig::new(60, 60, 360, oct);
    vec![
        OctPreset { name: "planted-oct-2", abbrev: "oc2", config: core(2) },
        OctPreset { name: "planted-oct-4", abbrev: "oc4", config: core(4) },
        OctPreset { name: "planted-oct-6", abbrev: "oc6", config: core(6) },
        OctPreset { name: "planted-oct-8", abbrev: "oc8", config: core(8) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_structure_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = NearBipartiteConfig::new(20, 15, 80, 5);
        let (g, plan) = near_bipartite(&mut rng, &cfg);
        assert_eq!(g.num_vertices(), 40);
        assert_eq!(plan.oct, vec![35, 36, 37, 38, 39]);
        // Core is bipartite: no X-X or Y-Y edges.
        for (u, v) in g.edges() {
            let side = |w: u32| {
                if w < 20 {
                    0
                } else if w < 35 {
                    1
                } else {
                    2
                }
            };
            assert!(side(u) != side(v) || side(u) == 2, "edge ({u},{v}) inside a core class");
            assert!(!(side(u) == 2 && side(v) == 2), "planted vertices must not be adjacent");
        }
        // Every planted vertex closes a triangle (its anchor).
        for &s in &plan.oct {
            let nbrs = g.nbr(s);
            let closes = nbrs
                .iter()
                .enumerate()
                .any(|(i, &a)| nbrs[i + 1..].iter().any(|&b| g.has_edge(a, b)));
            assert!(closes, "planted vertex {s} is not on a triangle");
        }
    }

    #[test]
    fn zero_oct_is_bipartite() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, plan) = near_bipartite(&mut rng, &NearBipartiteConfig::new(10, 10, 30, 0));
        assert!(plan.oct.is_empty());
        assert_eq!(g.num_vertices(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = NearBipartiteConfig::new(12, 12, 40, 3);
        let (a, _) = near_bipartite(&mut StdRng::seed_from_u64(7), &cfg);
        let (b, _) = near_bipartite(&mut StdRng::seed_from_u64(7), &cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn gnp_general_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(gnp_general(&mut rng, 8, 0.0).num_edges(), 0);
        assert_eq!(gnp_general(&mut rng, 8, 1.0).num_edges(), 28);
    }

    #[test]
    fn oct_presets_have_unique_abbrevs() {
        let ps = oct_presets();
        let mut ab: Vec<_> = ps.iter().map(|p| p.abbrev).collect();
        ab.sort_unstable();
        ab.dedup();
        assert_eq!(ab.len(), ps.len());
        let (g, plan) = ps[0].build(1);
        assert_eq!(plan.oct.len(), 2);
        assert!(g.num_edges() > 0);
    }
}
