//! Calibrated analogues of the 13 standard MBE benchmark datasets.
//!
//! Each [`Preset`] carries the published statistics of a real dataset
//! (the `|U| |V| |E| B` columns every MBE paper tabulates) and generates
//! a *scaled synthetic analogue*: a Chung–Lu graph with the dataset's
//! mean degrees and skew, overlaid with planted overlapping blocks whose
//! density is tuned to the dataset's biclique richness (`B/|V|`). The
//! scale keeps enumeration in laptop territory while preserving the
//! relative ordering of dataset difficulty — the property the experiment
//! shapes depend on (DESIGN.md §5 records this substitution).

use crate::chung_lu::{self, ChungLuConfig};
use crate::planted::{plant, BlockSpec, PlantedConfig};
use bigraph::BipartiteGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Published statistics of the real dataset (for reporting; the analogue
/// is scaled down from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealStats {
    /// `|U|` of the real dataset.
    pub num_u: u64,
    /// `|V|` of the real dataset.
    pub num_v: u64,
    /// `|E|` of the real dataset.
    pub num_edges: u64,
    /// Published maximal biclique count.
    pub max_bicliques: u64,
}

/// One benchmark-dataset analogue.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Full dataset name.
    pub name: &'static str,
    /// Two-letter abbreviation used in the papers' tables.
    pub abbrev: &'static str,
    /// Published statistics of the real dataset.
    pub real: RealStats,
    /// Default down-scale factor applied to `|U|, |V|, |E|`.
    pub scale: f64,
    /// Extra multiplier on the edge count only (`< 1` thins graphs whose
    /// real mean degree would make even the scaled analogue explode —
    /// TVTropes really does have 19.6 billion maximal bicliques).
    pub edge_fraction: f64,
    /// Power-law exponents for the `U` / `V` degree sequences.
    pub gamma: (f64, f64),
    /// Planted blocks per 1000 generated `V` vertices.
    pub block_density: f64,
    /// Multiplier on planted block dimensions (larger blocks interact
    /// combinatorially and drive the biclique count superlinearly).
    pub block_scale: f64,
    /// Overlap probability between planted blocks.
    pub overlap: f64,
}

impl Preset {
    /// Generates the analogue at the default scale.
    pub fn build(&self, seed: u64) -> BipartiteGraph {
        self.build_scaled(seed, 1.0)
    }

    /// Generates the analogue at `multiplier ×` the default scale (used
    /// by the E5 scalability sweep).
    pub fn build_scaled(&self, seed: u64, multiplier: f64) -> BipartiteGraph {
        let s = self.scale * multiplier;
        let nu = ((self.real.num_u as f64 * s).round() as u32).max(4);
        let nv = ((self.real.num_v as f64 * s).round() as u32).max(4);
        let edges = ((self.real.num_edges as f64 * s * self.edge_fraction).round() as usize).max(8);
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(self.abbrev));

        let mut cfg = ChungLuConfig::new(nu, nv, edges);
        cfg.gamma_u = self.gamma.0;
        cfg.gamma_v = self.gamma.1;
        let base = chung_lu::generate(&mut rng, &cfg);

        let n_blocks = ((nv as f64 / 1000.0) * self.block_density).round() as usize;
        if n_blocks == 0 {
            return base;
        }
        let dim = |d: usize| ((d as f64 * self.block_scale).round() as usize).max(2);
        let planted_cfg = PlantedConfig {
            blocks: vec![
                BlockSpec { a: dim(3), b: dim(5), count: n_blocks / 3 + 1 },
                BlockSpec { a: dim(4), b: dim(4), count: n_blocks / 3 + 1 },
                BlockSpec { a: dim(5), b: dim(7), count: n_blocks / 3 },
            ],
            overlap: self.overlap,
        };
        let (g, _) = plant(&mut rng, &base, &planted_cfg);
        g
    }
}

/// Tiny deterministic string hash so each preset gets its own stream for
/// the same user seed.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// The 13 benchmark-dataset analogues, in ascending published-B order
/// (the order the papers' tables use).
pub fn all_presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "MovieLens",
            abbrev: "Mti",
            real: RealStats {
                num_u: 16_528,
                num_v: 7_601,
                num_edges: 71_154,
                max_bicliques: 140_266,
            },
            scale: 0.10,
            edge_fraction: 0.7,
            gamma: (2.2, 2.0),
            block_density: 5.0,
            block_scale: 1.0,
            overlap: 0.2,
        },
        Preset {
            name: "Amazon",
            abbrev: "WA",
            real: RealStats {
                num_u: 265_934,
                num_v: 264_148,
                num_edges: 925_873,
                max_bicliques: 461_274,
            },
            scale: 0.004,
            edge_fraction: 1.0,
            gamma: (2.3, 2.3),
            block_density: 10.0,
            block_scale: 1.3,
            overlap: 0.2,
        },
        Preset {
            name: "Teams",
            abbrev: "TM",
            real: RealStats {
                num_u: 901_130,
                num_v: 34_461,
                num_edges: 1_366_466,
                max_bicliques: 517_943,
            },
            scale: 0.02,
            edge_fraction: 0.6,
            gamma: (2.6, 2.0),
            block_density: 8.0,
            block_scale: 1.0,
            overlap: 0.25,
        },
        Preset {
            name: "ActorMovies",
            abbrev: "AM",
            real: RealStats {
                num_u: 383_640,
                num_v: 127_823,
                num_edges: 1_470_404,
                max_bicliques: 1_075_444,
            },
            scale: 0.006,
            edge_fraction: 0.8,
            gamma: (2.2, 2.1),
            block_density: 10.0,
            block_scale: 1.0,
            overlap: 0.3,
        },
        Preset {
            name: "Wikipedia",
            abbrev: "WC",
            real: RealStats {
                num_u: 1_853_493,
                num_v: 182_947,
                num_edges: 3_795_796,
                max_bicliques: 1_677_522,
            },
            scale: 0.004,
            edge_fraction: 0.85,
            gamma: (2.4, 1.9),
            block_density: 10.0,
            block_scale: 1.0,
            overlap: 0.3,
        },
        Preset {
            name: "YouTube",
            abbrev: "YG",
            real: RealStats {
                num_u: 94_238,
                num_v: 30_087,
                num_edges: 293_360,
                max_bicliques: 1_826_587,
            },
            scale: 0.025,
            edge_fraction: 1.0,
            gamma: (2.1, 1.9),
            block_density: 14.0,
            block_scale: 1.0,
            overlap: 0.35,
        },
        Preset {
            name: "StackOverflow",
            abbrev: "SO",
            real: RealStats {
                num_u: 545_195,
                num_v: 96_680,
                num_edges: 1_301_942,
                max_bicliques: 3_320_824,
            },
            scale: 0.008,
            edge_fraction: 1.0,
            gamma: (2.0, 1.9),
            block_density: 16.0,
            block_scale: 1.0,
            overlap: 0.35,
        },
        Preset {
            name: "DBLP",
            abbrev: "Pa",
            real: RealStats {
                num_u: 5_624_219,
                num_v: 1_953_085,
                num_edges: 12_282_059,
                max_bicliques: 4_899_032,
            },
            scale: 0.0005,
            edge_fraction: 1.0,
            gamma: (2.4, 2.2),
            block_density: 40.0,
            block_scale: 1.7,
            overlap: 0.55,
        },
        Preset {
            name: "IMDB",
            abbrev: "IM",
            real: RealStats {
                num_u: 896_302,
                num_v: 303_617,
                num_edges: 3_782_463,
                max_bicliques: 5_160_061,
            },
            scale: 0.003,
            edge_fraction: 1.0,
            gamma: (2.1, 2.0),
            block_density: 14.0,
            block_scale: 1.0,
            overlap: 0.35,
        },
        Preset {
            name: "EuAll",
            abbrev: "EE",
            real: RealStats {
                num_u: 225_409,
                num_v: 74_661,
                num_edges: 420_046,
                max_bicliques: 12_306_755,
            },
            scale: 0.012,
            edge_fraction: 1.0,
            gamma: (1.9, 1.8),
            block_density: 60.0,
            block_scale: 1.6,
            overlap: 0.65,
        },
        Preset {
            name: "BookCrossing",
            abbrev: "BX",
            real: RealStats {
                num_u: 340_523,
                num_v: 105_278,
                num_edges: 1_149_739,
                max_bicliques: 54_458_953,
            },
            scale: 0.008,
            edge_fraction: 1.0,
            gamma: (1.9, 1.8),
            block_density: 40.0,
            block_scale: 1.3,
            overlap: 0.6,
        },
        Preset {
            name: "Github",
            abbrev: "GH",
            real: RealStats {
                num_u: 120_867,
                num_v: 59_519,
                num_edges: 440_237,
                max_bicliques: 55_346_398,
            },
            scale: 0.015,
            edge_fraction: 1.0,
            gamma: (1.9, 1.8),
            block_density: 70.0,
            block_scale: 1.6,
            overlap: 0.65,
        },
        Preset {
            name: "TVTropes",
            abbrev: "DBT",
            real: RealStats {
                num_u: 87_678,
                num_v: 64_415,
                num_edges: 3_232_134,
                max_bicliques: 19_636_996_096,
            },
            scale: 0.01,
            edge_fraction: 0.3,
            gamma: (1.8, 1.8),
            block_density: 18.0,
            block_scale: 1.0,
            overlap: 0.4,
        },
    ]
}

/// Looks a preset up by abbreviation (`"BX"`, `"GH"`, …).
pub fn by_abbrev(abbrev: &str) -> Option<Preset> {
    all_presets().into_iter().find(|p| p.abbrev == abbrev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_presets_unique_abbrevs() {
        let ps = all_presets();
        assert_eq!(ps.len(), 13);
        let mut abbrevs: Vec<&str> = ps.iter().map(|p| p.abbrev).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 13);
    }

    #[test]
    fn sorted_by_published_biclique_count() {
        let ps = all_presets();
        for w in ps.windows(2) {
            assert!(
                w[0].real.max_bicliques <= w[1].real.max_bicliques,
                "{} before {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn build_is_deterministic_and_scaled() {
        let p = by_abbrev("Mti").unwrap();
        let a = p.build(42);
        let b = p.build(42);
        assert_eq!(a, b);
        let c = p.build(43);
        assert_ne!(a, c);
        // Rough scale check: within 2x of the scaled targets.
        let want_v = (p.real.num_v as f64 * p.scale) as u32;
        assert!(a.num_v() >= want_v / 2 && a.num_v() <= want_v * 2);
    }

    #[test]
    fn scaled_build_grows() {
        let p = by_abbrev("WA").unwrap();
        let small = p.build_scaled(1, 0.5);
        let big = p.build_scaled(1, 2.0);
        assert!(big.num_edges() > small.num_edges());
        assert!(big.num_v() > small.num_v());
    }

    #[test]
    fn lookup_by_abbrev() {
        assert_eq!(by_abbrev("DBT").unwrap().name, "TVTropes");
        assert!(by_abbrev("nope").is_none());
    }
}
