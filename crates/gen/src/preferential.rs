//! Bipartite preferential attachment.
//!
//! Chung–Lu fixes the *expected* degree sequence but draws edges
//! independently, which under-produces the degree–degree correlations of
//! real affiliation networks (new users preferentially rate popular
//! movies that are popular *because* they were rated). This generator
//! grows the graph edge by edge, attaching each endpoint either to a
//! uniformly random vertex (probability `1 − p_pref`) or proportionally
//! to current degree-plus-one (probability `p_pref`), yielding the
//! rich-get-richer structure. Used as the alternative workload model in
//! robustness checks of the experiment suite.

use bigraph::{BipartiteGraph, GraphBuilder};
use rand::Rng;

/// Parameters of the preferential-attachment model.
#[derive(Debug, Clone, Copy)]
pub struct PreferentialConfig {
    /// Left-side vertex count.
    pub nu: u32,
    /// Right-side vertex count.
    pub nv: u32,
    /// Number of edge-insertion attempts (distinct edges ≤ this).
    pub edges: usize,
    /// Probability of a preferential (vs. uniform) endpoint choice.
    pub p_pref: f64,
}

/// Generates a graph by repeated degree-biased endpoint sampling.
///
/// Sampling "proportional to degree + 1" is implemented by keeping a
/// flat endpoint log: picking a uniform entry of the log is exactly
/// degree-proportional, and mixing in a uniform vertex pick provides the
/// `+1` smoothing that lets zero-degree vertices enter.
pub fn generate<R: Rng>(rng: &mut R, cfg: &PreferentialConfig) -> BipartiteGraph {
    assert!(cfg.nu > 0 && cfg.nv > 0, "both sides must be non-empty");
    assert!((0.0..=1.0).contains(&cfg.p_pref), "p_pref must be a probability");
    let mut log_u: Vec<u32> = Vec::with_capacity(cfg.edges);
    let mut log_v: Vec<u32> = Vec::with_capacity(cfg.edges);
    let mut seen = std::collections::HashSet::with_capacity(cfg.edges * 2);
    let mut builder = GraphBuilder::with_capacity(cfg.nu, cfg.nv, cfg.edges);

    for _ in 0..cfg.edges {
        let u = if !log_u.is_empty() && rng.gen::<f64>() < cfg.p_pref {
            log_u[rng.gen_range(0..log_u.len())]
        } else {
            rng.gen_range(0..cfg.nu)
        };
        let v = if !log_v.is_empty() && rng.gen::<f64>() < cfg.p_pref {
            log_v[rng.gen_range(0..log_v.len())]
        } else {
            rng.gen_range(0..cfg.nv)
        };
        // The endpoint log grows even for duplicate edges: repeat
        // interactions still signal popularity.
        log_u.push(u);
        log_v.push(v);
        if seen.insert(((u as u64) << 32) | v as u64) {
            builder.add_edge(u, v).expect("sampled ids are in range");
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_and_in_range() {
        let cfg = PreferentialConfig { nu: 100, nv: 80, edges: 500, p_pref: 0.7 };
        let a = generate(&mut StdRng::seed_from_u64(1), &cfg);
        let b = generate(&mut StdRng::seed_from_u64(1), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.num_u(), 100);
        assert_eq!(a.num_v(), 80);
        assert!(a.num_edges() <= 500);
        assert!(a.num_edges() > 300, "duplicates should be a minority");
    }

    #[test]
    fn preferential_is_more_skewed_than_uniform() {
        let gini = |g: &BipartiteGraph| -> f64 {
            let mut degs: Vec<usize> = (0..g.num_v()).map(|v| g.deg_v(v)).collect();
            degs.sort_unstable();
            let n = degs.len() as f64;
            let sum: f64 = degs.iter().map(|&d| d as f64).sum();
            if sum == 0.0 {
                return 0.0;
            }
            let weighted: f64 =
                degs.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
            (2.0 * weighted) / (n * sum) - (n + 1.0) / n
        };
        let mut rng = StdRng::seed_from_u64(3);
        let pref =
            generate(&mut rng, &PreferentialConfig { nu: 400, nv: 300, edges: 3000, p_pref: 0.9 });
        let unif =
            generate(&mut rng, &PreferentialConfig { nu: 400, nv: 300, edges: 3000, p_pref: 0.0 });
        assert!(gini(&pref) > gini(&unif) + 0.05, "pref {} vs unif {}", gini(&pref), gini(&unif));
    }

    #[test]
    fn p_pref_zero_is_uniform_rejection_free() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generate(&mut rng, &PreferentialConfig { nu: 10, nv: 10, edges: 50, p_pref: 0.0 });
        assert!(g.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "p_pref must be a probability")]
    fn invalid_probability_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        generate(&mut rng, &PreferentialConfig { nu: 2, nv: 2, edges: 2, p_pref: 1.5 });
    }
}
