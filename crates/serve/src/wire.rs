//! Length-prefixed frame transport and primitive codecs.
//!
//! Every protocol message travels as one *frame*: a little-endian `u32`
//! byte length followed by that many payload bytes. The payload's first
//! byte is the protocol version, its second the opcode/status — see
//! [`crate::protocol`]. This module owns the byte level only: framing,
//! bounded reads, and the integer/string/blob primitives.
//!
//! Reads are written against sockets with a short read timeout (the
//! server's poll loop): a timeout with *zero* bytes read is a normal
//! [`ReadOutcome::Idle`], while a timeout in the middle of a frame is
//! tolerated only up to a patience budget, then reported as
//! [`WireError::Timeout`] — a peer that stalls mid-frame cannot pin a
//! connection handler forever.

use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Hard upper bound any frame reader should accept (callers usually
/// configure less). Keeps a hostile length prefix from allocating wildly.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Errors of the frame and primitive layer.
#[derive(Debug)]
pub enum WireError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A frame stalled mid-read past the patience budget.
    Timeout(&'static str),
    /// The peer closed the connection in the middle of a frame.
    TruncatedFrame,
    /// The length prefix exceeds the configured cap.
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// The payload bytes do not decode as a protocol message.
    Malformed(&'static str),
    /// The payload's version byte is not ours.
    Version(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Timeout(stage) => write!(f, "timed out mid-frame ({stage})"),
            WireError::TruncatedFrame => f.write_str("connection closed mid-frame"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Version(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// What a bounded frame read produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timed out before any byte arrived — the connection is
    /// merely quiet, not broken. Poll again.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Closed,
}

/// `true` for the error kinds a socket read timeout produces.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Fills `buf` completely, tolerating read-timeout interruptions until
/// `deadline`. Returns `TruncatedFrame` on EOF, `Timeout(stage)` when the
/// patience budget runs out.
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    mut filled: usize,
    deadline: Instant,
    stage: &'static str,
) -> Result<(), WireError> {
    while filled < buf.len() {
        let window = buf.get_mut(filled..).unwrap_or(&mut []);
        match r.read(window) {
            Ok(0) => return Err(WireError::TruncatedFrame),
            Ok(n) => {
                filled += n;
                // Partial progress consumes the same budget a timeout
                // does: the deadline is absolute, so each successful
                // read re-arms only the *remaining* patience. Without
                // this check a peer dribbling one byte per poll
                // interval always "makes progress" and never hits the
                // timeout arm — pinning the handler indefinitely.
                if filled < buf.len() && Instant::now() >= deadline {
                    return Err(WireError::Timeout(stage));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(WireError::Timeout(stage));
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame. A timeout before the first byte yields
/// [`ReadOutcome::Idle`]; once a frame has started, the reader keeps
/// retrying timed-out reads for `patience` before giving up. `max_frame`
/// caps the accepted payload length.
pub fn read_frame<R: Read>(
    r: &mut R,
    max_frame: usize,
    patience: Duration,
) -> Result<ReadOutcome, WireError> {
    let mut len_buf = [0u8; 4];
    let first = loop {
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(n) => break n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
            Err(e) => return Err(WireError::Io(e)),
        }
    };
    let deadline = Instant::now() + patience;
    read_full(r, &mut len_buf, first, deadline, "length prefix")?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame.min(MAX_FRAME_BYTES) {
        return Err(WireError::FrameTooLarge { len, max: max_frame.min(MAX_FRAME_BYTES) });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, 0, deadline, "payload")?;
    Ok(ReadOutcome::Frame(payload))
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| WireError::FrameTooLarge { len: payload.len(), max: u32::MAX as usize })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Cursor over a payload, with bounds-checked primitive reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed(what))?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Malformed(what))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| WireError::Malformed(what))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| WireError::Malformed(what))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes(what)?).map_err(|_| WireError::Malformed(what))
    }

    /// Asserts the payload was fully consumed (trailing garbage is a
    /// protocol violation, not padding).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.str("d").unwrap(), "héllo");
        assert_eq!(r.bytes("e").unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 100); // blob claims 100 bytes, none follow
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes("blob").unwrap_err(), WireError::Malformed(_)));

        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u8("x").unwrap(), 1);
        assert!(matches!(r.finish().unwrap_err(), WireError::Malformed(_)));

        let mut r = Reader::new(&[0xFF, 0xFF, 0xFF, 0xFF]); // 4 GiB string
        assert!(matches!(r.str("s").unwrap_err(), WireError::Malformed(_)));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, b"abc").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        let mut cursor = &pipe[..];
        match read_frame(&mut cursor, 1024, Duration::from_millis(10)).unwrap() {
            ReadOutcome::Frame(p) => assert_eq!(p, b"abc"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor, 1024, Duration::from_millis(10)).unwrap() {
            ReadOutcome::Frame(p) => assert!(p.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor, 1024, Duration::from_millis(10)).unwrap() {
            ReadOutcome::Closed => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&(1_000_000u32).to_le_bytes());
        pipe.extend_from_slice(&[0u8; 16]);
        let mut cursor = &pipe[..];
        match read_frame(&mut cursor, 1024, Duration::from_millis(10)).unwrap_err() {
            WireError::FrameTooLarge { len, max } => {
                assert_eq!(len, 1_000_000);
                assert_eq!(max, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closed_mid_frame_is_truncation_not_idle() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&(10u32).to_le_bytes());
        pipe.extend_from_slice(b"abc"); // 3 of 10 promised bytes
        let mut cursor = &pipe[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024, Duration::from_millis(10)).unwrap_err(),
            WireError::TruncatedFrame
        ));
    }

    /// A reader that yields timeouts between scripted chunks, emulating a
    /// socket with a short read timeout.
    struct Stutter {
        chunks: Vec<Option<Vec<u8>>>, // None = one timeout
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.chunks.is_empty() {
                return Ok(0);
            }
            match self.chunks.remove(0) {
                None => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                Some(mut bytes) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.chunks.insert(0, Some(bytes.split_off(n)));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn idle_before_frame_but_patience_inside_frame() {
        // Timeout before any byte: Idle.
        let mut quiet = Stutter { chunks: vec![None] };
        assert!(matches!(
            read_frame(&mut quiet, 1024, Duration::from_millis(50)).unwrap(),
            ReadOutcome::Idle
        ));

        // Frame split across timeouts within patience: reassembled.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"hello").unwrap();
        let (head, tail) = frame.split_at(3);
        let mut stutter = Stutter { chunks: vec![Some(head.to_vec()), None, Some(tail.to_vec())] };
        match read_frame(&mut stutter, 1024, Duration::from_secs(5)).unwrap() {
            ReadOutcome::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("unexpected {other:?}"),
        }

        // Stalled forever mid-frame: patience expires with a Timeout.
        let mut stalled =
            Stutter { chunks: vec![Some(head.to_vec()), None, None, None, None, None, None] };
        assert!(matches!(
            read_frame(&mut stalled, 1024, Duration::from_millis(0)).unwrap_err(),
            WireError::Timeout(_)
        ));
    }

    #[test]
    fn byte_dribbling_cannot_outlive_the_patience_budget() {
        // A peer that delivers exactly one byte per read never takes the
        // timeout arm, yet must still hit the deadline: partial progress
        // consumes the remaining budget rather than re-arming a full one.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"dribble").unwrap();
        let chunks: Vec<Option<Vec<u8>>> = frame.iter().map(|&b| Some(vec![b])).collect();
        let mut dribbler = Stutter { chunks };
        assert!(matches!(
            read_frame(&mut dribbler, 1024, Duration::from_millis(0)).unwrap_err(),
            WireError::Timeout(_)
        ));

        // The same dribble inside a generous budget still reassembles —
        // the check only fires when the deadline has truly passed.
        let chunks: Vec<Option<Vec<u8>>> = frame.iter().map(|&b| Some(vec![b])).collect();
        let mut dribbler = Stutter { chunks };
        match read_frame(&mut dribbler, 1024, Duration::from_secs(5)).unwrap() {
            ReadOutcome::Frame(p) => assert_eq!(p, b"dribble"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
