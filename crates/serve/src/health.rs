//! Worker health tracking for the coordinator.
//!
//! Each worker address gets a slot. Failures recorded by the worker's own
//! driver thread accumulate; crossing the quarantine threshold marks the
//! worker unhealthy until a probe (a `STATS` round trip) succeeds. Health
//! is only ever written by the worker's own thread, which gives the
//! coordinator a cheap invariant: when [`HealthBoard::healthy_count`]
//! reads zero, no shard attempt is in flight — every driver thread is
//! sleeping in backoff or quarantine — so the remaining frontier can be
//! claimed for local fallback without racing a remote completion.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::telemetry::WorkerStatus;

/// One worker's failure bookkeeping.
#[derive(Debug)]
struct WorkerHealth {
    /// Consecutive failures since the last success.
    consecutive_failures: u32,
    /// Set while the worker is quarantined; cleared by a probe success.
    quarantined_until: Option<Instant>,
    /// `false` from quarantine entry until a probe or attempt succeeds.
    healthy: bool,
    /// Lifetime charged attempt/probe successes (telemetry only).
    successes: u64,
    /// Lifetime charged attempt/probe failures (telemetry only).
    failures: u64,
    /// Lifetime quarantine entries (telemetry only).
    quarantines: u64,
    /// Lifetime quarantine exits via a successful probe (telemetry only).
    readmissions: u64,
}

/// Per-worker health slots (index-aligned with the worker address list).
#[derive(Debug)]
pub(crate) struct HealthBoard {
    slots: Vec<Mutex<WorkerHealth>>,
}

impl HealthBoard {
    pub(crate) fn new(workers: usize) -> Self {
        HealthBoard {
            slots: (0..workers)
                .map(|_| {
                    Mutex::new(WorkerHealth {
                        consecutive_failures: 0,
                        quarantined_until: None,
                        healthy: true,
                        successes: 0,
                        failures: 0,
                        quarantines: 0,
                        readmissions: 0,
                    })
                })
                .collect(),
        }
    }

    fn slot(&self, i: usize) -> std::sync::MutexGuard<'_, WorkerHealth> {
        self.slots[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A successful attempt or probe: failures reset, quarantine lifted.
    pub(crate) fn record_success(&self, i: usize) {
        let mut h = self.slot(i);
        h.successes = h.successes.saturating_add(1);
        if !h.healthy {
            h.readmissions = h.readmissions.saturating_add(1);
        }
        h.consecutive_failures = 0;
        h.quarantined_until = None;
        h.healthy = true;
    }

    /// A failed attempt or probe. Returns `true` when this failure pushed
    /// (or kept) the worker into quarantine for `quarantine_for`.
    pub(crate) fn record_failure(
        &self,
        i: usize,
        quarantine_after: u32,
        quarantine_for: Duration,
    ) -> bool {
        let mut h = self.slot(i);
        h.failures = h.failures.saturating_add(1);
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        if h.consecutive_failures >= quarantine_after.max(1) {
            if h.healthy {
                h.quarantines = h.quarantines.saturating_add(1);
            }
            h.quarantined_until = Some(Instant::now() + quarantine_for);
            h.healthy = false;
            true
        } else {
            false
        }
    }

    /// Time left before the worker may probe for re-admission (zero when
    /// not quarantined or already expired).
    pub(crate) fn quarantine_remaining(&self, i: usize) -> Duration {
        self.slot(i)
            .quarantined_until
            .map_or(Duration::ZERO, |until| until.saturating_duration_since(Instant::now()))
    }

    /// `true` while the worker is sidelined awaiting a successful probe.
    pub(crate) fn is_quarantined(&self, i: usize) -> bool {
        !self.slot(i).healthy
    }

    /// Workers currently considered healthy.
    pub(crate) fn healthy_count(&self) -> usize {
        (0..self.slots.len()).filter(|&i| self.slot(i).healthy).count()
    }

    /// Telemetry snapshot of every slot, index-aligned with the worker
    /// address list.
    pub(crate) fn status(&self) -> Vec<WorkerStatus> {
        (0..self.slots.len())
            .map(|i| {
                let h = self.slot(i);
                WorkerStatus {
                    healthy: h.healthy,
                    consecutive_failures: u64::from(h.consecutive_failures),
                    successes: h.successes,
                    failures: h.failures,
                    quarantines: h.quarantines,
                    readmissions: h.readmissions,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_accumulate_into_quarantine_and_probe_readmits() {
        let board = HealthBoard::new(2);
        assert_eq!(board.healthy_count(), 2);
        let q = Duration::from_secs(60);

        assert!(!board.record_failure(0, 3, q));
        assert!(!board.record_failure(0, 3, q));
        assert!(!board.is_quarantined(0), "below threshold");
        assert!(board.record_failure(0, 3, q));
        assert!(board.is_quarantined(0));
        assert_eq!(board.healthy_count(), 1);
        assert!(board.quarantine_remaining(0) > Duration::ZERO);
        assert_eq!(board.quarantine_remaining(1), Duration::ZERO);

        board.record_success(0);
        assert!(!board.is_quarantined(0));
        assert_eq!(board.healthy_count(), 2);
    }

    #[test]
    fn status_counts_lifetime_quarantines_and_readmissions() {
        let board = HealthBoard::new(2);
        let q = Duration::from_secs(60);
        board.record_failure(0, 2, q);
        board.record_failure(0, 2, q); // enters quarantine
        board.record_failure(0, 2, q); // still quarantined: not a new entry
        board.record_success(0); // probe succeeds: readmission
        board.record_failure(0, 2, q);
        board.record_failure(0, 2, q); // second quarantine entry
        board.record_success(0); // second readmission

        let status = board.status();
        assert_eq!(status.len(), 2);
        assert!(status[0].healthy);
        assert_eq!(status[0].consecutive_failures, 0);
        assert_eq!(status[0].successes, 2);
        assert_eq!(status[0].failures, 5);
        assert_eq!(status[0].quarantines, 2);
        assert_eq!(status[0].readmissions, 2);
        assert_eq!(status[1], WorkerStatus { healthy: true, ..WorkerStatus::default() });
    }

    #[test]
    fn a_success_resets_the_consecutive_count() {
        let board = HealthBoard::new(1);
        let q = Duration::from_secs(1);
        board.record_failure(0, 3, q);
        board.record_failure(0, 3, q);
        board.record_success(0);
        assert!(!board.record_failure(0, 3, q), "count restarted after success");
    }
}
