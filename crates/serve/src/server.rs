//! The TCP server: accept loop, per-connection handlers, and the query
//! pipeline (registry → cache → admission → enumeration → reply).
//!
//! Threading model: one acceptor (the caller of [`Server::run`]), one
//! thread per live connection, and the [`Admission`] worker pool where
//! enumeration actually runs. Connection threads never enumerate — they
//! poll their socket with a short read timeout, which is what keeps a
//! connection responsive to pipelined `CANCEL` frames while its query is
//! executing on a worker.
//!
//! Shutdown ordering (`SHUTDOWN` request or [`ServerHandle::shutdown`]):
//! the flag flips once, every registered in-flight [`RunControl`] is
//! cancelled, and the acceptor is woken by a loopback connect. Cancelled
//! queries return to their own clients with `stop = cancelled` and a
//! serialized checkpoint, connection threads drain and exit on their
//! next idle poll, and [`Server::run`] joins them before shutting the
//! worker pool down and returning a [`ServerSummary`].

use std::collections::HashMap;
use std::io;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bigraph::general::read_general_edge_list_path_with_limits;
use bigraph::io::{read_edge_list_path_with_limits, ReadLimits};
use bigraph::{BipartiteGraph, GeneralGraph};
use mbe::obs::TaskInfo;
use mbe::service::{cacheable, run_query, CachedResult, QueryParams, ResultCache};
use mbe::{
    CacheCounters, Checkpoint, Enumeration, FanoutObserver, JsonlTraceObserver, MbeError, Observer,
    Report, RunControl, StopReason,
};
use oct::{OctCheckpoint, OctEnumeration, OctError, OctReport};

use crate::admission::{Admission, QueueWait, SubmitError};
use crate::coordinator::{Coordinator, CoordinatorConfig, DistError, DistOutcome};
use crate::protocol::{
    errcode, QueryReply, QueryRequest, Reply, Request, Response, ServerStats, ShardRequest,
    TraceContext,
};
use crate::registry::{GraphData, GraphRegistry};
use crate::span::SpanLog;
use crate::telemetry::{self, render_prometheus, MetricsSnapshot, ServerMetrics};
use crate::wire::{read_frame, write_frame, ReadOutcome};

/// How long a peer may stall in the middle of a frame before the
/// connection is dropped.
const FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// Server tunables. [`ServerConfig::default`] is sized for tests and
/// small deployments; everything is overridable field-by-field.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Enumeration worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Admission queue slots (clamped to ≥ 1); a full queue rejects with
    /// [`Response::Busy`].
    pub queue_capacity: usize,
    /// Result-cache byte budget (see [`ResultCache`]).
    pub cache_bytes: usize,
    /// Deadline applied to queries that do not carry their own. Measured
    /// from admission, so queued time counts.
    pub default_timeout: Option<Duration>,
    /// Idle connections are dropped after this long without a frame.
    pub idle_timeout: Duration,
    /// Hard cap on bicliques returned per reply, regardless of the
    /// request's `max_return`.
    pub max_return: u32,
    /// Largest request frame accepted from a client.
    pub max_frame_bytes: usize,
    /// Parser limits applied to `LOAD`ed edge-list files.
    pub read_limits: ReadLimits,
    /// When set, each query writes a JSONL trace to
    /// `<trace_dir>/req-<pid>-<id>.jsonl` — and a coordinator writes its
    /// distributed span log to `<trace_dir>/coord-<pid>-<id>.jsonl`
    /// (best-effort; trace I/O errors never fail a query).
    pub trace_dir: Option<PathBuf>,
    /// When set, a plain-HTTP responder on this address answers `GET
    /// /metrics` with Prometheus text exposition of the server's
    /// [`MetricsSnapshot`] (the scrape-friendly view of the `METRICS`
    /// wire request).
    pub metrics_addr: Option<SocketAddr>,
    /// Socket read timeout: the cadence at which connection threads
    /// notice cancellation, shutdown, and idle timeouts.
    pub poll_interval: Duration,
    /// When set, this server runs coordinator mode: shardable queries
    /// are split and fanned out to the configured workers (see
    /// [`crate::coordinator`]); everything else still runs locally.
    pub coordinator: Option<CoordinatorConfig>,
    /// Scripted faults applied to shard executions — the deterministic
    /// worker-crash vehicle of the coordinator fault harness.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<mbe::faults::FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache_bytes: 32 << 20,
            default_timeout: None,
            idle_timeout: Duration::from_secs(300),
            max_return: 100_000,
            max_frame_bytes: 16 << 20,
            read_limits: ReadLimits::default(),
            trace_dir: None,
            metrics_addr: None,
            poll_interval: Duration::from_millis(25),
            coordinator: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

/// Counts enumeration tasks via [`Observer::on_task_start`]; shared by
/// every query so `STATS.tasks_started` moves iff an enumeration ran
/// (the cache-hit test's witness that no new work happened).
#[derive(Default)]
struct TaskCounter {
    started: AtomicU64,
}

impl TaskCounter {
    fn count(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }
}

impl Observer for TaskCounter {
    fn on_task_start(&self, _worker: usize, _task: &TaskInfo) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    registry: GraphRegistry,
    cache: Mutex<ResultCache>,
    admission: Admission,
    /// Request id → the query's control, for `CANCEL` and shutdown-drain.
    inflight: Mutex<HashMap<u64, RunControl>>,
    /// Present iff this server runs coordinator mode. Long-lived so
    /// worker quarantine persists across queries.
    coord: Option<Coordinator>,
    /// The server-wide telemetry registry (see [`crate::telemetry`]).
    metrics: ServerMetrics,
    task_counter: TaskCounter,
    next_request: AtomicU64,
    queries: AtomicU64,
    busy_rejected: AtomicU64,
    shutdown: AtomicBool,
}

/// A shutdown trigger detached from the blocked [`Server::run`] call.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown: cancels in-flight queries and wakes the
    /// acceptor. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// `true` once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Counters reported by [`Server::run`] when it returns.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerSummary {
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Queries rejected with the typed busy response.
    pub busy_rejected: u64,
    /// Graphs registered at exit.
    pub graphs: u64,
    /// Result-cache counters at exit.
    pub cache: CacheCounters,
    /// Admission queue-wait counters at exit (busy-vs-dead telemetry).
    pub queue_wait: QueueWait,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    /// Present iff [`ServerConfig::metrics_addr`] was set: the bound
    /// Prometheus scrape listener, served by a thread [`Server::run`]
    /// spawns.
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the admission worker pool.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match cfg.metrics_addr {
            Some(maddr) => Some(TcpListener::bind(maddr)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.workers, cfg.queue_capacity),
            cache: Mutex::new(ResultCache::new(cfg.cache_bytes)),
            coord: cfg.coordinator.clone().map(Coordinator::new),
            cfg,
            addr,
            registry: GraphRegistry::new(),
            inflight: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(),
            task_counter: TaskCounter::default(),
            next_request: AtomicU64::new(1),
            queries: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, metrics_listener, shared })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound metrics-scrape address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A cloneable handle that can trigger shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Pre-registers a graph before serving (the CLI's `--load` flags).
    pub fn preload(&self, name: &str, graph: BipartiteGraph) -> Result<(), String> {
        self.shared
            .registry
            .insert(name, graph)
            .map(|_| ())
            .map_err(|c| format!("name '{}' already bound to a different graph", c.name))
    }

    /// Serves until shutdown is triggered, then drains and returns the
    /// final counters. Blocks the calling thread.
    pub fn run(self) -> io::Result<ServerSummary> {
        let metrics_thread = self.metrics_listener.and_then(|listener| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("mbe-serve-metrics".into())
                .spawn(move || serve_metrics_http(&listener, &shared))
                .map_err(|e| eprintln!("mbe-serve: failed to spawn metrics responder: {e}"))
                .ok()
        });
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        let mut conn_id: u64 = 0;
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break; // the shutdown poke itself
                    }
                    conns.retain(|h| !h.is_finished());
                    conn_id += 1;
                    let shared = Arc::clone(&self.shared);
                    let spawned = std::thread::Builder::new()
                        // xtask-allow: hot-alloc-loop (once per accepted connection)
                        .name(format!("mbe-serve-conn-{conn_id}"))
                        .spawn(move || handle_conn(&shared, stream));
                    match spawned {
                        Ok(handle) => conns.push(handle),
                        Err(e) => eprintln!("mbe-serve: failed to spawn connection: {e}"),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Transient accept failure (e.g. fd exhaustion):
                    // back off instead of spinning.
                    eprintln!("mbe-serve: accept error: {e}");
                    std::thread::sleep(self.shared.cfg.poll_interval);
                }
            }
        }
        for handle in conns {
            if handle.join().is_err() {
                eprintln!("mbe-serve: connection thread panicked");
            }
        }
        if let Some(handle) = metrics_thread {
            // The responder polls the shutdown flag (set by the time the
            // accept loop breaks), so this join is prompt.
            if handle.join().is_err() {
                eprintln!("mbe-serve: metrics responder panicked");
            }
        }
        self.shared.admission.shutdown();
        let cache = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner).counters();
        Ok(ServerSummary {
            queries: self.shared.queries.load(Ordering::Relaxed),
            busy_rejected: self.shared.busy_rejected.load(Ordering::Relaxed),
            graphs: self.shared.registry.len() as u64,
            cache,
            queue_wait: self.shared.admission.queue_wait(),
        })
    }
}

/// Flips the shutdown flag (once), cancels every registered in-flight
/// query, and wakes the blocked acceptor with a loopback connect.
fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    {
        let inflight = shared.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        for control in inflight.values() {
            control.cancel();
        }
    }
    let _ = TcpStream::connect(shared.addr);
}

/// One connection's read/dispatch/reply loop.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let poll = shared.cfg.poll_interval;
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut idle = Duration::ZERO;
    loop {
        match read_frame(&mut stream, shared.cfg.max_frame_bytes, FRAME_PATIENCE) {
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                idle += poll;
                if idle >= shared.cfg.idle_timeout {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Frame(payload)) => {
                idle = Duration::ZERO;
                for response in dispatch(shared, &mut stream, &payload) {
                    if write_frame(&mut stream, &response.encode()).is_err() {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes and executes one request. Returns the responses to send, in
/// order — a query that absorbed a pipelined `SHUTDOWN` answers both.
fn dispatch(shared: &Arc<Shared>, stream: &mut TcpStream, payload: &[u8]) -> Vec<Response> {
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            return vec![Response::Err { code: errcode::BAD_REQUEST, message: e.to_string() }]
        }
    };
    let op = op_slot(&request);
    let started = Instant::now();
    let responses = match request {
        Request::Load { name, path } => vec![handle_load(shared, &name, &path)],
        Request::LoadGeneral { name, path } => vec![handle_load_general(shared, &name, &path)],
        Request::List => {
            let infos = shared.registry.list().iter().map(|e| e.info()).collect();
            vec![Response::Ok(Reply::Graphs(infos))]
        }
        Request::Query(q) => handle_query(shared, stream, &q),
        Request::QueryShard(s) => handle_shard_query(shared, stream, &s),
        // Nothing is in flight on this connection (queries hold the loop
        // until they answer), so an idle CANCEL is a trivial ack.
        Request::Cancel => vec![Response::Ok(Reply::Cancelled)],
        Request::Stats => vec![Response::Ok(Reply::Stats(server_stats(shared)))],
        Request::Metrics => {
            vec![Response::Ok(Reply::Metrics(Box::new(metrics_snapshot(shared))))]
        }
        Request::Shutdown => {
            trigger_shutdown(shared);
            vec![Response::Ok(Reply::ShuttingDown)]
        }
    };
    // An empty response list means the client vanished mid-query: not an
    // error the server produced, so it only counts toward the op total.
    let ok = !matches!(responses.first(), Some(Response::Err { .. }) | Some(Response::Busy { .. }));
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_request(op, elapsed_us, ok);
    responses
}

/// Maps a decoded request to its [`crate::telemetry`] opcode slot.
fn op_slot(request: &Request) -> usize {
    match request {
        Request::Load { .. } => telemetry::OP_LOAD,
        Request::LoadGeneral { .. } => telemetry::OP_LOAD_GENERAL,
        Request::List => telemetry::OP_LIST,
        Request::Query(_) => telemetry::OP_QUERY,
        Request::QueryShard(_) => telemetry::OP_QUERY_SHARD,
        Request::Cancel => telemetry::OP_CANCEL,
        Request::Stats => telemetry::OP_STATS,
        Request::Metrics => telemetry::OP_METRICS,
        Request::Shutdown => telemetry::OP_SHUTDOWN,
    }
}

fn handle_load(shared: &Shared, name: &str, path: &str) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Err {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".into(),
        };
    }
    let graph = match read_edge_list_path_with_limits(path, shared.cfg.read_limits) {
        Ok(g) => g,
        Err(e) => {
            return Response::Err {
                code: errcode::LOAD_FAILED,
                message: format!("cannot load '{path}': {e}"),
            }
        }
    };
    match shared.registry.insert(name, graph) {
        Ok(entry) => {
            // Coordinators remember where the graph came from and push it
            // to workers eagerly (and again lazily on `unknown-graph`).
            if let Some(coord) = &shared.coord {
                coord.note_load(name, path);
            }
            Response::Ok(Reply::Loaded(entry.info()))
        }
        Err(conflict) => Response::Err {
            code: errcode::NAME_CONFLICT,
            message: format!(
                "'{}' is bound to fingerprint {:016x}, refusing {:016x}",
                conflict.name, conflict.existing, conflict.offered
            ),
        },
    }
}

/// `LOAD_GENERAL`: same hardened read-limits and idempotency contract as
/// [`handle_load`], but the file is parsed as a general edge list and
/// queries on the name will route through the OCT driver. The graph is
/// *not* announced to coordinator workers — general queries are never
/// sharded, so workers have no use for it.
fn handle_load_general(shared: &Shared, name: &str, path: &str) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Err {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".into(),
        };
    }
    let graph = match read_general_edge_list_path_with_limits(path, shared.cfg.read_limits) {
        Ok(g) => g,
        Err(e) => {
            return Response::Err {
                code: errcode::LOAD_FAILED,
                message: format!("cannot load '{path}': {e}"),
            }
        }
    };
    match shared.registry.insert_general(name, graph) {
        Ok(entry) => Response::Ok(Reply::LoadedGeneral(entry.info())),
        Err(conflict) => Response::Err {
            code: errcode::NAME_CONFLICT,
            message: format!(
                "'{}' is bound to fingerprint {:016x}, refusing {:016x}",
                conflict.name, conflict.existing, conflict.offered
            ),
        },
    }
}

fn server_stats(shared: &Shared) -> ServerStats {
    let wait = shared.admission.queue_wait();
    ServerStats {
        graphs: shared.registry.len() as u64,
        inflight: shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).len() as u64,
        queued: shared.admission.queued(),
        queue_capacity: u64::from(shared.admission.capacity()),
        workers: shared.admission.workers() as u64,
        queries: shared.queries.load(Ordering::Relaxed),
        busy_rejected: shared.busy_rejected.load(Ordering::Relaxed),
        tasks_started: shared.task_counter.count(),
        cache: shared.cache.lock().unwrap_or_else(PoisonError::into_inner).counters(),
        queue_wait_total_us: wait.total_us,
        queue_wait_max_us: wait.max_us,
        jobs_executed: wait.executed,
        shutting_down: shared.shutdown.load(Ordering::SeqCst),
    }
}

/// Assembles the full typed telemetry snapshot: the `METRICS` reply body
/// and the source the Prometheus responder renders. Worker quarantine /
/// re-admission totals are derived here from the coordinator's health
/// board — the single source of truth — rather than double-booked as
/// registry counters.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    // Guards are taken one statement at a time, in the same
    // inflight-before-cache order as `server_stats` (lock-order rule).
    let inflight = shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).len() as u64;
    let cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner).counters();
    let wait = shared.admission.queue_wait();
    let workers = shared.coord.as_ref().map(Coordinator::worker_status).unwrap_or_default();
    let m = &shared.metrics;
    MetricsSnapshot {
        uptime_us: m.uptime_us(),
        ops: m.ops_snapshot(),
        queued: shared.admission.queued(),
        queue_capacity: u64::from(shared.admission.capacity()),
        pool_workers: shared.admission.workers() as u64,
        queue_wait: shared.admission.queue_wait_histogram(),
        jobs_executed: wait.executed,
        busy_rejected: shared.busy_rejected.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_insertions: cache.insertions,
        cache_evictions: cache.evictions,
        cache_bytes_used: cache.bytes_used,
        cache_bytes_evicted: cache.bytes_evicted,
        graphs: shared.registry.len() as u64,
        graph_loads: shared.registry.loads(),
        graph_conflicts: shared.registry.conflicts(),
        inflight,
        queries: shared.queries.load(Ordering::Relaxed),
        dist_queries: m.dist_queries.load(Ordering::Relaxed),
        shard_dispatches: m.shard_dispatches.load(Ordering::Relaxed),
        shard_retries: m.shard_retries.load(Ordering::Relaxed),
        shard_resteals: m.shard_resteals.load(Ordering::Relaxed),
        shard_speculated: m.shard_speculated.load(Ordering::Relaxed),
        shard_stranded_claims: m.shard_stranded_claims.load(Ordering::Relaxed),
        shard_fallbacks: m.shard_fallbacks.load(Ordering::Relaxed),
        worker_quarantines: workers.iter().map(|w| w.quarantines).sum(),
        worker_readmissions: workers.iter().map(|w| w.readmissions).sum(),
        workers,
        shutting_down: shared.shutdown.load(Ordering::SeqCst),
    }
}

/// Accept loop of the `--metrics-addr` scrape responder: non-blocking so
/// it notices shutdown within one poll interval.
fn serve_metrics_http(listener: &TcpListener, shared: &Arc<Shared>) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("mbe-serve: metrics responder cannot poll: {e}");
        return;
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = answer_metrics_http(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(shared.cfg.poll_interval),
        }
    }
}

/// Answers one scrape connection: a minimal HTTP/1.1 exchange — `GET
/// /metrics` (or `/`) returns Prometheus text exposition 0.0.4, anything
/// else 404/405. One request per connection (`Connection: close`).
fn answer_metrics_http(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(FRAME_PATIENCE))?;
    let mut head = [0u8; 4096];
    let mut filled = 0usize;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let request_line = String::from_utf8_lossy(&head[..filled]);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", String::from("only GET is supported\n"))
    } else if path == "/metrics" || path == "/" {
        ("200 OK", render_prometheus(&metrics_snapshot(shared)))
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Clips a result to the smaller of the request's and the server's cap.
fn clip(bicliques: &[mbe::Biclique], req_max: u32, cfg_max: u32) -> Vec<mbe::Biclique> {
    bicliques.iter().take(req_max.min(cfg_max) as usize).cloned().collect()
}

fn reply_from_cached(hit: &CachedResult, q: &QueryRequest, cfg: &ServerConfig) -> QueryReply {
    let (total, bicliques) = match &hit.bicliques {
        Some(bs) => (bs.len() as u64, clip(bs, q.max_return, cfg.max_return)),
        None => (0, Vec::new()),
    };
    QueryReply {
        stop: StopReason::Completed,
        cached: true,
        emitted: hit.emitted,
        elapsed_us: hit.elapsed.as_micros() as u64,
        total,
        bicliques,
        checkpoint: None,
        dist: None,
    }
}

fn reply_from_report(report: &Report, q: &QueryRequest, cfg: &ServerConfig) -> QueryReply {
    QueryReply {
        stop: report.stop,
        cached: false,
        emitted: report.stats.emitted,
        elapsed_us: report.stats.elapsed.as_micros() as u64,
        total: report.bicliques.len() as u64,
        bicliques: clip(&report.bicliques, q.max_return, cfg.max_return),
        checkpoint: report.checkpoint.as_ref().map(Checkpoint::to_bytes),
        dist: None,
    }
}

/// The reply a coordinator assembles from a merged distributed run — the
/// only reply shape that carries a [`crate::protocol::DistSummary`].
fn reply_from_dist(outcome: &DistOutcome, q: &QueryRequest, cfg: &ServerConfig) -> QueryReply {
    QueryReply {
        stop: outcome.stop,
        cached: false,
        emitted: outcome.emitted,
        elapsed_us: outcome.elapsed_us,
        total: outcome.bicliques.len() as u64,
        bicliques: clip(&outcome.bicliques, q.max_return, cfg.max_return),
        checkpoint: outcome.checkpoint.clone(),
        dist: Some(outcome.dist),
    }
}

/// A worker's reply to one `QUERY_SHARD`. Shards bypass the result cache
/// in both directions: a shard is a fragment of a query, not a canonical
/// query of its own. Only the *request's* `max_return` applies — never
/// this server's `cfg.max_return`: shard replies are coordinator-facing,
/// and a config-clipped reply would silently drop bicliques from the
/// merged distributed result (DESIGN §8c documents this contract).
fn shard_reply(report: &Report, s: &ShardRequest) -> QueryReply {
    QueryReply {
        stop: report.stop,
        cached: false,
        emitted: report.stats.emitted,
        elapsed_us: report.stats.elapsed.as_micros() as u64,
        total: report.bicliques.len() as u64,
        bicliques: clip(&report.bicliques, s.max_return, u32::MAX),
        checkpoint: report.checkpoint.as_ref().map(Checkpoint::to_bytes),
        dist: None,
    }
}

/// The query pipeline: cache lookup, admission, execution on a worker,
/// and a wait loop that keeps servicing this connection's pipelined
/// `CANCEL`/`SHUTDOWN` frames while the worker runs.
fn handle_query(shared: &Arc<Shared>, stream: &mut TcpStream, q: &QueryRequest) -> Vec<Response> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return vec![Response::Err {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".into(),
        }];
    }
    let Some(entry) = shared.registry.get(&q.graph) else {
        return vec![Response::Err {
            code: errcode::UNKNOWN_GRAPH,
            message: format!("no graph named '{}' (LOAD it first)", q.graph),
        }];
    };
    let fingerprint = entry.fingerprint;
    let graph = match &entry.data {
        GraphData::Bipartite(g) => Arc::clone(g),
        GraphData::General(g) => {
            return handle_oct_query(shared, stream, q, fingerprint, Arc::clone(g))
        }
    };
    let key = q.params.canonical_key();

    // Cache first: hits are never queued, so they can't be rejected Busy.
    {
        let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = cache.lookup(fingerprint, &key) {
            drop(cache);
            shared.queries.fetch_add(1, Ordering::Relaxed);
            return vec![Response::Ok(Reply::Query(reply_from_cached(&hit, q, &shared.cfg)))];
        }
    }

    // The deadline starts at admission, not execution: time spent queued
    // counts against the request's budget. Captured as an instant so the
    // coordinator can hand the same deadline to its shard attempts.
    let deadline =
        q.params.timeout.or(shared.cfg.default_timeout).map(|limit| Instant::now() + limit);
    let mut control = RunControl::new();
    if let Some(at) = deadline {
        control = control.deadline(at);
    }
    let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).insert(id, control.clone());
    if shared.shutdown.load(Ordering::SeqCst) {
        // Shutdown raced between the top check and registration; its
        // cancel sweep may have missed this control.
        control.cancel();
    }

    // Shardable queries route through the coordinator when one is
    // configured; thresholded / top-k / budgeted queries always run
    // locally (that is policy, not degradation — no `degraded` flag).
    let distribute = shared.coord.is_some() && q.params.shardable();
    let (tx, rx) = sync_channel::<QueryOutcome>(1);
    let job = {
        let shared = Arc::clone(shared);
        let graph = Arc::clone(&graph);
        let graph_name = q.graph.clone();
        let params = q.params.clone();
        let control = control.clone();
        let trace_ctx = q.trace;
        Box::new(move || {
            let result = match shared.coord.as_ref().filter(|_| distribute) {
                Some(coord) => {
                    let span = open_span_log(&shared, id);
                    let dist = coord.run(
                        &graph,
                        &graph_name,
                        &params,
                        &control,
                        deadline,
                        Some(&shared.metrics),
                        span.as_ref(),
                    );
                    // Fold the run's provenance into the registry here —
                    // the one place both exist — so the Prometheus
                    // counters always agree with the `DistSummary` the
                    // client saw. (Dispatches, stranded claims, and
                    // fallbacks are counted live at their event sites.)
                    if let Ok(outcome) = &dist {
                        ServerMetrics::add(&shared.metrics.dist_queries, 1);
                        ServerMetrics::add(
                            &shared.metrics.shard_retries,
                            u64::from(outcome.dist.retries),
                        );
                        ServerMetrics::add(
                            &shared.metrics.shard_resteals,
                            u64::from(outcome.dist.resteals),
                        );
                        ServerMetrics::add(
                            &shared.metrics.shard_speculated,
                            u64::from(outcome.dist.speculated),
                        );
                    }
                    if let Some(e) = span.as_ref().and_then(SpanLog::take_error) {
                        eprintln!("mbe-serve: span log write failed: {e}");
                    }
                    QueryOutcome::Dist(dist)
                }
                None => {
                    QueryOutcome::Local(execute(&shared, &graph, &params, control, id, trace_ctx))
                }
            };
            shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
            let _ = tx.send(result);
        })
    };
    if let Err(err) = shared.admission.submit(job) {
        shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
        return vec![reject(shared, err)];
    }

    let Some((result, pipelined)) = wait_for_result(shared, stream, &control, &rx) else {
        return Vec::new();
    };

    shared.queries.fetch_add(1, Ordering::Relaxed);
    let response = match result {
        Some(QueryOutcome::Local(Ok(report))) => {
            if cacheable(&report) {
                let value = CachedResult::from_report(&report, q.params.count_only);
                shared.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(
                    fingerprint,
                    key,
                    value,
                );
            }
            Response::Ok(Reply::Query(reply_from_report(&report, q, &shared.cfg)))
        }
        // A contained worker panic still carries the partial report:
        // surface it as a reply (stop = worker-panicked) so the client
        // keeps the checkpoint and partial results.
        Some(QueryOutcome::Local(Err(MbeError::WorkerPanic { report, .. }))) => {
            Response::Ok(Reply::Query(reply_from_report(&report, q, &shared.cfg)))
        }
        Some(QueryOutcome::Local(Err(e))) => {
            Response::Err { code: errcode::INTERNAL, message: e.to_string() }
        }
        Some(QueryOutcome::Dist(Ok(outcome))) => {
            let reply = reply_from_dist(&outcome, q, &shared.cfg);
            // A complete merged result is cacheable under the same key a
            // local run would use; later hits answer with `dist: None`.
            if outcome.stop == StopReason::Completed {
                let value = CachedResult {
                    bicliques: if q.params.count_only {
                        None
                    } else {
                        Some(Arc::new(outcome.bicliques))
                    },
                    emitted: outcome.emitted,
                    elapsed: Duration::from_micros(outcome.elapsed_us),
                };
                shared.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(
                    fingerprint,
                    key,
                    value,
                );
            }
            Response::Ok(Reply::Query(reply))
        }
        Some(QueryOutcome::Dist(Err(e))) => {
            Response::Err { code: e.code(), message: e.to_string() }
        }
        None => Response::Err {
            code: errcode::INTERNAL,
            message: "query worker disappeared without a result".into(),
        },
    };
    let mut out = vec![response];
    out.extend(pipelined);
    out
}

/// How one admitted query job resolved: locally or via the coordinator.
enum QueryOutcome {
    Local(Result<Report, MbeError>),
    Dist(Result<DistOutcome, DistError>),
}

/// The reply for one completed (or stopped) OCT driver run. The reply
/// rides the ordinary `QUERY` tag — the client asked a question about a
/// named graph and gets bicliques back; which engine answered is the
/// server's business.
fn reply_from_oct(report: &OctReport, q: &QueryRequest, cfg: &ServerConfig) -> QueryReply {
    QueryReply {
        stop: report.stop,
        cached: false,
        emitted: report.stats.emitted,
        elapsed_us: report.stats.elapsed.as_micros() as u64,
        total: report.bicliques.len() as u64,
        bicliques: clip(&report.bicliques, q.max_return, cfg.max_return),
        checkpoint: report.checkpoint.as_ref().map(OctCheckpoint::to_bytes),
        dist: None,
    }
}

/// `QUERY` on a general graph: the same cache → admission → execute →
/// reply pipeline as [`handle_query`], with the OCT driver as the
/// engine. Differences, all deliberate:
///
/// - cache keys are prefixed `oct;` so a general result can never be
///   replayed for a bipartite query (or vice versa), even if the two
///   fingerprint digests ever collided;
/// - size thresholds and `top_k` are bipartite-engine features — they
///   answer `WRONG_KIND` instead of being silently ignored;
/// - the query always runs locally: the OCT driver's per-assignment
///   checkpoints are not frontier shards, so coordinator mode does not
///   distribute it (policy, not degradation).
fn handle_oct_query(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    q: &QueryRequest,
    fingerprint: u64,
    graph: Arc<GeneralGraph>,
) -> Vec<Response> {
    if q.params.thresholded() || q.params.top_k.is_some() {
        return vec![Response::Err {
            code: errcode::WRONG_KIND,
            message: format!(
                "'{}' is a general graph; min-left/min-right thresholds and top-k \
                 apply only to bipartite graphs",
                q.graph
            ),
        }];
    }
    let key = format!("oct;{}", q.params.canonical_key());
    {
        let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = cache.lookup(fingerprint, &key) {
            drop(cache);
            shared.queries.fetch_add(1, Ordering::Relaxed);
            return vec![Response::Ok(Reply::Query(reply_from_cached(&hit, q, &shared.cfg)))];
        }
    }

    let deadline =
        q.params.timeout.or(shared.cfg.default_timeout).map(|limit| Instant::now() + limit);
    let mut control = RunControl::new();
    if let Some(at) = deadline {
        control = control.deadline(at);
    }
    let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).insert(id, control.clone());
    if shared.shutdown.load(Ordering::SeqCst) {
        control.cancel();
    }

    let (tx, rx) = sync_channel::<Result<OctReport, OctError>>(1);
    let job = {
        let shared = Arc::clone(shared);
        let params = q.params.clone();
        let control = control.clone();
        let trace_ctx = q.trace;
        Box::new(move || {
            let result = execute_oct(&shared, &graph, &params, control, id, trace_ctx);
            shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
            let _ = tx.send(result);
        })
    };
    if let Err(err) = shared.admission.submit(job) {
        shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
        return vec![reject(shared, err)];
    }

    let Some((result, pipelined)) = wait_for_result(shared, stream, &control, &rx) else {
        return Vec::new();
    };

    shared.queries.fetch_add(1, Ordering::Relaxed);
    let response = match result {
        Some(Ok(report)) => {
            if report.stop == StopReason::Completed {
                let value = CachedResult {
                    bicliques: if q.params.count_only {
                        None
                    } else {
                        Some(Arc::new(report.bicliques.clone()))
                    },
                    emitted: report.stats.emitted,
                    elapsed: report.stats.elapsed,
                };
                shared.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(
                    fingerprint,
                    key,
                    value,
                );
            }
            Response::Ok(Reply::Query(reply_from_oct(&report, q, &shared.cfg)))
        }
        Some(Err(e)) => Response::Err { code: errcode::INTERNAL, message: e.to_string() },
        None => Response::Err {
            code: errcode::INTERNAL,
            message: "query worker disappeared without a result".into(),
        },
    };
    let mut out = vec![response];
    out.extend(pipelined);
    out
}

/// Runs one admitted general-graph query on the current (worker) thread
/// through the OCT driver, with the same task-counter and trace plumbing
/// as [`execute`]. A `threads: 0` hint ("all cores") is resolved here —
/// the driver requires an explicit positive count.
fn execute_oct(
    shared: &Shared,
    graph: &GeneralGraph,
    params: &QueryParams,
    control: RunControl,
    id: u64,
    trace_ctx: Option<TraceContext>,
) -> Result<OctReport, OctError> {
    let trace = open_trace(shared, id, trace_ctx);
    let mut fan = FanoutObserver::new();
    fan.push(Box::new(&shared.task_counter));
    if let Some(t) = &trace {
        fan.push(Box::new(t));
    }
    let threads = if params.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        params.threads
    };
    let mut run = OctEnumeration::new(graph)
        .algorithm(params.algorithm)
        .order(params.order)
        .threads(threads)
        .control(control)
        .observer(&fan);
    if let Some(n) = params.max_bicliques {
        run = run.max_bicliques(n);
    }
    let result = if params.count_only { run.count() } else { run.collect() };
    if let Some(t) = &trace {
        let _ = t.flush();
    }
    result
}

/// The typed response for a refused admission.
fn reject(shared: &Shared, err: SubmitError) -> Response {
    match err {
        SubmitError::Busy { queued, capacity } => {
            shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
            Response::Busy { queued, capacity }
        }
        SubmitError::Closed => Response::Err {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".into(),
        },
    }
}

/// Blocks until the admitted job answers on `rx`, keeping the socket
/// serviced so pipelined `CANCEL`/`SHUTDOWN` frames still work while the
/// job runs. Returns `None` when the client vanished (the work is
/// cancelled and there is no one to answer); otherwise the job's result
/// (`None` inside when the worker died without reporting) plus any
/// responses to append after the query's own.
fn wait_for_result<T>(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    control: &RunControl,
    rx: &Receiver<T>,
) -> Option<(Option<T>, Vec<Response>)> {
    let mut pipelined: Vec<Response> = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(result) => return Some((Some(result), pipelined)),
            Err(TryRecvError::Disconnected) => return Some((None, pipelined)),
            Err(TryRecvError::Empty) => {}
        }
        match read_frame(stream, shared.cfg.max_frame_bytes, FRAME_PATIENCE) {
            Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Frame(payload)) => match Request::decode(&payload) {
                // Absorbed: the query's own reply (stop = cancelled,
                // checkpoint included) is the acknowledgement.
                Ok(Request::Cancel) => control.cancel(),
                Ok(Request::Shutdown) => {
                    trigger_shutdown(shared);
                    pipelined.push(Response::Ok(Reply::ShuttingDown));
                }
                Ok(_) => pipelined.push(Response::Err {
                    code: errcode::BAD_REQUEST,
                    message: "a query is in flight; only CANCEL or SHUTDOWN may be pipelined"
                        .into(),
                }),
                Err(e) => pipelined.push(Response::Err {
                    code: errcode::BAD_REQUEST,
                    message: e.to_string(), // xtask-allow: hot-alloc-loop (malformed-request error path)
                }),
            },
            // Client gone or broken: stop the work, let the worker wind
            // down in the background, answer no one.
            Ok(ReadOutcome::Closed) | Err(_) => {
                control.cancel();
                return None;
            }
        }
    }
}

/// The worker half of coordinator mode: validates and resumes one
/// frontier shard. Same admission, cancellation, and shutdown-drain
/// semantics as a full query, but the reply rides the `QUERY_SHARD` tag
/// and the result cache is bypassed in both directions.
fn handle_shard_query(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    s: &ShardRequest,
) -> Vec<Response> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return vec![Response::Err {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".into(),
        }];
    }
    let Some(entry) = shared.registry.get(&s.graph) else {
        return vec![Response::Err {
            code: errcode::UNKNOWN_GRAPH,
            message: format!("no graph named '{}' (LOAD it first)", s.graph),
        }];
    };
    // Frontier shards are fragments of the bipartite engine's root set;
    // general graphs run whole through the OCT driver and are never
    // sharded, so a shard aimed at one is a kind error, not a bad shard.
    let Some(graph) = entry.bipartite().map(Arc::clone) else {
        return vec![Response::Err {
            code: errcode::WRONG_KIND,
            message: format!("'{}' is a general graph; shards require a bipartite graph", s.graph),
        }];
    };
    let ckpt = match Checkpoint::from_bytes(&s.checkpoint) {
        Ok(c) => c,
        Err(e) => {
            return vec![Response::Err {
                code: errcode::BAD_SHARD,
                message: format!("malformed shard checkpoint: {e}"),
            }]
        }
    };
    if let Err(e) = ckpt.matches(&graph) {
        return vec![Response::Err {
            code: errcode::BAD_SHARD,
            message: format!("shard does not match graph '{}': {e}", s.graph),
        }];
    }

    let deadline =
        s.params.timeout.or(shared.cfg.default_timeout).map(|limit| Instant::now() + limit);
    let mut control = RunControl::new();
    if let Some(at) = deadline {
        control = control.deadline(at);
    }
    let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).insert(id, control.clone());
    if shared.shutdown.load(Ordering::SeqCst) {
        control.cancel();
    }

    let (tx, rx) = sync_channel::<Result<Report, MbeError>>(1);
    let job = {
        let shared = Arc::clone(shared);
        let graph = Arc::clone(&graph);
        let params = s.params.clone();
        let control = control.clone();
        let trace_ctx = s.trace;
        Box::new(move || {
            let result = execute_shard(&shared, &graph, &params, ckpt, control, id, trace_ctx);
            shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
            let _ = tx.send(result);
        })
    };
    if let Err(err) = shared.admission.submit(job) {
        shared.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
        return vec![reject(shared, err)];
    }

    let Some((result, pipelined)) = wait_for_result(shared, stream, &control, &rx) else {
        return Vec::new();
    };

    shared.queries.fetch_add(1, Ordering::Relaxed);
    let response = match result {
        Some(Ok(report)) => Response::Ok(Reply::Shard(shard_reply(&report, s))),
        // Same contained-panic contract as QUERY: the partial report and
        // checkpoint go back so the coordinator can re-steal the rest.
        Some(Err(MbeError::WorkerPanic { report, .. })) => {
            Response::Ok(Reply::Shard(shard_reply(&report, s)))
        }
        Some(Err(e)) => Response::Err { code: errcode::INTERNAL, message: e.to_string() },
        None => Response::Err {
            code: errcode::INTERNAL,
            message: "shard worker disappeared without a result".into(),
        },
    };
    let mut out = vec![response];
    out.extend(pipelined);
    out
}

/// Runs one admitted query on the current (worker) thread, composing the
/// server-wide task counter with an optional per-request JSONL trace
/// (stamped with the request's distributed trace context, if it carried
/// one).
fn execute(
    shared: &Shared,
    graph: &BipartiteGraph,
    params: &QueryParams,
    control: RunControl,
    id: u64,
    trace_ctx: Option<TraceContext>,
) -> Result<Report, MbeError> {
    let trace = open_trace(shared, id, trace_ctx);
    let mut fan = FanoutObserver::new();
    fan.push(Box::new(&shared.task_counter));
    if let Some(t) = &trace {
        fan.push(Box::new(t));
    }
    let result = run_query(graph, params, control, Some(&fan));
    drop(fan);
    if let Some(t) = &trace {
        let _ = t.flush();
    }
    result
}

/// Runs one admitted shard on the current (worker) thread: the resume
/// path of [`execute`], plus the scripted-fault hook the coordinator
/// harness uses to stage deterministic worker crashes.
fn execute_shard(
    shared: &Shared,
    graph: &BipartiteGraph,
    params: &QueryParams,
    ckpt: Checkpoint,
    control: RunControl,
    id: u64,
    trace_ctx: Option<TraceContext>,
) -> Result<Report, MbeError> {
    let trace = open_trace(shared, id, trace_ctx);
    let mut fan = FanoutObserver::new();
    fan.push(Box::new(&shared.task_counter));
    if let Some(t) = &trace {
        fan.push(Box::new(t));
    }
    let run = Enumeration::new(graph)
        .threads(params.threads)
        .control(control)
        .resume(ckpt)
        .observer(&fan);
    #[cfg(feature = "fault-injection")]
    let run = match &shared.cfg.fault_plan {
        Some(plan) => run.faults(plan.clone()),
        None => run,
    };
    let result = if params.count_only { run.count() } else { run.collect() };
    if let Some(t) = &trace {
        let _ = t.flush();
    }
    result
}

/// Opens the per-request JSONL trace when tracing is configured
/// (best-effort: trace I/O problems never fail a query). The filename
/// carries this process's pid so workers sharing a `--trace-dir` with
/// their coordinator (or a restarted self) never clobber each other's
/// request ids. A distributed trace context, when present, is stamped
/// onto the trace header so it joins the coordinator's span log.
fn open_trace(
    shared: &Shared,
    id: u64,
    trace_ctx: Option<TraceContext>,
) -> Option<JsonlTraceObserver> {
    shared.cfg.trace_dir.as_ref().and_then(|dir| {
        let path = dir.join(format!("req-{}-{id}.jsonl", std::process::id()));
        match JsonlTraceObserver::create(path.to_string_lossy().as_ref()) {
            Ok(obs) => {
                if let Some(ctx) = trace_ctx {
                    obs.set_trace_context(ctx.trace_id, ctx.parent_span);
                }
                Some(obs)
            }
            Err(e) => {
                eprintln!("mbe-serve: cannot open trace {}: {e}", path.display());
                None
            }
        }
    })
}

/// Opens the coordinator's distributed span log when tracing is
/// configured (best-effort, like [`open_trace`]). The trace id folds the
/// coordinator's pid with the request id, so coordinators sharing a
/// trace dir across restarts never collide on trace ids.
fn open_span_log(shared: &Shared, id: u64) -> Option<SpanLog> {
    shared.cfg.trace_dir.as_ref().and_then(|dir| {
        let pid = u64::from(std::process::id());
        let trace_id = (pid << 32) | (id & 0xFFFF_FFFF);
        let path = dir.join(format!("coord-{pid}-{id}.jsonl"));
        match SpanLog::create(path.to_string_lossy().as_ref(), trace_id) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("mbe-serve: cannot open span log {}: {e}", path.display());
                None
            }
        }
    })
}
