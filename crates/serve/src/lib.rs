//! `mbe-serve`: a multi-client maximal-biclique query service.
//!
//! The workspace's enumeration engines answer one-shot CLI runs; this
//! crate makes them resident. A [`Server`] owns:
//!
//! - a **graph registry** ([`registry::GraphRegistry`]) of named graphs
//!   behind `Arc`, each pinned by the FNV-1a fingerprint checkpoints use
//!   ([`mbe::checkpoint::graph_fingerprint`]);
//! - an **admission controller** ([`admission::Admission`]) — a bounded
//!   worker pool fed by a bounded queue; when the queue is full a query
//!   is rejected with a typed [`protocol::Response::Busy`] (the HTTP-429
//!   shape) instead of blocking the connection;
//! - a **result cache** ([`mbe::service::ResultCache`]) keyed by
//!   `(graph fingerprint, canonical query params)` with byte-budgeted
//!   LRU eviction; hit/miss counters surface through the `STATS` verb.
//!
//! Clients speak a small versioned, length-prefixed TCP protocol
//! ([`wire`], [`protocol`]): `LOAD`, `LIST`, `QUERY`, `CANCEL`, `STATS`,
//! `SHUTDOWN`, `QUERY_SHARD`, `LOAD_GENERAL`. Graphs registered via
//! `LOAD_GENERAL` are *general* (non-bipartite); queries on them route
//! through the `oct` crate's odd-cycle-transversal driver and reject
//! bipartite-only parameters with the `wrong-kind` error code.
//! In-flight queries are cancellable per
//! connection (a pipelined `CANCEL` frame flips the query's
//! [`mbe::RunControl`]), and `SHUTDOWN` drains running queries by
//! cancelling them — each stopped query returns its checkpoint to its
//! client, so no work is silently lost. Everything is `std`-only: no
//! async runtime, no serialization framework, no network dependencies.
//!
//! A server configured with [`CoordinatorConfig`] additionally runs
//! **coordinator mode** ([`coordinator`]): shardable queries are split
//! along their checkpoint root frontier and fanned out to stock workers
//! as `QUERY_SHARD` requests, with retry, backoff, quarantine,
//! checkpoint re-steal, straggler speculation, and local-fallback
//! degradation (see DESIGN.md §8c).
//!
//! See DESIGN.md "§8b Service layer" for the frame layout, the
//! registry/cache/admission semantics, and the shutdown-drain matrix.

#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod coordinator;
mod health;
pub mod protocol;
pub mod registry;
pub mod server;
mod shard;
mod span;
pub mod telemetry;
pub mod wire;

pub use admission::{Admission, QueueWait, SubmitError};
pub use client::{Canceller, Client};
pub use coordinator::{CoordinatorConfig, DistError, DistOutcome};
pub use protocol::{
    DistSummary, GraphInfo, QueryReply, QueryRequest, Reply, Request, Response, ServerStats,
    ShardRequest, TraceContext,
};
pub use registry::{GraphData, GraphEntry, GraphRegistry};
pub use server::{Server, ServerConfig, ServerHandle, ServerSummary};
pub use telemetry::{MetricsSnapshot, OpSnapshot, ServerMetrics, WorkerStatus};
pub use wire::WireError;

use std::fmt;

/// Errors surfaced by the client API and the server entry points.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A frame could not be read, written, or decoded.
    Wire(WireError),
    /// The server's admission queue was full (the typed 429): the request
    /// was rejected without being queued and may be retried later.
    Busy {
        /// Requests queued when the rejection happened.
        queued: u32,
        /// The queue's capacity.
        capacity: u32,
    },
    /// The server answered with a typed error response.
    Remote {
        /// A `protocol::errcode` constant.
        code: u8,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server's reply did not match the request that was sent.
    UnexpectedReply(&'static str),
    /// The caller abandoned the wait for a reply (see
    /// [`Client::call_until`]) — the connection may still be healthy.
    Aborted,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Busy { queued, capacity } => {
                write!(f, "server busy: admission queue full ({queued}/{capacity}); retry later")
            }
            ServeError::Remote { code, message } => {
                write!(f, "server error {}: {message}", protocol::errcode::label(*code))
            }
            ServeError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
            ServeError::Aborted => f.write_str("reply wait abandoned by the caller"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}
