//! Coordinator mode: fault-tolerant sharded enumeration across workers.
//!
//! A coordinator is an ordinary `mbe-serve` instance that answers the
//! unchanged client protocol, but executes shardable queries by
//! scatter/gather: the query's root frontier (an
//! [`mbe::checkpoint::initial_checkpoint`]) is [`split`](Checkpoint::split)
//! into size-balanced shards, fanned out to stock workers as
//! `QUERY_SHARD` requests, and the duplicate-free shard replies are
//! merged into one answer carrying a [`DistSummary`].
//!
//! The robustness ladder, in escalation order:
//!
//! 1. **Retry with jittered exponential backoff** — a failed attempt
//!    re-queues its shard; nothing was merged, so re-running the same
//!    checkpoint is exact.
//! 2. **Re-steal** — a worker lost mid-shard (connection died after
//!    dispatch) or answering with a stopped-but-checkpointed reply
//!    (contained panic, shutdown) has its remaining frontier re-queued to
//!    a healthy worker; banked partial output merges with the eventual
//!    completion (the checkpoint contract keeps the union exact).
//! 3. **Quarantine** — workers crossing a consecutive-failure threshold
//!    are sidelined and periodically re-probed with `STATS`.
//! 4. **Speculation** — shards running past a p99-based threshold are
//!    duplicated onto another worker; the first completion wins.
//! 5. **Local fallback** — with every worker quarantined (or a shard's
//!    retry budget exhausted), the remaining frontier is merged and
//!    enumerated locally, and the reply is flagged `degraded`.
//!
//! See DESIGN.md §8c for the full failure matrix.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use bigraph::BipartiteGraph;
use mbe::checkpoint::initial_checkpoint;
use mbe::service::{run_shard, QueryParams};
use mbe::{Biclique, Checkpoint, MbeOptions, RunControl, StopReason};

use crate::client::Client;
use crate::health::HealthBoard;
use crate::protocol::{errcode, DistSummary, ShardRequest, TraceContext};
use crate::shard::ShardBoard;
use crate::span::SpanLog;
use crate::telemetry::{ServerMetrics, WorkerStatus};
use crate::ServeError;

/// Main-loop pacing: how often the coordinator rechecks cancellation,
/// deadline, health, and stragglers.
const POLL: Duration = Duration::from_millis(10);

/// Sleep slice for backoff/quarantine waits, so draining stays prompt.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// Tunables of a coordinator. [`CoordinatorConfig::new`] applies the
/// defaults; everything is overridable field-by-field.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker addresses (`host:port`) to fan shards out to.
    pub workers: Vec<String>,
    /// Frontier shards cut per worker (more shards = finer re-steal
    /// granularity and better balance, at more per-shard overhead).
    pub shards_per_worker: u32,
    /// Failed attempts a shard may accumulate before it is stranded and
    /// handed to the fallback ladder.
    pub max_attempts: u32,
    /// First retry backoff; doubles per consecutive failure of a worker.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-attempt reply budget: a worker silent for this long loses the
    /// shard (it is re-stolen) even if the connection stays open.
    pub attempt_timeout: Duration,
    /// Straggler threshold multiplier over the p99 shard completion time.
    pub speculate_factor: f64,
    /// Floor of the straggler threshold — never speculate earlier.
    pub speculate_min: Duration,
    /// Reply budget for health probes and load broadcasts.
    pub probe_patience: Duration,
    /// Consecutive failures that quarantine a worker.
    pub quarantine_after: u32,
    /// How long a quarantined worker sits out before re-probing.
    pub quarantine_for: Duration,
    /// When every worker is lost (or a shard strands), enumerate the
    /// remaining frontier locally and flag the reply `degraded` instead
    /// of failing with `no-workers`.
    pub local_fallback: bool,
}

impl CoordinatorConfig {
    /// Defaults sized for a small LAN deployment.
    pub fn new(workers: Vec<String>) -> Self {
        CoordinatorConfig {
            workers,
            shards_per_worker: 4,
            max_attempts: 4,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            attempt_timeout: Duration::from_secs(3600),
            speculate_factor: 3.0,
            speculate_min: Duration::from_secs(2),
            probe_patience: Duration::from_secs(2),
            quarantine_after: 3,
            quarantine_for: Duration::from_secs(5),
            local_fallback: true,
        }
    }
}

/// A distributed query's merged result plus provenance.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Why the distributed run ended.
    pub stop: StopReason,
    /// Merged emission count across shards.
    pub emitted: u64,
    /// Wall-clock of the whole scatter/gather, microseconds.
    pub elapsed_us: u64,
    /// Merged bicliques (duplicate-free by the first-writer rule).
    pub bicliques: Vec<Biclique>,
    /// Serialized merged checkpoint of the unfinished remainder, for
    /// stopped (cancelled/deadline) distributed runs.
    pub checkpoint: Option<Vec<u8>>,
    /// Distribution provenance for the reply.
    pub dist: DistSummary,
}

/// Why a distributed query failed outright (not merely degraded).
#[derive(Debug, Clone)]
pub enum DistError {
    /// Every worker is lost and local fallback is disabled.
    NoWorkers,
    /// An unrecoverable coordinator-side failure.
    Internal(String),
}

impl DistError {
    /// The matching protocol error code.
    pub fn code(&self) -> u8 {
        match self {
            DistError::NoWorkers => errcode::NO_WORKERS,
            DistError::Internal(_) => errcode::INTERNAL,
        }
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::NoWorkers => {
                f.write_str("all workers lost or quarantined and local fallback is disabled")
            }
            DistError::Internal(m) => write!(f, "distributed query failed: {m}"),
        }
    }
}

/// Long-lived coordinator state: worker health persists across queries,
/// so a worker quarantined by one query stays sidelined for the next.
pub(crate) struct Coordinator {
    cfg: CoordinatorConfig,
    health: HealthBoard,
    /// Graph name → server-side path, recorded at `LOAD` so a worker
    /// answering `unknown-graph` can be brought up to date lazily.
    hints: Mutex<HashMap<String, String>>,
}

impl Coordinator {
    pub(crate) fn new(cfg: CoordinatorConfig) -> Self {
        let health = HealthBoard::new(cfg.workers.len());
        Coordinator { cfg, health, hints: Mutex::new(HashMap::new()) }
    }

    /// Records a successful `LOAD` and broadcasts it to every worker,
    /// best-effort — a worker that misses it is caught up lazily when a
    /// shard bounces with `unknown-graph`. The broadcast runs on a
    /// detached thread: serial probes of dead workers would otherwise
    /// stack `probe_patience` timeouts onto the client's `LOAD` reply.
    pub(crate) fn note_load(&self, name: &str, path: &str) {
        self.hints
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), path.to_string());
        let workers = self.cfg.workers.clone();
        let patience = self.cfg.probe_patience;
        let name = name.to_string();
        let path = path.to_string();
        let _ = std::thread::Builder::new().name("mbe-coord-load".into()).spawn(move || {
            for addr in workers {
                if let Ok(client) = Client::connect(addr.as_str()) {
                    let _ = client.wait(patience).load(&name, &path);
                }
            }
        });
    }

    /// Per-worker health telemetry, index-aligned with
    /// [`CoordinatorConfig::workers`].
    pub(crate) fn worker_status(&self) -> Vec<WorkerStatus> {
        self.health.status()
    }

    /// Executes one shardable query by scatter/gather. `deadline` is the
    /// query's admission-time deadline (`control` carries the matching
    /// cancellation flag). `metrics` receives live shard-attempt
    /// counters; `span` receives the query's distributed span log (both
    /// optional — telemetry never gates enumeration).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &self,
        graph: &BipartiteGraph,
        graph_name: &str,
        params: &QueryParams,
        control: &RunControl,
        deadline: Option<Instant>,
        metrics: Option<&ServerMetrics>,
        span: Option<&SpanLog>,
    ) -> Result<DistOutcome, DistError> {
        let started = Instant::now();
        let workers = self.cfg.workers.len() as u32;
        let opts = MbeOptions::new(params.algorithm).order(params.order);
        let whole = initial_checkpoint(graph, &opts);
        if whole.frontier.is_empty() {
            if let Some(s) = span {
                s.coord_start(0, u64::from(workers));
                s.coord_end("completed", 0, 0, 0, false);
            }
            return Ok(DistOutcome {
                stop: StopReason::Completed,
                emitted: 0,
                elapsed_us: started.elapsed().as_micros() as u64,
                bicliques: Vec::new(),
                checkpoint: None,
                dist: DistSummary { workers, ..DistSummary::default() },
            });
        }
        let target = self.cfg.workers.len().max(1) * self.cfg.shards_per_worker.max(1) as usize;
        let parts = whole
            .split(graph, target)
            .map_err(|e| DistError::Internal(format!("frontier split failed: {e}")))?;
        let board = ShardBoard::new(parts, self.cfg.max_attempts);
        let shards = board.shard_count() as u32;
        if let Some(s) = span {
            s.coord_start(u64::from(shards), u64::from(workers));
        }

        let mut stop = StopReason::Completed;
        let mut degraded = false;
        let mut tail: Option<Vec<u8>> = None;
        let mut error: Option<DistError> = None;

        std::thread::scope(|scope| {
            for (widx, addr) in self.cfg.workers.iter().enumerate() {
                let board = &board;
                scope.spawn(move || {
                    self.drive_worker(
                        widx, addr, board, graph_name, params, deadline, metrics, span,
                    );
                });
            }
            loop {
                if board.finished() {
                    break;
                }
                if control.is_cancelled() {
                    stop = StopReason::Cancelled;
                    tail = claim_tail(&board);
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    stop = StopReason::Deadline;
                    tail = claim_tail(&board);
                    break;
                }
                let no_workers = self.health.healthy_count() == 0;
                if no_workers || board.has_stranded() {
                    if !self.cfg.local_fallback {
                        error = Some(if no_workers {
                            DistError::NoWorkers
                        } else {
                            DistError::Internal("a shard exhausted its retry budget".into())
                        });
                        break;
                    }
                    match self.run_locally(graph, params, control, &board, metrics, span) {
                        // The trigger resolved itself (e.g. a running
                        // speculative attempt completed the stranded
                        // shard): nothing ran locally, nothing degraded.
                        Ok(LocalRun::NothingPending) => {}
                        Ok(LocalRun::Completed) => degraded = true,
                        Ok(LocalRun::Stopped(local_stop, local_tail)) => {
                            degraded = true;
                            stop = local_stop;
                            tail = local_tail;
                            break;
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                    continue;
                }
                if let Some(p99) = board.p99_duration() {
                    let threshold =
                        self.cfg.speculate_min.max(p99.mul_f64(self.cfg.speculate_factor.max(0.0)));
                    for (idx, epoch) in board.speculate_stragglers(threshold) {
                        if let Some(s) = span {
                            s.speculate(idx as u64, u64::from(epoch));
                        }
                    }
                }
                board.wait_for_change(POLL);
            }
            board.abort();
        });

        if let Some(e) = error {
            if let Some(s) = span {
                s.coord_end("error", 0, 0, 0, false);
            }
            return Err(e);
        }
        let (bicliques, emitted, counters) = board.finish();
        if let Some(s) = span {
            s.coord_end(
                stop.label(),
                u64::from(counters.retries),
                u64::from(counters.resteals),
                u64::from(counters.speculated),
                degraded,
            );
        }
        Ok(DistOutcome {
            stop,
            emitted,
            elapsed_us: started.elapsed().as_micros() as u64,
            bicliques,
            checkpoint: tail,
            dist: DistSummary {
                workers,
                shards,
                retries: counters.retries,
                resteals: counters.resteals,
                speculated: counters.speculated,
                degraded,
            },
        })
    }

    /// Claims the remaining frontier and enumerates it on this thread
    /// (the degradation terminal). Only [`LocalRun::Completed`] and
    /// [`LocalRun::Stopped`] mean local work actually ran — the caller
    /// sets the `degraded` flag on exactly those.
    fn run_locally(
        &self,
        graph: &BipartiteGraph,
        params: &QueryParams,
        control: &RunControl,
        board: &ShardBoard,
        metrics: Option<&ServerMetrics>,
        span: Option<&SpanLog>,
    ) -> Result<LocalRun, DistError> {
        let Some((checkpoints, partials, partial_emitted)) = board.claim_pending() else {
            return Ok(LocalRun::NothingPending);
        };
        if let Some(m) = metrics {
            ServerMetrics::add(&m.shard_stranded_claims, checkpoints.len() as u64);
            ServerMetrics::add(&m.shard_fallbacks, 1);
        }
        if let Some(s) = span {
            s.fallback(checkpoints.len() as u64);
        }
        board.merge_local(partials, partial_emitted);
        let merged = Checkpoint::merge(&checkpoints)
            .map_err(|e| DistError::Internal(format!("cannot merge remaining shards: {e}")))?;
        let report = run_shard(graph, params, merged, control.clone(), None)
            .map_err(|e| DistError::Internal(format!("local fallback failed: {e}")))?;
        let stopped = report.stop;
        let ckpt = report.checkpoint.as_ref().map(Checkpoint::to_bytes);
        board.merge_local(report.bicliques, report.stats.emitted);
        if stopped == StopReason::Completed {
            Ok(LocalRun::Completed)
        } else {
            Ok(LocalRun::Stopped(stopped, ckpt))
        }
    }

    /// One worker's driver loop: pop shards, execute them remotely,
    /// classify failures, and sit out quarantine with periodic probes.
    #[allow(clippy::too_many_arguments)]
    fn drive_worker(
        &self,
        widx: usize,
        addr: &str,
        board: &ShardBoard,
        graph_name: &str,
        params: &QueryParams,
        deadline: Option<Instant>,
        metrics: Option<&ServerMetrics>,
        span: Option<&SpanLog>,
    ) {
        let mut consecutive: u32 = 0;
        loop {
            if !self.serve_quarantine(widx, addr, board) {
                return;
            }
            let Some((idx, epoch, started, ckpt)) = board.next() else { return };
            let span_id = span.map(|s| s.dispatch(idx as u64, u64::from(epoch), widx as u64));
            if let Some(m) = metrics {
                ServerMetrics::add(&m.shard_dispatches, 1);
            }
            let trace = span
                .zip(span_id)
                .map(|(s, sid)| TraceContext { trace_id: s.trace_id(), parent_span: sid });
            let outcome = self.attempt(addr, graph_name, params, deadline, board, &ckpt, trace);
            // Health is charged by outcome *kind*, not by what the board
            // does with the result: an aborted attempt in particular
            // charges nothing — the merged result was already decided,
            // and the worker may be perfectly healthy (see DESIGN §8c).
            match health_charge(&outcome) {
                HealthCharge::Success => {
                    consecutive = 0;
                    self.health.record_success(widx);
                }
                HealthCharge::Failure => {
                    consecutive = consecutive.saturating_add(1);
                    self.health.record_failure(
                        widx,
                        self.cfg.quarantine_after,
                        self.cfg.quarantine_for,
                    );
                }
                HealthCharge::Nothing => {
                    if !matches!(outcome, AttemptOutcome::Aborted) {
                        consecutive = consecutive.saturating_add(1);
                    }
                }
            }
            match outcome {
                AttemptOutcome::Completed(bicliques, emitted) => {
                    let accepted = board.complete(idx, epoch, started, bicliques, emitted);
                    if let (Some(s), Some(sid)) = (span, span_id) {
                        if accepted {
                            s.merge(idx as u64, u64::from(epoch), sid, emitted);
                        } else {
                            s.discard(idx as u64, u64::from(epoch), sid);
                        }
                    }
                }
                AttemptOutcome::Stopped(remaining, partial, partial_emitted) => {
                    // The worker answered — it is alive — but lost the
                    // shard (contained panic, shutdown, deadline): bank
                    // the partial and re-steal the remainder.
                    let requeued = board.resteal(idx, epoch, remaining, partial, partial_emitted);
                    if let (Some(s), Some(sid)) = (span, span_id) {
                        if requeued {
                            s.resteal(idx as u64, u64::from(epoch));
                        } else {
                            s.discard(idx as u64, u64::from(epoch), sid);
                        }
                    }
                }
                // Refused: alive but unable to take the shard right now
                // (busy, draining, catching up on graphs).
                AttemptOutcome::Refused { lost_mid_run }
                | AttemptOutcome::Failed { lost_mid_run } => {
                    let disposition = board.fail(idx, epoch, lost_mid_run);
                    if let Some(s) = span {
                        if disposition != crate::shard::FailDisposition::Stale {
                            if lost_mid_run {
                                s.resteal(idx as u64, u64::from(epoch));
                            } else {
                                s.retry(idx as u64, u64::from(epoch));
                            }
                        }
                    }
                    self.sleep_backoff(board, widx, consecutive);
                }
                // The board aborted while this attempt was in flight: the
                // merged result is already decided (completion, cancel,
                // deadline, or fallback), so drain.
                AttemptOutcome::Aborted => {
                    board.fail(idx, epoch, false);
                    return;
                }
            }
        }
    }

    /// While quarantined: sleep out the sentence, then probe with a
    /// `STATS` round trip; success re-admits, failure re-quarantines.
    /// Returns `false` when the board drained while waiting.
    fn serve_quarantine(&self, widx: usize, addr: &str, board: &ShardBoard) -> bool {
        while self.health.is_quarantined(widx) {
            if board.is_aborted() || board.finished() {
                return false;
            }
            let remaining = self.health.quarantine_remaining(widx);
            if remaining > Duration::ZERO {
                std::thread::sleep(remaining.min(SLEEP_SLICE));
                continue;
            }
            let probed =
                Client::connect(addr).and_then(|c| c.wait(self.cfg.probe_patience).stats()).is_ok();
            if probed {
                self.health.record_success(widx);
            } else {
                self.health.record_failure(
                    widx,
                    self.cfg.quarantine_after,
                    self.cfg.quarantine_for,
                );
            }
        }
        !(board.is_aborted() || board.finished())
    }

    /// One remote shard attempt, classified for the driver loop. The
    /// reply wait is abandoned (→ [`AttemptOutcome::Aborted`]) as soon
    /// as the board aborts, so a hung worker cannot pin
    /// [`Coordinator::run`] past the moment the merged result is known.
    /// `trace` is the dispatch's span context, stamped onto the worker's
    /// own run trace so the two logs join by trace id.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        addr: &str,
        graph_name: &str,
        params: &QueryParams,
        deadline: Option<Instant>,
        board: &ShardBoard,
        ckpt: &Checkpoint,
        trace: Option<TraceContext>,
    ) -> AttemptOutcome {
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let wait = remaining.map_or(self.cfg.attempt_timeout, |r| r.min(self.cfg.attempt_timeout));
        let client = match Client::connect(addr) {
            Ok(c) => c.wait(wait),
            Err(_) => return AttemptOutcome::Failed { lost_mid_run: false },
        };
        let mut client = client;
        let request = ShardRequest {
            graph: graph_name.to_string(),
            params: QueryParams { timeout: remaining, ..params.clone() },
            max_return: u32::MAX,
            checkpoint: ckpt.to_bytes(),
            trace,
        };
        match client.query_shard_until(request, &|| board.is_aborted()) {
            // A reply whose advertised total exceeds the bicliques it
            // actually carries was clipped in transit (a worker applying
            // its client-facing `max_return` cap to an internal shard —
            // a contract violation, see DESIGN §8c). Merging it would
            // silently under-count, and a Completed outcome would cache
            // the truncated list; treat the shard as lost instead, so
            // the retry/strand/fallback ladder keeps the result exact.
            Ok(reply) if truncated(&reply) => AttemptOutcome::Refused { lost_mid_run: true },
            Ok(reply) if reply.stop == StopReason::Completed => {
                AttemptOutcome::Completed(reply.bicliques, reply.emitted)
            }
            Ok(reply) => match reply.checkpoint.as_deref().map(Checkpoint::from_bytes) {
                // A contained panic's checkpoint is best-effort — the
                // panicked task itself is excluded (see mbe's fault
                // tests) — so merging against it would under-count.
                // Every other stop's checkpoint is exact by the resume
                // contract.
                Some(Ok(remaining_ckpt)) if reply.stop != StopReason::WorkerPanicked => {
                    AttemptOutcome::Stopped(remaining_ckpt, reply.bicliques, reply.emitted)
                }
                // No usable checkpoint (or an untrustworthy one):
                // nothing was merged, so discarding the partial and
                // re-running the whole shard from our own record stays
                // exact. That re-run *is* the re-steal.
                _ => AttemptOutcome::Refused { lost_mid_run: true },
            },
            Err(ServeError::Busy { .. }) => AttemptOutcome::Refused { lost_mid_run: false },
            Err(ServeError::Aborted) => AttemptOutcome::Aborted,
            Err(ServeError::Remote { code, .. }) => {
                if code == errcode::UNKNOWN_GRAPH {
                    self.push_graph(addr, graph_name);
                }
                AttemptOutcome::Refused { lost_mid_run: false }
            }
            // Connection died or timed out after dispatch: the worker is
            // lost mid-run; the re-run from our shard record re-steals it.
            Err(_) => AttemptOutcome::Failed { lost_mid_run: true },
        }
    }

    /// Lazily forwards a recorded `LOAD` to a worker that answered
    /// `unknown-graph`.
    fn push_graph(&self, addr: &str, graph_name: &str) {
        let hint =
            self.hints.lock().unwrap_or_else(PoisonError::into_inner).get(graph_name).cloned();
        if let Some(path) = hint {
            if let Ok(client) = Client::connect(addr) {
                let _ = client.wait(self.cfg.probe_patience).load(graph_name, &path);
            }
        }
    }

    /// Jittered exponential backoff, sliced so an abort stays prompt.
    fn sleep_backoff(&self, board: &ShardBoard, widx: usize, consecutive: u32) {
        let mut dur = self.cfg.backoff_base;
        for _ in 1..consecutive.min(16) {
            dur = (dur * 2).min(self.cfg.backoff_cap);
        }
        let seed = (widx as u64) << 32 | u64::from(consecutive);
        let mut left = dur.min(self.cfg.backoff_cap).mul_f64(jitter(seed));
        while left > Duration::ZERO {
            if board.is_aborted() || board.finished() {
                return;
            }
            let slice = left.min(SLEEP_SLICE);
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
}

/// How an attempt's outcome charges the worker's health record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HealthCharge {
    /// The worker answered usefully: reset its failure streak.
    Success,
    /// The worker was unreachable or dropped the connection: one strike.
    Failure,
    /// No verdict on the worker. Covers refusals (alive, just busy or
    /// behind on graphs) and aborted attempts (the merged result was
    /// already decided; the worker may be perfectly healthy).
    Nothing,
}

/// Maps an attempt outcome to its health charge — the single place the
/// "aborted attempts charge no failure" rule lives (DESIGN §8c).
fn health_charge(outcome: &AttemptOutcome) -> HealthCharge {
    match outcome {
        AttemptOutcome::Completed(..) | AttemptOutcome::Stopped(..) => HealthCharge::Success,
        AttemptOutcome::Failed { .. } => HealthCharge::Failure,
        AttemptOutcome::Refused { .. } | AttemptOutcome::Aborted => HealthCharge::Nothing,
    }
}

/// What one remote attempt amounted to.
enum AttemptOutcome {
    /// The shard ran to completion: its bicliques and emission count.
    Completed(Vec<Biclique>, u64),
    /// Stopped early with a usable remaining-frontier checkpoint plus
    /// the partial output delivered before the stop.
    Stopped(Checkpoint, Vec<Biclique>, u64),
    /// The worker declined or lost the shard without yielding output.
    Refused { lost_mid_run: bool },
    /// The worker could not be reached or the connection broke.
    Failed { lost_mid_run: bool },
    /// The board aborted mid-wait; the driver should drain.
    Aborted,
}

/// How one local-fallback invocation resolved.
enum LocalRun {
    /// Nothing was pending — no local enumeration ran.
    NothingPending,
    /// The claimed remainder completed locally.
    Completed,
    /// The local run itself was stopped (cancel/deadline): the stop
    /// reason and the serialized remaining checkpoint.
    Stopped(StopReason, Option<Vec<u8>>),
}

/// `true` when a shard reply advertises more bicliques than it carries —
/// it was clipped somewhere and must not be merged. (Count-only shards
/// advertise `total = 0` with an empty list, so they never trip this.)
fn truncated(reply: &crate::protocol::QueryReply) -> bool {
    reply.total > reply.bicliques.len() as u64
}

/// Claims the unfinished remainder and serializes its merged checkpoint
/// (for stopped distributed runs); banked partials merge into the board.
fn claim_tail(board: &ShardBoard) -> Option<Vec<u8>> {
    let (checkpoints, partials, partial_emitted) = board.claim_pending()?;
    board.merge_local(partials, partial_emitted);
    Checkpoint::merge(&checkpoints).ok().map(|m| m.to_bytes())
}

/// Deterministic jitter in `[0.5, 1.5)` from a xorshift-mixed seed — no
/// RNG dependency, and reproducible given the same failure sequence.
fn jitter(seed: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    0.5 + (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    fn test_shards(k: usize) -> Vec<Checkpoint> {
        let g = bigraph::BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3)],
        )
        .unwrap();
        let opts = MbeOptions::new(mbe::Algorithm::Mbet);
        initial_checkpoint(&g, &opts).split(&g, k).unwrap()
    }

    #[test]
    fn quarantined_worker_is_readmitted_by_a_stats_probe() {
        // A real server on a loopback port is the probe target: the
        // re-admission path is a live STATS round trip, not a mock.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        let mut cfg = CoordinatorConfig::new(vec![addr.clone()]);
        cfg.quarantine_after = 3;
        cfg.quarantine_for = Duration::from_millis(10);
        let coord = Coordinator::new(cfg);
        for _ in 0..3 {
            coord.health.record_failure(0, 3, Duration::from_millis(10));
        }
        let before = coord.worker_status();
        assert!(!before[0].healthy, "three strikes quarantine the worker");
        assert_eq!(before[0].quarantines, 1);
        assert_eq!(before[0].readmissions, 0);

        // Pending work keeps serve_quarantine in its probe loop: it
        // sits out the sentence, probes, and re-admits on success.
        let board = ShardBoard::new(test_shards(2), 4);
        assert!(coord.serve_quarantine(0, &addr, &board), "board still has work");
        let after = coord.worker_status();
        assert!(after[0].healthy, "a successful STATS probe re-admits");
        assert_eq!(after[0].readmissions, 1);

        handle.shutdown();
        let _ = join.join();
    }

    #[test]
    fn jitter_is_bounded_and_spread() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..256u64 {
            let j = jitter(seed);
            assert!((0.5..1.5).contains(&j), "jitter {j} out of range");
            distinct.insert((j * 1e6) as u64);
        }
        assert!(distinct.len() > 200, "jitter should spread, got {}", distinct.len());
    }

    #[test]
    fn dist_error_maps_to_protocol_codes() {
        assert_eq!(DistError::NoWorkers.code(), errcode::NO_WORKERS);
        assert_eq!(DistError::Internal("x".into()).code(), errcode::INTERNAL);
    }

    #[test]
    fn health_charge_spares_refused_and_aborted_attempts() {
        assert_eq!(health_charge(&AttemptOutcome::Completed(Vec::new(), 0)), HealthCharge::Success);
        assert_eq!(
            health_charge(&AttemptOutcome::Failed { lost_mid_run: true }),
            HealthCharge::Failure
        );
        // A refusal means the worker answered — busy or behind on
        // graphs, not broken — and an aborted attempt means the merged
        // result was already decided elsewhere. Neither is a strike.
        assert_eq!(
            health_charge(&AttemptOutcome::Refused { lost_mid_run: false }),
            HealthCharge::Nothing
        );
        assert_eq!(health_charge(&AttemptOutcome::Aborted), HealthCharge::Nothing);
    }
}
