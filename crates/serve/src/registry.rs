//! Named-graph registry.
//!
//! Graphs are loaded once, fingerprinted with the same FNV-1a digest
//! checkpoints use ([`mbe::checkpoint::graph_fingerprint`]), and shared
//! behind `Arc` so concurrent queries never copy a graph. Registration
//! is idempotent: re-loading a name with an identical fingerprint is a
//! no-op success, while binding it to *different* bytes is a conflict —
//! cached results are keyed by fingerprint, so silently swapping a
//! graph under a name would serve stale answers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use bigraph::{BipartiteGraph, GeneralGraph};
use mbe::checkpoint::graph_fingerprint;

use crate::protocol::GraphInfo;

/// The structure a registry entry holds: a bipartite graph served by the
/// stock enumeration engine, or a general graph served via the OCT
/// driver. The two kinds share one namespace — a name binds to exactly
/// one graph regardless of kind.
#[derive(Debug)]
pub enum GraphData {
    /// Bipartite edge list (`LOAD`).
    Bipartite(Arc<BipartiteGraph>),
    /// General edge list (`LOAD_GENERAL`).
    General(Arc<GeneralGraph>),
}

/// One registered graph.
#[derive(Debug)]
pub struct GraphEntry {
    /// Registry name.
    pub name: String,
    /// The shared graph, tagged by kind.
    pub data: GraphData,
    /// FNV-1a fingerprint of the graph's structure. Bipartite and
    /// general fingerprints are computed by different digests, so the
    /// same name can never silently swap kinds without a conflict.
    pub fingerprint: u64,
}

impl GraphEntry {
    /// The bipartite graph, when this entry holds one.
    pub fn bipartite(&self) -> Option<&Arc<BipartiteGraph>> {
        match &self.data {
            GraphData::Bipartite(g) => Some(g),
            GraphData::General(_) => None,
        }
    }

    /// The general graph, when this entry holds one.
    pub fn general(&self) -> Option<&Arc<GeneralGraph>> {
        match &self.data {
            GraphData::General(g) => Some(g),
            GraphData::Bipartite(_) => None,
        }
    }

    /// Summary for `LOAD`/`LIST` replies. General graphs report `|V|`
    /// in `num_u` and 0 in `num_v` — [`GraphInfo`]'s shape is pinned by
    /// the minor-0 wire compat tests, so kind is not a wire field.
    pub fn info(&self) -> GraphInfo {
        match &self.data {
            GraphData::Bipartite(g) => GraphInfo {
                name: self.name.clone(),
                fingerprint: self.fingerprint,
                num_u: g.num_u() as u64,
                num_v: g.num_v() as u64,
                num_edges: g.num_edges() as u64,
            },
            GraphData::General(g) => GraphInfo {
                name: self.name.clone(),
                fingerprint: self.fingerprint,
                num_u: g.num_vertices() as u64,
                num_v: 0,
                num_edges: g.num_edges() as u64,
            },
        }
    }
}

/// Thread-safe name → graph map.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    inner: RwLock<HashMap<String, Arc<GraphEntry>>>,
    loads: AtomicU64,
    conflicts: AtomicU64,
}

/// Why [`GraphRegistry::insert`] refused a binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameConflict {
    /// The contested name.
    pub name: String,
    /// Fingerprint already bound to the name.
    pub existing: u64,
    /// Fingerprint of the rejected graph.
    pub offered: u64,
}

impl GraphRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`. Idempotent when the name already
    /// maps to a graph with the same fingerprint; a different fingerprint
    /// is a [`NameConflict`]. Returns the (existing or new) entry.
    pub fn insert(
        &self,
        name: &str,
        graph: BipartiteGraph,
    ) -> Result<Arc<GraphEntry>, NameConflict> {
        let fingerprint = graph_fingerprint(&graph);
        self.insert_data(name, GraphData::Bipartite(Arc::new(graph)), fingerprint)
    }

    /// Registers a general graph under `name`, with the same idempotency
    /// and conflict rules as [`GraphRegistry::insert`]. A name already
    /// bound to a bipartite graph conflicts (the kinds use distinct
    /// fingerprint digests).
    pub fn insert_general(
        &self,
        name: &str,
        graph: GeneralGraph,
    ) -> Result<Arc<GraphEntry>, NameConflict> {
        let fingerprint = graph.fingerprint();
        self.insert_data(name, GraphData::General(Arc::new(graph)), fingerprint)
    }

    fn insert_data(
        &self,
        name: &str,
        data: GraphData,
        fingerprint: u64,
    ) -> Result<Arc<GraphEntry>, NameConflict> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = map.get(name) {
            // Same fingerprint implies same digest domain, hence same
            // kind: an idempotent replay of the original load.
            if existing.fingerprint == fingerprint {
                return Ok(Arc::clone(existing));
            }
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(NameConflict {
                name: name.to_string(),
                existing: existing.fingerprint,
                offered: fingerprint,
            });
        }
        let entry = Arc::new(GraphEntry { name: name.to_string(), data, fingerprint });
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner).get(name).map(Arc::clone)
    }

    /// All entries, sorted by name (stable `LIST` output).
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<_> = map.values().map(Arc::clone).collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` when no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `LOAD` attempts (idempotent re-loads and conflicts
    /// included).
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Lifetime `LOAD` attempts rejected with a [`NameConflict`].
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(4, 4, edges).unwrap()
    }

    #[test]
    fn insert_get_list() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        let e = reg.insert("b", graph(&[(0, 0), (0, 1)])).unwrap();
        reg.insert("a", graph(&[(1, 1)])).unwrap();
        assert_eq!(reg.len(), 2);
        let got = reg.get("b").unwrap();
        assert_eq!(got.fingerprint, e.fingerprint);
        assert_eq!(got.info().num_edges, 2);
        assert!(reg.get("missing").is_none());
        let names: Vec<_> = reg.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn reinsert_same_graph_is_idempotent() {
        let reg = GraphRegistry::new();
        let first = reg.insert("g", graph(&[(0, 0), (1, 1)])).unwrap();
        let again = reg.insert("g", graph(&[(0, 0), (1, 1)])).unwrap();
        assert_eq!(first.fingerprint, again.fingerprint);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn reinsert_different_graph_conflicts() {
        let reg = GraphRegistry::new();
        let first = reg.insert("g", graph(&[(0, 0)])).unwrap();
        let err = reg.insert("g", graph(&[(0, 0), (2, 2)])).unwrap_err();
        assert_eq!(err.name, "g");
        assert_eq!(err.existing, first.fingerprint);
        assert_ne!(err.offered, err.existing);
        // The original binding survives the rejected attempt.
        assert_eq!(reg.get("g").unwrap().fingerprint, first.fingerprint);
    }

    #[test]
    fn general_graphs_share_the_namespace() {
        let reg = GraphRegistry::new();
        let tri = GeneralGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let e = reg.insert_general("tri", tri.clone()).unwrap();
        assert!(e.general().is_some());
        assert!(e.bipartite().is_none());
        let info = e.info();
        assert_eq!((info.num_u, info.num_v, info.num_edges), (3, 0, 3));

        // Idempotent replay of the same general graph.
        let again = reg.insert_general("tri", tri.clone()).unwrap();
        assert_eq!(again.fingerprint, e.fingerprint);
        assert_eq!(reg.len(), 1);

        // The name is taken regardless of kind: a bipartite bind under
        // the same name conflicts, and vice versa.
        assert!(reg.insert("tri", graph(&[(0, 0)])).is_err());
        reg.insert("bip", graph(&[(0, 0)])).unwrap();
        assert!(reg.insert_general("bip", tri).is_err());
    }

    #[test]
    fn load_and_conflict_counters_track_insert_outcomes() {
        let reg = GraphRegistry::new();
        assert_eq!((reg.loads(), reg.conflicts()), (0, 0));
        reg.insert("g", graph(&[(0, 0)])).unwrap();
        reg.insert("g", graph(&[(0, 0)])).unwrap(); // idempotent re-load
        reg.insert("g", graph(&[(1, 1)])).unwrap_err(); // conflict
        assert_eq!(reg.loads(), 3, "every attempt is a load");
        assert_eq!(reg.conflicts(), 1);
    }
}
