//! Blocking client for the serve protocol.
//!
//! One [`Client`] owns one connection and speaks strict request/response
//! — except for cancellation: [`Client::canceller`] clones the socket
//! handle so another thread can inject a `CANCEL` frame while this
//! thread is blocked waiting for a query reply. The server absorbs a
//! mid-query `CANCEL` (the query's own reply, with `stop = cancelled`,
//! is the acknowledgement); a `CANCEL` that races past the query's end
//! gets a standalone ack, which [`Client::query`] silently skips.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::{
    GraphInfo, QueryReply, QueryRequest, Reply, Request, Response, ServerStats, ShardRequest,
};
use crate::wire::{read_frame, write_frame, ReadOutcome, WireError};
use crate::ServeError;

/// Socket read timeout: how often the blocked reader rechecks its wait
/// budget.
const POLL: Duration = Duration::from_millis(25);

/// How long a reply may stall mid-frame before the connection is
/// considered broken.
const FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// A blocking connection to an mbe-serve server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    wait: Duration,
}

impl Client {
    /// Connects and configures the socket (read timeout, no Nagle).
    /// The default reply-wait budget is one hour — effectively "until the
    /// query finishes" — tune it with [`Client::wait`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(POLL))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: crate::wire::MAX_FRAME_BYTES,
            wait: Duration::from_secs(3600),
        })
    }

    /// Sets how long to wait for a reply before giving up.
    pub fn wait(mut self, dur: Duration) -> Self {
        self.wait = dur;
        self
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one request and waits for one response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        self.call_until(request, &|| false)
    }

    /// Sends one request and waits for one response, additionally giving
    /// up with [`ServeError::Aborted`] as soon as `give_up` answers
    /// `true` (polled at the socket's read cadence, ~25 ms). The caller
    /// owns the consequence: the reply, if one ever comes, is left
    /// unread on the connection, so the client should be dropped.
    pub fn call_until(
        &mut self,
        request: &Request,
        give_up: &dyn Fn() -> bool,
    ) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.encode())?;
        self.read_response(give_up)
    }

    fn read_response(&mut self, give_up: &dyn Fn() -> bool) -> Result<Response, ServeError> {
        let deadline = Instant::now() + self.wait;
        loop {
            match read_frame(&mut self.stream, self.max_frame, FRAME_PATIENCE)? {
                ReadOutcome::Frame(payload) => return Ok(Response::decode(&payload)?),
                ReadOutcome::Idle => {
                    if give_up() {
                        return Err(ServeError::Aborted);
                    }
                    if Instant::now() >= deadline {
                        return Err(ServeError::Wire(WireError::Timeout("awaiting response")));
                    }
                }
                ReadOutcome::Closed => {
                    return Err(ServeError::Io(io::ErrorKind::UnexpectedEof.into()))
                }
            }
        }
    }

    /// Maps the typed failure shapes onto [`ServeError`].
    fn expect_ok(response: Response) -> Result<Reply, ServeError> {
        match response {
            Response::Ok(reply) => Ok(reply),
            Response::Err { code, message } => Err(ServeError::Remote { code, message }),
            Response::Busy { queued, capacity } => Err(ServeError::Busy { queued, capacity }),
        }
    }

    /// Registers the edge list at server-side `path` under `name`.
    pub fn load(&mut self, name: &str, path: &str) -> Result<GraphInfo, ServeError> {
        let response =
            self.call(&Request::Load { name: name.to_string(), path: path.to_string() })?;
        match Self::expect_ok(response)? {
            Reply::Loaded(info) => Ok(info),
            _ => Err(ServeError::UnexpectedReply("LOAD answered with a non-Loaded reply")),
        }
    }

    /// Registers the *general* edge list at server-side `path` under
    /// `name`. The returned info reports `|V|` in `num_u` and 0 in
    /// `num_v`; queries on the name run through the server's OCT driver.
    pub fn load_general(&mut self, name: &str, path: &str) -> Result<GraphInfo, ServeError> {
        let response =
            self.call(&Request::LoadGeneral { name: name.to_string(), path: path.to_string() })?;
        match Self::expect_ok(response)? {
            Reply::LoadedGeneral(info) => Ok(info),
            _ => Err(ServeError::UnexpectedReply(
                "LOAD_GENERAL answered with a non-LoadedGeneral reply",
            )),
        }
    }

    /// Lists registered graphs.
    pub fn list(&mut self) -> Result<Vec<GraphInfo>, ServeError> {
        let response = self.call(&Request::List)?;
        match Self::expect_ok(response)? {
            Reply::Graphs(list) => Ok(list),
            _ => Err(ServeError::UnexpectedReply("LIST answered with a non-Graphs reply")),
        }
    }

    /// Runs a query. A stray `CANCEL` acknowledgement (a cancel that
    /// raced past the query's completion) is skipped, not an error.
    pub fn query(&mut self, request: QueryRequest) -> Result<QueryReply, ServeError> {
        let response = self.call(&Request::Query(request))?;
        let mut reply = Self::expect_ok(response)?;
        while matches!(reply, Reply::Cancelled) {
            reply = Self::expect_ok(self.read_response(&|| false)?)?;
        }
        match reply {
            Reply::Query(q) => Ok(q),
            _ => Err(ServeError::UnexpectedReply("QUERY answered with a non-Query reply")),
        }
    }

    /// Runs one frontier shard to completion on the remote worker —
    /// the coordinator's fan-out verb. Like [`Client::query`], a stray
    /// `CANCEL` acknowledgement is skipped.
    pub fn query_shard(&mut self, request: ShardRequest) -> Result<QueryReply, ServeError> {
        self.query_shard_until(request, &|| false)
    }

    /// [`Client::query_shard`] with an early-exit hook: the wait is
    /// abandoned with [`ServeError::Aborted`] once `give_up` answers
    /// `true`. The coordinator uses this so a query whose merged result
    /// is already known (cancel, deadline, local fallback) is not pinned
    /// behind a hung worker's full attempt timeout.
    pub fn query_shard_until(
        &mut self,
        request: ShardRequest,
        give_up: &dyn Fn() -> bool,
    ) -> Result<QueryReply, ServeError> {
        let response = self.call_until(&Request::QueryShard(request), give_up)?;
        let mut reply = Self::expect_ok(response)?;
        while matches!(reply, Reply::Cancelled) {
            reply = Self::expect_ok(self.read_response(give_up)?)?;
        }
        match reply {
            Reply::Shard(q) => Ok(q),
            _ => Err(ServeError::UnexpectedReply("QUERY_SHARD answered with a non-Shard reply")),
        }
    }

    /// Fetches server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        let response = self.call(&Request::Stats)?;
        match Self::expect_ok(response)? {
            Reply::Stats(stats) => Ok(stats),
            _ => Err(ServeError::UnexpectedReply("STATS answered with a non-Stats reply")),
        }
    }

    /// Fetches the full server telemetry snapshot.
    pub fn metrics(&mut self) -> Result<crate::telemetry::MetricsSnapshot, ServeError> {
        let response = self.call(&Request::Metrics)?;
        match Self::expect_ok(response)? {
            Reply::Metrics(snapshot) => Ok(*snapshot),
            _ => Err(ServeError::UnexpectedReply("METRICS answered with a non-Metrics reply")),
        }
    }

    /// Sends an idle `CANCEL` (a no-op ack when nothing is in flight).
    pub fn cancel(&mut self) -> Result<(), ServeError> {
        let response = self.call(&Request::Cancel)?;
        match Self::expect_ok(response)? {
            Reply::Cancelled => Ok(()),
            _ => Err(ServeError::UnexpectedReply("CANCEL answered with a non-Cancelled reply")),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let response = self.call(&Request::Shutdown)?;
        match Self::expect_ok(response)? {
            Reply::ShuttingDown => Ok(()),
            _ => Err(ServeError::UnexpectedReply("SHUTDOWN answered with an unexpected reply")),
        }
    }

    /// A writer onto this connection that can inject `CANCEL` from
    /// another thread while this client blocks in [`Client::query`].
    pub fn canceller(&self) -> Result<Canceller, ServeError> {
        Ok(Canceller { stream: self.stream.try_clone()? })
    }
}

/// Side-channel cancel trigger for an in-flight query (see
/// [`Client::canceller`]).
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Injects a `CANCEL` frame. Fire-and-forget: the acknowledgement
    /// arrives on the owning [`Client`] as the query's reply.
    pub fn cancel(&mut self) -> Result<(), ServeError> {
        write_frame(&mut self.stream, &Request::Cancel.encode())?;
        Ok(())
    }
}
