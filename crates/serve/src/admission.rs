//! Admission control: a bounded worker pool fed by a bounded queue.
//!
//! The server never runs enumeration on connection threads — queries are
//! submitted here. Capacity is enforced at submission time with
//! `try_send`: a full queue yields [`SubmitError::Busy`] immediately (the
//! typed 429), so a connection thread can report back-pressure to its
//! client instead of blocking behind someone else's long query.
//!
//! Shutdown drops the sender; workers drain whatever was already queued
//! and exit, and [`Admission::shutdown`] joins them. Anything a drained
//! job needs to know about shutdown it learns through its own
//! [`mbe::RunControl`] — the pool itself never aborts a running job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use mbe::histogram::Histogram;

/// Unit of queued work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long jobs sat in the queue before a worker picked them up.
///
/// The coordinator's health probes use this to tell a *busy* worker
/// (alive, queue wait rising) from a *dead* one (no STATS reply at all):
/// back-pressure is a scheduling signal, not a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueWait {
    /// Sum of queue-wait times across executed jobs, in microseconds.
    pub total_us: u64,
    /// Largest single queue wait observed, in microseconds.
    pub max_us: u64,
    /// Jobs a worker has picked up (denominator for the mean).
    pub executed: u64,
}

/// Why [`Admission::submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full. Carries the queue state at rejection time.
    Busy {
        /// Jobs waiting when the rejection happened.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
    /// The pool has been shut down.
    Closed,
}

/// Bounded worker pool with typed back-pressure.
pub struct Admission {
    sender: Mutex<Option<SyncSender<(Instant, Job)>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queued: Arc<AtomicU64>,
    wait: Arc<WaitCounters>,
    capacity: u32,
    worker_count: usize,
}

/// Shared queue-wait accumulators, updated by workers at dequeue time.
#[derive(Debug, Default)]
struct WaitCounters {
    total_us: AtomicU64,
    max_us: AtomicU64,
    executed: AtomicU64,
    /// Full wait distribution (µs, log-bucketed) for telemetry.
    hist: Mutex<Histogram>,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Admission")
            .field("workers", &self.worker_count)
            .field("capacity", &self.capacity)
            .field("queued", &self.queued.load(Ordering::Relaxed))
            .finish()
    }
}

impl Admission {
    /// Spawns `workers` threads sharing a queue of `queue_capacity` slots.
    /// Both are clamped to at least 1.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let workers = workers.max(1);
        let queue_capacity = queue_capacity.max(1);
        let (tx, rx) = sync_channel::<(Instant, Job)>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicU64::new(0));
        let wait = Arc::new(WaitCounters::default());
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let queued = Arc::clone(&queued);
            let wait = Arc::clone(&wait);
            let handle = std::thread::Builder::new()
                .name(format!("mbe-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &queued, &wait))
                .unwrap_or_else(|e| panic!("failed to spawn admission worker: {e}"));
            handles.push(handle);
        }
        Admission {
            sender: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            queued,
            wait,
            capacity: queue_capacity as u32,
            worker_count: workers,
        }
    }

    /// Queues a job without blocking. A full queue is a typed
    /// [`SubmitError::Busy`]; a shut-down pool is [`SubmitError::Closed`].
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let guard = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::Closed);
        };
        // Count before sending so a racing worker's decrement can't
        // observe the counter at zero while its job is still queued.
        self.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send((Instant::now(), job)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let queued = self.queued.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                match e {
                    TrySendError::Full(_) => Err(SubmitError::Busy {
                        queued: queued.min(u64::from(u32::MAX)) as u32,
                        capacity: self.capacity,
                    }),
                    TrySendError::Disconnected(_) => Err(SubmitError::Closed),
                }
            }
        }
    }

    /// Jobs currently waiting (approximate under concurrency).
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Queue capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Queue-wait counters so far (approximate under concurrency).
    pub fn queue_wait(&self) -> QueueWait {
        QueueWait {
            total_us: self.wait.total_us.load(Ordering::Relaxed),
            max_us: self.wait.max_us.load(Ordering::Relaxed),
            executed: self.wait.executed.load(Ordering::Relaxed),
        }
    }

    /// A copy of the queue-wait distribution (µs, log-bucketed).
    pub fn queue_wait_histogram(&self) -> Histogram {
        *self.wait.hist.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Closes the queue and joins the workers. Already-queued jobs are
    /// drained, not dropped. Idempotent.
    pub fn shutdown(&self) {
        self.sender.lock().unwrap_or_else(PoisonError::into_inner).take();
        let handles: Vec<_> =
            self.workers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for handle in handles {
            // A worker that panicked already poisoned nothing we rely on;
            // surface the summary and keep joining the rest.
            if handle.join().is_err() {
                eprintln!("mbe-serve: admission worker panicked");
            }
        }
    }
}

impl Drop for Admission {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<(Instant, Job)>>, queued: &AtomicU64, wait: &WaitCounters) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok((submitted, job)) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                let waited = u64::try_from(submitted.elapsed().as_micros()).unwrap_or(u64::MAX);
                wait.total_us.fetch_add(waited, Ordering::Relaxed);
                wait.max_us.fetch_max(waited, Ordering::Relaxed);
                wait.executed.fetch_add(1, Ordering::Relaxed);
                wait.hist.lock().unwrap_or_else(PoisonError::into_inner).record(waited);
                job();
            }
            Err(_) => return, // sender dropped: pool shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = Admission::new(2, 4);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let done = Arc::clone(&done);
            let tx = tx.clone();
            // Submission can race ahead of two workers draining a
            // 4-slot queue; retry rather than assert non-busy.
            loop {
                let done2 = Arc::clone(&done);
                let tx2 = tx.clone();
                match pool.submit(Box::new(move || {
                    done2.fetch_add(1, Ordering::SeqCst);
                    let _ = tx2.send(());
                })) {
                    Ok(()) => break,
                    Err(SubmitError::Busy { .. }) => std::thread::yield_now(),
                    Err(SubmitError::Closed) => panic!("pool closed unexpectedly"),
                }
            }
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_is_typed_busy() {
        // One worker blocked on a gate; queue of one fills immediately.
        let pool = Admission::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        }))
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(10)).expect("worker picked up job");
        // Worker busy; this occupies the single queue slot.
        pool.submit(Box::new(|| {})).unwrap();
        // And this one must bounce.
        let err = pool.submit(Box::new(|| {})).unwrap_err();
        match err {
            SubmitError::Busy { queued, capacity } => {
                assert_eq!(capacity, 1);
                assert!(queued >= 1, "queued={queued}");
            }
            SubmitError::Closed => panic!("expected Busy, got Closed"),
        }
        drop(gate_tx);
        pool.shutdown();
    }

    #[test]
    fn queue_wait_counts_executed_jobs_and_grows_under_backlog() {
        let pool = Admission::new(1, 4);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        }))
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(10)).expect("worker picked up job");
        // This job sits behind the gated one, accumulating queue wait.
        pool.submit(Box::new(|| {})).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        drop(gate_tx);
        pool.shutdown();
        let wait = pool.queue_wait();
        assert_eq!(wait.executed, 2, "both jobs ran");
        assert!(wait.max_us >= 10_000, "gated job waited: max_us={}", wait.max_us);
        assert!(wait.total_us >= wait.max_us);
        let hist = pool.queue_wait_histogram();
        assert_eq!(hist.count(), 2, "histogram saw both executed jobs");
        assert_eq!(hist.sum(), wait.total_us);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_rejects_new_ones() {
        let pool = Admission::new(1, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 3, "queued jobs drained before join");
        assert_eq!(pool.submit(Box::new(|| {})).unwrap_err(), SubmitError::Closed);
        pool.shutdown(); // idempotent
    }
}
