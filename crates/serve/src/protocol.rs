//! Typed protocol messages and their byte codecs.
//!
//! Payload layout (inside a [`crate::wire`] frame):
//!
//! ```text
//! byte 0: protocol version (PROTOCOL_VERSION = 1)
//! byte 1: opcode (requests) or status (responses)
//! rest:   message fields, little-endian, strings/blobs u32-length-prefixed
//! ```
//!
//! Requests: `LOAD`(1), `LIST`(2), `QUERY`(3), `CANCEL`(4), `STATS`(5),
//! `SHUTDOWN`(6), `QUERY_SHARD`(7), `METRICS`(8), `LOAD_GENERAL`(9).
//! Response statuses: `OK`(0) — followed by a reply tag
//! mirroring the request opcode — `ERR`(1) with a code and message, and
//! `BUSY`(2), the typed admission rejection. Unknown versions and opcodes
//! are decode errors, never silent acceptance: the version byte exists so
//! a future v2 can change anything after byte 0.
//!
//! Within version 1, [`PROTOCOL_MINOR`] tracks additive revisions:
//! minor 1 added the `METRICS` opcode and the optional trailing
//! [`TraceContext`] on `QUERY`/`QUERY_SHARD`; minor 2 added the
//! `LOAD_GENERAL` opcode (general graphs served via the OCT driver)
//! and the `WRONG_KIND` error code. Additions must keep every
//! minor-0 payload decoding unchanged (the trace context is encoded
//! only when present, so old and new encoders agree byte-for-byte on
//! trace-less requests — see the decode-compat tests).

use std::time::Duration;

use mbe::histogram::Histogram;
use mbe::service::QueryParams;
use mbe::{Algorithm, Biclique, CacheCounters, StopReason};

use bigraph::order::VertexOrder;

use crate::telemetry::{MetricsSnapshot, OpSnapshot, WorkerStatus};
use crate::wire::{put_bytes, put_str, put_u32, put_u64, put_u8, Reader, WireError};

/// Version byte every payload starts with.
pub const PROTOCOL_VERSION: u8 = 1;

/// Additive revision within [`PROTOCOL_VERSION`] — bumped when a new
/// opcode or optional trailing field is added without breaking old
/// payloads (documentation only; never sent on the wire).
pub const PROTOCOL_MINOR: u8 = 2;

/// Request opcodes (payload byte 1).
pub mod opcode {
    /// Register a server-side edge-list file under a name.
    pub const LOAD: u8 = 1;
    /// List registered graphs.
    pub const LIST: u8 = 2;
    /// Run (or replay from cache) an enumeration query.
    pub const QUERY: u8 = 3;
    /// Cancel the connection's in-flight query.
    pub const CANCEL: u8 = 4;
    /// Fetch server counters.
    pub const STATS: u8 = 5;
    /// Begin graceful shutdown.
    pub const SHUTDOWN: u8 = 6;
    /// Run a shard-scoped query: an enumeration resumed from a serialized
    /// checkpoint frontier, as issued by a coordinator to its workers.
    pub const QUERY_SHARD: u8 = 7;
    /// Fetch the full server telemetry snapshot (per-opcode counters,
    /// latency histograms, shard/health counters).
    pub const METRICS: u8 = 8;
    /// Register a server-side *general* (non-bipartite) edge-list file
    /// under a name; queries on it route through the OCT driver
    /// (protocol minor 2).
    pub const LOAD_GENERAL: u8 = 9;
}

/// Response statuses (payload byte 1).
pub mod status {
    /// Success; a reply tag and body follow.
    pub const OK: u8 = 0;
    /// Typed failure; code byte and message follow.
    pub const ERR: u8 = 1;
    /// Admission queue full — the 429-shaped rejection.
    pub const BUSY: u8 = 2;
}

/// Error codes carried by [`Response::Err`].
pub mod errcode {
    /// Unexpected server-side failure.
    pub const INTERNAL: u8 = 1;
    /// The named graph is not registered.
    pub const UNKNOWN_GRAPH: u8 = 2;
    /// The request was well-framed but semantically invalid.
    pub const BAD_REQUEST: u8 = 3;
    /// The server is draining; no new work is admitted.
    pub const SHUTTING_DOWN: u8 = 4;
    /// The graph file could not be read or parsed.
    pub const LOAD_FAILED: u8 = 5;
    /// The name is registered to a different graph (fingerprint mismatch).
    pub const NAME_CONFLICT: u8 = 6;
    /// A shard-scoped query carried a checkpoint that does not decode or
    /// does not match the named graph.
    pub const BAD_SHARD: u8 = 7;
    /// A coordinator exhausted its worker pool (all dead or quarantined)
    /// and local fallback is disabled.
    pub const NO_WORKERS: u8 = 8;
    /// The query's parameters do not apply to the target graph's kind
    /// (e.g. bipartite-only thresholds or top-k on a general graph).
    pub const WRONG_KIND: u8 = 9;

    /// Human-readable label for an error code.
    pub fn label(code: u8) -> &'static str {
        match code {
            INTERNAL => "internal",
            UNKNOWN_GRAPH => "unknown-graph",
            BAD_REQUEST => "bad-request",
            SHUTTING_DOWN => "shutting-down",
            LOAD_FAILED => "load-failed",
            NAME_CONFLICT => "name-conflict",
            BAD_SHARD => "bad-shard",
            NO_WORKERS => "no-workers",
            WRONG_KIND => "wrong-kind",
            _ => "unknown",
        }
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register the edge list at server-side `path` under `name`.
    /// Idempotent when the name already maps to the same fingerprint.
    Load {
        /// Registry name to bind.
        name: String,
        /// Server-side path of the edge-list file.
        path: String,
    },
    /// List registered graphs.
    List,
    /// Run a query (or serve it from cache).
    Query(QueryRequest),
    /// Cancel this connection's in-flight query. Sent mid-query it is
    /// absorbed — the query's own response (stop = `cancelled`) is the
    /// acknowledgement; sent idle it gets its own reply.
    Cancel,
    /// Fetch server counters.
    Stats,
    /// Begin graceful shutdown: running queries are cancelled (each
    /// returning its checkpoint to its own client), then the server
    /// drains and exits.
    Shutdown,
    /// Run a shard of a distributed query: resume enumeration from the
    /// carried checkpoint frontier instead of the full root set.
    QueryShard(ShardRequest),
    /// Fetch the full server telemetry snapshot.
    Metrics,
    /// Register the *general* (non-bipartite) edge list at server-side
    /// `path` under `name`. Queries on the graph route through the OCT
    /// driver; [`GraphInfo`] reports `|V|` in `num_u` and 0 in `num_v`.
    LoadGeneral {
        /// Registry name to bind.
        name: String,
        /// Server-side path of the general edge-list file.
        path: String,
    },
}

/// Distributed trace context carried by `QUERY`/`QUERY_SHARD`
/// requests. A worker stamps both ids onto its JSONL run trace so the
/// trace can be joined against the coordinator's span log by trace id
/// (DESIGN §8b). Encoded only when present — trace-less requests are
/// byte-identical to protocol minor 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Query-scoped id shared by the coordinator log and every worker
    /// trace the query touched.
    pub trace_id: u64,
    /// The dispatching span within the coordinator's log (one per
    /// shard attempt).
    pub parent_span: u64,
}

/// The `QUERY` request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Registry name of the graph to query.
    pub graph: String,
    /// Enumeration parameters (canonicalized server-side for the cache).
    pub params: QueryParams,
    /// Cap on bicliques returned in the response (the run itself is not
    /// truncated; `u32::MAX` means "as many as the server allows").
    pub max_return: u32,
    /// Optional distributed trace context (protocol minor 1).
    pub trace: Option<TraceContext>,
}

/// The `QUERY_SHARD` request body: a query scoped to a checkpoint
/// frontier. The worker validates the checkpoint against the named
/// graph's fingerprint ([`errcode::BAD_SHARD`] on mismatch) and resumes
/// from it, so the reply covers exactly the shard's subtrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// Registry name of the graph to query.
    pub graph: String,
    /// Enumeration parameters. Thresholds/budgets must be unset — shards
    /// are only cut from shardable queries.
    pub params: QueryParams,
    /// Cap on bicliques returned in the response.
    pub max_return: u32,
    /// Serialized [`mbe::Checkpoint`] ([`mbe::Checkpoint::to_bytes`])
    /// carrying the frontier this shard must enumerate.
    pub checkpoint: Vec<u8>,
    /// Optional distributed trace context (protocol minor 1).
    pub trace: Option<TraceContext>,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success.
    Ok(Reply),
    /// Typed failure.
    Err {
        /// An [`errcode`] constant.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Admission queue full; retry later. Carries the queue state at
    /// rejection time.
    Busy {
        /// Requests queued when the rejection happened.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
}

/// The success payloads, tagged by the opcode they answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `LOAD` succeeded (or was idempotently replayed).
    Loaded(GraphInfo),
    /// `LIST` result.
    Graphs(Vec<GraphInfo>),
    /// `QUERY` result.
    Query(QueryReply),
    /// `CANCEL` received while no query was in flight.
    Cancelled,
    /// `STATS` result.
    Stats(ServerStats),
    /// `SHUTDOWN` acknowledged; the server is draining.
    ShuttingDown,
    /// `QUERY_SHARD` result — the same body as a `QUERY` reply, under its
    /// own tag so a worker's shard answer can never be confused with a
    /// whole-query answer.
    Shard(QueryReply),
    /// `METRICS` result.
    Metrics(Box<MetricsSnapshot>),
    /// `LOAD_GENERAL` succeeded (or was idempotently replayed). The
    /// info reports `|V|` in `num_u` and 0 in `num_v` — [`GraphInfo`]'s
    /// shape is pinned by the minor-0 compat tests, so the general
    /// kind is signaled by the reply tag, not a new field.
    LoadedGeneral(GraphInfo),
}

/// One registered graph, as reported by `LOAD` and `LIST`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registry name.
    pub name: String,
    /// FNV-1a fingerprint ([`mbe::checkpoint::graph_fingerprint`]).
    pub fingerprint: u64,
    /// `|U|`.
    pub num_u: u64,
    /// `|V|`.
    pub num_v: u64,
    /// `|E|`.
    pub num_edges: u64,
}

/// The `QUERY` response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Why the run ended ([`StopReason::Completed`] for cache hits).
    pub stop: StopReason,
    /// `true` iff the result came from the result cache.
    pub cached: bool,
    /// Bicliques delivered by the (original) run.
    pub emitted: u64,
    /// Wall-clock of the (original) run, microseconds.
    pub elapsed_us: u64,
    /// Bicliques available server-side before `max_return` truncation
    /// (0 for count-only queries).
    pub total: u64,
    /// The returned bicliques (possibly truncated; empty for count-only).
    pub bicliques: Vec<Biclique>,
    /// A stopped run's serialized [`mbe::Checkpoint`]
    /// ([`mbe::Checkpoint::to_bytes`]) — present whenever the run stopped
    /// early and was checkpointable, so a cancelled or shut-down query
    /// can be resumed elsewhere.
    pub checkpoint: Option<Vec<u8>>,
    /// How a coordinator distributed the run — present only on replies a
    /// coordinator assembled by scatter/gather (never on worker or
    /// single-server replies, and never on cache hits).
    pub dist: Option<DistSummary>,
}

/// Provenance of a coordinator-assembled query reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistSummary {
    /// Worker addresses the coordinator fanned out to.
    pub workers: u32,
    /// Shards the frontier was cut into.
    pub shards: u32,
    /// Shard attempts retried after connect/IO failure.
    pub retries: u32,
    /// Shards re-stolen from a failed worker and re-run elsewhere
    /// (from the last returned checkpoint when one came back).
    pub resteals: u32,
    /// Straggler shards speculatively duplicated (first writer wins).
    pub speculated: u32,
    /// `true` when every worker was lost and the coordinator fell back
    /// to enumerating the remaining shards locally.
    pub degraded: bool,
}

/// Server counters returned by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Registered graphs.
    pub graphs: u64,
    /// Queries currently executing or queued (registered controls).
    pub inflight: u64,
    /// Requests waiting in the admission queue.
    pub queued: u64,
    /// Admission queue capacity.
    pub queue_capacity: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Queries rejected with [`Response::Busy`].
    pub busy_rejected: u64,
    /// Enumeration tasks started, observed via the server's global
    /// observer hook (cache hits start none).
    pub tasks_started: u64,
    /// Result-cache counters.
    pub cache: CacheCounters,
    /// Summed queue wait of executed jobs, microseconds. Together with
    /// `jobs_executed` this lets a health probe tell *busy* (alive, wait
    /// rising) from *dead* (no STATS reply at all).
    pub queue_wait_total_us: u64,
    /// Largest single queue wait observed, microseconds.
    pub queue_wait_max_us: u64,
    /// Jobs admission workers have picked up.
    pub jobs_executed: u64,
    /// `true` once graceful shutdown has begun.
    pub shutting_down: bool,
}

fn algorithm_to_u8(a: Algorithm) -> u8 {
    match a {
        Algorithm::MineLmbc => 1,
        Algorithm::Mbea => 2,
        Algorithm::Imbea => 3,
        Algorithm::Mbet => 4,
    }
}

fn algorithm_from_u8(v: u8) -> Result<Algorithm, WireError> {
    match v {
        1 => Ok(Algorithm::MineLmbc),
        2 => Ok(Algorithm::Mbea),
        3 => Ok(Algorithm::Imbea),
        4 => Ok(Algorithm::Mbet),
        _ => Err(WireError::Malformed("algorithm")),
    }
}

fn order_to_bytes(buf: &mut Vec<u8>, o: VertexOrder) {
    match o {
        VertexOrder::Natural => {
            put_u8(buf, 0);
            put_u64(buf, 0);
        }
        VertexOrder::AscendingDegree => {
            put_u8(buf, 1);
            put_u64(buf, 0);
        }
        VertexOrder::DescendingDegree => {
            put_u8(buf, 2);
            put_u64(buf, 0);
        }
        VertexOrder::Unilateral => {
            put_u8(buf, 3);
            put_u64(buf, 0);
        }
        VertexOrder::Random(seed) => {
            put_u8(buf, 4);
            put_u64(buf, seed);
        }
    }
}

fn order_from_reader(r: &mut Reader<'_>) -> Result<VertexOrder, WireError> {
    let tag = r.u8("order tag")?;
    let seed = r.u64("order seed")?;
    match tag {
        0 => Ok(VertexOrder::Natural),
        1 => Ok(VertexOrder::AscendingDegree),
        2 => Ok(VertexOrder::DescendingDegree),
        3 => Ok(VertexOrder::Unilateral),
        4 => Ok(VertexOrder::Random(seed)),
        _ => Err(WireError::Malformed("order tag")),
    }
}

fn stop_to_u8(s: StopReason) -> u8 {
    match s {
        StopReason::Completed => 1,
        StopReason::Cancelled => 2,
        StopReason::Deadline => 3,
        StopReason::EmitBudget => 4,
        StopReason::NodeBudget => 5,
        StopReason::SinkStopped => 6,
        StopReason::WorkerPanicked => 7,
    }
}

fn stop_from_u8(v: u8) -> Result<StopReason, WireError> {
    match v {
        1 => Ok(StopReason::Completed),
        2 => Ok(StopReason::Cancelled),
        3 => Ok(StopReason::Deadline),
        4 => Ok(StopReason::EmitBudget),
        5 => Ok(StopReason::NodeBudget),
        6 => Ok(StopReason::SinkStopped),
        7 => Ok(StopReason::WorkerPanicked),
        _ => Err(WireError::Malformed("stop reason")),
    }
}

/// `Option<u64>` as a presence byte plus the value.
fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(buf, 1);
            put_u64(buf, x);
        }
        None => {
            put_u8(buf, 0);
            put_u64(buf, 0);
        }
    }
}

fn opt_u64_from_reader(r: &mut Reader<'_>, what: &'static str) -> Result<Option<u64>, WireError> {
    let present = r.u8(what)?;
    let value = r.u64(what)?;
    match present {
        0 => Ok(None),
        1 => Ok(Some(value)),
        _ => Err(WireError::Malformed(what)),
    }
}

/// The optional trailing [`TraceContext`]: nothing at all when absent
/// (so trace-less payloads match protocol minor 0 byte-for-byte), a
/// presence byte plus two u64s when present.
fn put_opt_trace(buf: &mut Vec<u8>, t: Option<TraceContext>) {
    if let Some(t) = t {
        put_u8(buf, 1);
        put_u64(buf, t.trace_id);
        put_u64(buf, t.parent_span);
    }
}

/// Decodes the optional trailing trace context: end-of-payload means
/// absent (a minor-0 encoder), otherwise a presence byte governs.
fn opt_trace_from_reader(r: &mut Reader<'_>) -> Result<Option<TraceContext>, WireError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    match r.u8("trace present")? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext {
            trace_id: r.u64("trace id")?,
            parent_span: r.u64("parent span")?,
        })),
        _ => Err(WireError::Malformed("trace present")),
    }
}

fn put_params(buf: &mut Vec<u8>, p: &QueryParams) {
    put_u8(buf, algorithm_to_u8(p.algorithm));
    order_to_bytes(buf, p.order);
    put_u32(buf, p.threads as u32);
    put_u32(buf, p.min_left as u32);
    put_u32(buf, p.min_right as u32);
    put_opt_u64(buf, p.top_k.map(|k| k as u64));
    put_opt_u64(buf, p.max_bicliques);
    put_opt_u64(buf, p.timeout.map(|d| d.as_millis() as u64));
    put_u8(buf, u8::from(p.count_only));
}

fn params_from_reader(r: &mut Reader<'_>) -> Result<QueryParams, WireError> {
    let algorithm = algorithm_from_u8(r.u8("algorithm")?)?;
    let order = order_from_reader(r)?;
    let threads = r.u32("threads")? as usize;
    let min_left = r.u32("min_left")? as usize;
    let min_right = r.u32("min_right")? as usize;
    let top_k = opt_u64_from_reader(r, "top_k")?.map(|k| k as usize);
    let max_bicliques = opt_u64_from_reader(r, "max_bicliques")?;
    let timeout = opt_u64_from_reader(r, "timeout_ms")?.map(Duration::from_millis);
    let count_only = match r.u8("count_only")? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("count_only")),
    };
    Ok(QueryParams {
        algorithm,
        order,
        threads,
        min_left,
        min_right,
        top_k,
        max_bicliques,
        timeout,
        count_only,
    })
}

fn put_graph_info(buf: &mut Vec<u8>, g: &GraphInfo) {
    put_str(buf, &g.name);
    put_u64(buf, g.fingerprint);
    put_u64(buf, g.num_u);
    put_u64(buf, g.num_v);
    put_u64(buf, g.num_edges);
}

fn graph_info_from_reader(r: &mut Reader<'_>) -> Result<GraphInfo, WireError> {
    Ok(GraphInfo {
        name: r.str("graph name")?.to_string(),
        fingerprint: r.u64("fingerprint")?,
        num_u: r.u64("num_u")?,
        num_v: r.u64("num_v")?,
        num_edges: r.u64("num_edges")?,
    })
}

fn put_biclique(buf: &mut Vec<u8>, b: &Biclique) {
    put_u32(buf, b.left.len() as u32);
    for &u in &b.left {
        put_u32(buf, u);
    }
    put_u32(buf, b.right.len() as u32);
    for &v in &b.right {
        put_u32(buf, v);
    }
}

fn biclique_from_reader(r: &mut Reader<'_>) -> Result<Biclique, WireError> {
    let nl = r.u32("left len")? as usize;
    if nl > r.remaining() / 4 {
        return Err(WireError::Malformed("left len"));
    }
    let mut left = Vec::with_capacity(nl);
    for _ in 0..nl {
        left.push(r.u32("left id")?);
    }
    let nr = r.u32("right len")? as usize;
    if nr > r.remaining() / 4 {
        return Err(WireError::Malformed("right len"));
    }
    let mut right = Vec::with_capacity(nr);
    for _ in 0..nr {
        right.push(r.u32("right id")?);
    }
    Ok(Biclique { left, right })
}

fn put_stats(buf: &mut Vec<u8>, s: &ServerStats) {
    put_u64(buf, s.graphs);
    put_u64(buf, s.inflight);
    put_u64(buf, s.queued);
    put_u64(buf, s.queue_capacity);
    put_u64(buf, s.workers);
    put_u64(buf, s.queries);
    put_u64(buf, s.busy_rejected);
    put_u64(buf, s.tasks_started);
    put_u64(buf, s.cache.hits);
    put_u64(buf, s.cache.misses);
    put_u64(buf, s.cache.insertions);
    put_u64(buf, s.cache.evictions);
    put_u64(buf, s.cache.bytes_used);
    put_u64(buf, s.cache.bytes_evicted);
    put_u64(buf, s.queue_wait_total_us);
    put_u64(buf, s.queue_wait_max_us);
    put_u64(buf, s.jobs_executed);
    put_u8(buf, u8::from(s.shutting_down));
}

fn stats_from_reader(r: &mut Reader<'_>) -> Result<ServerStats, WireError> {
    Ok(ServerStats {
        graphs: r.u64("graphs")?,
        inflight: r.u64("inflight")?,
        queued: r.u64("queued")?,
        queue_capacity: r.u64("queue_capacity")?,
        workers: r.u64("workers")?,
        queries: r.u64("queries")?,
        busy_rejected: r.u64("busy_rejected")?,
        tasks_started: r.u64("tasks_started")?,
        cache: CacheCounters {
            hits: r.u64("cache.hits")?,
            misses: r.u64("cache.misses")?,
            insertions: r.u64("cache.insertions")?,
            evictions: r.u64("cache.evictions")?,
            bytes_used: r.u64("cache.bytes_used")?,
            bytes_evicted: r.u64("cache.bytes_evicted")?,
        },
        queue_wait_total_us: r.u64("queue_wait_total_us")?,
        queue_wait_max_us: r.u64("queue_wait_max_us")?,
        jobs_executed: r.u64("jobs_executed")?,
        shutting_down: r.u8("shutting_down")? != 0,
    })
}

/// A histogram as its value sum plus a length-prefixed bucket array.
fn put_histogram(buf: &mut Vec<u8>, h: &Histogram) {
    put_u64(buf, h.sum());
    put_u32(buf, h.buckets().len() as u32);
    for &c in h.buckets() {
        put_u64(buf, c);
    }
}

fn histogram_from_reader(r: &mut Reader<'_>) -> Result<Histogram, WireError> {
    let sum = r.u64("histogram sum")?;
    let n = r.u32("histogram buckets")? as usize;
    if n > r.remaining() / 8 {
        return Err(WireError::Malformed("histogram buckets"));
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(r.u64("histogram bucket")?);
    }
    Ok(Histogram::from_parts(&buckets, sum))
}

fn put_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_u64(buf, m.uptime_us);
    put_u32(buf, m.ops.len() as u32);
    for op in &m.ops {
        put_u64(buf, op.count);
        put_u64(buf, op.errors);
        put_histogram(buf, &op.latency);
    }
    put_u64(buf, m.queued);
    put_u64(buf, m.queue_capacity);
    put_u64(buf, m.pool_workers);
    put_histogram(buf, &m.queue_wait);
    put_u64(buf, m.jobs_executed);
    put_u64(buf, m.busy_rejected);
    put_u64(buf, m.cache_hits);
    put_u64(buf, m.cache_misses);
    put_u64(buf, m.cache_insertions);
    put_u64(buf, m.cache_evictions);
    put_u64(buf, m.cache_bytes_used);
    put_u64(buf, m.cache_bytes_evicted);
    put_u64(buf, m.graphs);
    put_u64(buf, m.graph_loads);
    put_u64(buf, m.graph_conflicts);
    put_u64(buf, m.inflight);
    put_u64(buf, m.queries);
    put_u64(buf, m.dist_queries);
    put_u64(buf, m.shard_dispatches);
    put_u64(buf, m.shard_retries);
    put_u64(buf, m.shard_resteals);
    put_u64(buf, m.shard_speculated);
    put_u64(buf, m.shard_stranded_claims);
    put_u64(buf, m.shard_fallbacks);
    put_u64(buf, m.worker_quarantines);
    put_u64(buf, m.worker_readmissions);
    put_u32(buf, m.workers.len() as u32);
    for w in &m.workers {
        put_u8(buf, u8::from(w.healthy));
        put_u64(buf, w.consecutive_failures);
        put_u64(buf, w.successes);
        put_u64(buf, w.failures);
        put_u64(buf, w.quarantines);
        put_u64(buf, w.readmissions);
    }
    put_u8(buf, u8::from(m.shutting_down));
}

fn metrics_from_reader(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let uptime_us = r.u64("uptime_us")?;
    let n_ops = r.u32("op count")? as usize;
    // ≥ 28 wire bytes per op row (two u64s + histogram header).
    if n_ops > r.remaining() / 28 {
        return Err(WireError::Malformed("op count"));
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let count = r.u64("op.count")?;
        let errors = r.u64("op.errors")?;
        let latency = histogram_from_reader(r)?;
        ops.push(OpSnapshot { count, errors, latency });
    }
    let queued = r.u64("queued")?;
    let queue_capacity = r.u64("queue_capacity")?;
    let pool_workers = r.u64("pool_workers")?;
    let queue_wait = histogram_from_reader(r)?;
    let jobs_executed = r.u64("jobs_executed")?;
    let busy_rejected = r.u64("busy_rejected")?;
    let cache_hits = r.u64("cache_hits")?;
    let cache_misses = r.u64("cache_misses")?;
    let cache_insertions = r.u64("cache_insertions")?;
    let cache_evictions = r.u64("cache_evictions")?;
    let cache_bytes_used = r.u64("cache_bytes_used")?;
    let cache_bytes_evicted = r.u64("cache_bytes_evicted")?;
    let graphs = r.u64("graphs")?;
    let graph_loads = r.u64("graph_loads")?;
    let graph_conflicts = r.u64("graph_conflicts")?;
    let inflight = r.u64("inflight")?;
    let queries = r.u64("queries")?;
    let dist_queries = r.u64("dist_queries")?;
    let shard_dispatches = r.u64("shard_dispatches")?;
    let shard_retries = r.u64("shard_retries")?;
    let shard_resteals = r.u64("shard_resteals")?;
    let shard_speculated = r.u64("shard_speculated")?;
    let shard_stranded_claims = r.u64("shard_stranded_claims")?;
    let shard_fallbacks = r.u64("shard_fallbacks")?;
    let worker_quarantines = r.u64("worker_quarantines")?;
    let worker_readmissions = r.u64("worker_readmissions")?;
    let n_workers = r.u32("worker count")? as usize;
    // ≥ 41 wire bytes per worker row (a flag byte + five u64s).
    if n_workers > r.remaining() / 41 {
        return Err(WireError::Malformed("worker count"));
    }
    let mut workers = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        workers.push(WorkerStatus {
            healthy: r.u8("worker.healthy")? != 0,
            consecutive_failures: r.u64("worker.consecutive_failures")?,
            successes: r.u64("worker.successes")?,
            failures: r.u64("worker.failures")?,
            quarantines: r.u64("worker.quarantines")?,
            readmissions: r.u64("worker.readmissions")?,
        });
    }
    let shutting_down = r.u8("shutting_down")? != 0;
    Ok(MetricsSnapshot {
        uptime_us,
        ops,
        queued,
        queue_capacity,
        pool_workers,
        queue_wait,
        jobs_executed,
        busy_rejected,
        cache_hits,
        cache_misses,
        cache_insertions,
        cache_evictions,
        cache_bytes_used,
        cache_bytes_evicted,
        graphs,
        graph_loads,
        graph_conflicts,
        inflight,
        queries,
        dist_queries,
        shard_dispatches,
        shard_retries,
        shard_resteals,
        shard_speculated,
        shard_stranded_claims,
        shard_fallbacks,
        worker_quarantines,
        worker_readmissions,
        workers,
        shutting_down,
    })
}

/// The `QUERY`/`QUERY_SHARD` reply body, shared by both reply tags.
fn put_query_reply(buf: &mut Vec<u8>, q: &QueryReply) {
    put_u8(buf, stop_to_u8(q.stop));
    put_u8(buf, u8::from(q.cached));
    put_u64(buf, q.emitted);
    put_u64(buf, q.elapsed_us);
    put_u64(buf, q.total);
    put_u32(buf, q.bicliques.len() as u32);
    for b in &q.bicliques {
        put_biclique(buf, b);
    }
    match &q.checkpoint {
        Some(bytes) => {
            put_u8(buf, 1);
            put_bytes(buf, bytes);
        }
        None => put_u8(buf, 0),
    }
    match &q.dist {
        Some(d) => {
            put_u8(buf, 1);
            put_u32(buf, d.workers);
            put_u32(buf, d.shards);
            put_u32(buf, d.retries);
            put_u32(buf, d.resteals);
            put_u32(buf, d.speculated);
            put_u8(buf, u8::from(d.degraded));
        }
        None => put_u8(buf, 0),
    }
}

fn query_reply_from_reader(r: &mut Reader<'_>) -> Result<QueryReply, WireError> {
    let stop = stop_from_u8(r.u8("stop")?)?;
    let cached = r.u8("cached")? != 0;
    let emitted = r.u64("emitted")?;
    let elapsed_us = r.u64("elapsed_us")?;
    let total = r.u64("total")?;
    let n = r.u32("biclique count")? as usize;
    // Capped pre-size (≥ 8 wire bytes per empty biclique) so a hostile
    // count can't reserve gigabytes.
    let mut bicliques = Vec::with_capacity(n.min(r.remaining() / 8));
    for _ in 0..n {
        bicliques.push(biclique_from_reader(r)?);
    }
    let checkpoint = match r.u8("checkpoint present")? {
        0 => None,
        1 => Some(r.bytes("checkpoint")?.to_vec()),
        _ => return Err(WireError::Malformed("checkpoint present")),
    };
    let dist = match r.u8("dist present")? {
        0 => None,
        1 => Some(DistSummary {
            workers: r.u32("dist.workers")?,
            shards: r.u32("dist.shards")?,
            retries: r.u32("dist.retries")?,
            resteals: r.u32("dist.resteals")?,
            speculated: r.u32("dist.speculated")?,
            degraded: r.u8("dist.degraded")? != 0,
        }),
        _ => return Err(WireError::Malformed("dist present")),
    };
    Ok(QueryReply { stop, cached, emitted, elapsed_us, total, bicliques, checkpoint, dist })
}

impl Request {
    /// Encodes this request as a frame payload (version + opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTOCOL_VERSION);
        match self {
            Request::Load { name, path } => {
                put_u8(&mut buf, opcode::LOAD);
                put_str(&mut buf, name);
                put_str(&mut buf, path);
            }
            Request::List => put_u8(&mut buf, opcode::LIST),
            Request::Query(q) => {
                put_u8(&mut buf, opcode::QUERY);
                put_str(&mut buf, &q.graph);
                put_params(&mut buf, &q.params);
                put_u32(&mut buf, q.max_return);
                put_opt_trace(&mut buf, q.trace);
            }
            Request::Cancel => put_u8(&mut buf, opcode::CANCEL),
            Request::Stats => put_u8(&mut buf, opcode::STATS),
            Request::Shutdown => put_u8(&mut buf, opcode::SHUTDOWN),
            Request::QueryShard(s) => {
                put_u8(&mut buf, opcode::QUERY_SHARD);
                put_str(&mut buf, &s.graph);
                put_params(&mut buf, &s.params);
                put_u32(&mut buf, s.max_return);
                put_bytes(&mut buf, &s.checkpoint);
                put_opt_trace(&mut buf, s.trace);
            }
            Request::Metrics => put_u8(&mut buf, opcode::METRICS),
            Request::LoadGeneral { name, path } => {
                put_u8(&mut buf, opcode::LOAD_GENERAL);
                put_str(&mut buf, name);
                put_str(&mut buf, path);
            }
        }
        buf
    }

    /// Decodes a frame payload into a request. Rejects unknown versions,
    /// unknown opcodes, and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let version = r.u8("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::Version(version));
        }
        let op = r.u8("opcode")?;
        let req = match op {
            opcode::LOAD => Request::Load {
                name: r.str("load name")?.to_string(),
                path: r.str("load path")?.to_string(),
            },
            opcode::LIST => Request::List,
            opcode::QUERY => {
                let graph = r.str("query graph")?.to_string();
                let params = params_from_reader(&mut r)?;
                let max_return = r.u32("max_return")?;
                let trace = opt_trace_from_reader(&mut r)?;
                Request::Query(QueryRequest { graph, params, max_return, trace })
            }
            opcode::CANCEL => Request::Cancel,
            opcode::STATS => Request::Stats,
            opcode::SHUTDOWN => Request::Shutdown,
            opcode::QUERY_SHARD => {
                let graph = r.str("shard graph")?.to_string();
                let params = params_from_reader(&mut r)?;
                let max_return = r.u32("max_return")?;
                let checkpoint = r.bytes("shard checkpoint")?.to_vec();
                let trace = opt_trace_from_reader(&mut r)?;
                Request::QueryShard(ShardRequest { graph, params, max_return, checkpoint, trace })
            }
            opcode::METRICS => Request::Metrics,
            opcode::LOAD_GENERAL => Request::LoadGeneral {
                name: r.str("load-general name")?.to_string(),
                path: r.str("load-general path")?.to_string(),
            },
            _ => return Err(WireError::Malformed("opcode")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as a frame payload (version + status + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTOCOL_VERSION);
        match self {
            Response::Ok(reply) => {
                put_u8(&mut buf, status::OK);
                match reply {
                    Reply::Loaded(info) => {
                        put_u8(&mut buf, opcode::LOAD);
                        put_graph_info(&mut buf, info);
                    }
                    Reply::Graphs(list) => {
                        put_u8(&mut buf, opcode::LIST);
                        put_u32(&mut buf, list.len() as u32);
                        for info in list {
                            put_graph_info(&mut buf, info);
                        }
                    }
                    Reply::Query(q) => {
                        put_u8(&mut buf, opcode::QUERY);
                        put_query_reply(&mut buf, q);
                    }
                    Reply::Cancelled => put_u8(&mut buf, opcode::CANCEL),
                    Reply::Stats(s) => {
                        put_u8(&mut buf, opcode::STATS);
                        put_stats(&mut buf, s);
                    }
                    Reply::ShuttingDown => put_u8(&mut buf, opcode::SHUTDOWN),
                    Reply::Shard(q) => {
                        put_u8(&mut buf, opcode::QUERY_SHARD);
                        put_query_reply(&mut buf, q);
                    }
                    Reply::Metrics(m) => {
                        put_u8(&mut buf, opcode::METRICS);
                        put_metrics(&mut buf, m);
                    }
                    Reply::LoadedGeneral(info) => {
                        put_u8(&mut buf, opcode::LOAD_GENERAL);
                        put_graph_info(&mut buf, info);
                    }
                }
            }
            Response::Err { code, message } => {
                put_u8(&mut buf, status::ERR);
                put_u8(&mut buf, *code);
                put_str(&mut buf, message);
            }
            Response::Busy { queued, capacity } => {
                put_u8(&mut buf, status::BUSY);
                put_u32(&mut buf, *queued);
                put_u32(&mut buf, *capacity);
            }
        }
        buf
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let version = r.u8("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::Version(version));
        }
        let resp = match r.u8("status")? {
            status::OK => {
                let tag = r.u8("reply tag")?;
                let reply = match tag {
                    opcode::LOAD => Reply::Loaded(graph_info_from_reader(&mut r)?),
                    opcode::LIST => {
                        let n = r.u32("graph count")? as usize;
                        // Pre-size, capped by what the payload could
                        // actually hold (≥ 36 wire bytes per entry) so
                        // a hostile count can't reserve gigabytes.
                        let mut list = Vec::with_capacity(n.min(r.remaining() / 36));
                        for _ in 0..n {
                            list.push(graph_info_from_reader(&mut r)?);
                        }
                        Reply::Graphs(list)
                    }
                    opcode::QUERY => Reply::Query(query_reply_from_reader(&mut r)?),
                    opcode::CANCEL => Reply::Cancelled,
                    opcode::STATS => Reply::Stats(stats_from_reader(&mut r)?),
                    opcode::SHUTDOWN => Reply::ShuttingDown,
                    opcode::QUERY_SHARD => Reply::Shard(query_reply_from_reader(&mut r)?),
                    opcode::METRICS => Reply::Metrics(Box::new(metrics_from_reader(&mut r)?)),
                    opcode::LOAD_GENERAL => Reply::LoadedGeneral(graph_info_from_reader(&mut r)?),
                    _ => return Err(WireError::Malformed("reply tag")),
                };
                Response::Ok(reply)
            }
            status::ERR => {
                let code = r.u8("err code")?;
                let message = r.str("err message")?.to_string();
                Response::Err { code, message }
            }
            status::BUSY => {
                let queued = r.u32("busy queued")?;
                let capacity = r.u32("busy capacity")?;
                Response::Busy { queued, capacity }
            }
            _ => return Err(WireError::Malformed("status")),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode();
        assert_eq!(bytes[0], PROTOCOL_VERSION);
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(bytes[0], PROTOCOL_VERSION);
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Load { name: "web".into(), path: "/tmp/web.txt".into() });
        roundtrip_req(Request::LoadGeneral { name: "road".into(), path: "/tmp/road.txt".into() });
        roundtrip_req(Request::List);
        roundtrip_req(Request::Cancel);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Query(QueryRequest {
            graph: "g1".into(),
            params: QueryParams {
                algorithm: Algorithm::Imbea,
                order: VertexOrder::Random(42),
                threads: 4,
                min_left: 2,
                min_right: 3,
                top_k: Some(10),
                max_bicliques: Some(0), // budget 0 is meaningful, not "absent"
                timeout: Some(Duration::from_millis(1500)),
                count_only: true,
            },
            max_return: 100,
            trace: None,
        }));
        // Defaults (all the None paths).
        roundtrip_req(Request::Query(QueryRequest {
            graph: "g2".into(),
            params: QueryParams::default(),
            max_return: u32::MAX,
            trace: None,
        }));
        roundtrip_req(Request::QueryShard(ShardRequest {
            graph: "g3".into(),
            params: QueryParams { threads: 2, ..QueryParams::default() },
            max_return: 50,
            checkpoint: vec![9, 8, 7, 6, 5],
            trace: None,
        }));
        roundtrip_req(Request::Metrics);
        // Trace contexts survive both carrying opcodes.
        roundtrip_req(Request::Query(QueryRequest {
            graph: "g4".into(),
            params: QueryParams::default(),
            max_return: 10,
            trace: Some(TraceContext { trace_id: 0xDEAD_BEEF, parent_span: 7 }),
        }));
        roundtrip_req(Request::QueryShard(ShardRequest {
            graph: "g5".into(),
            params: QueryParams::default(),
            max_return: 10,
            checkpoint: vec![1, 2],
            trace: Some(TraceContext { trace_id: u64::MAX, parent_span: 0 }),
        }));
    }

    /// A minor-0 encoder never wrote the trace tail; a minor-1 decoder
    /// must read those payloads unchanged — and a minor-1 encoder with
    /// no trace must produce the identical bytes, so minor-0 decoders
    /// accept minor-1 trace-less requests too.
    #[test]
    fn trace_less_requests_are_wire_compatible_with_minor_zero() {
        // Hand-build the old QUERY shape: graph, params, max_return,
        // nothing after.
        let mut old = Vec::new();
        put_u8(&mut old, PROTOCOL_VERSION);
        put_u8(&mut old, opcode::QUERY);
        put_str(&mut old, "g");
        put_params(&mut old, &QueryParams::default());
        put_u32(&mut old, 5);
        let decoded = Request::decode(&old).unwrap();
        let expected = Request::Query(QueryRequest {
            graph: "g".into(),
            params: QueryParams::default(),
            max_return: 5,
            trace: None,
        });
        assert_eq!(decoded, expected);
        // Byte-identical in the other direction.
        assert_eq!(expected.encode(), old);

        // Same for QUERY_SHARD.
        let mut old = Vec::new();
        put_u8(&mut old, PROTOCOL_VERSION);
        put_u8(&mut old, opcode::QUERY_SHARD);
        put_str(&mut old, "g");
        put_params(&mut old, &QueryParams::default());
        put_u32(&mut old, 5);
        put_bytes(&mut old, &[3, 4]);
        let decoded = Request::decode(&old).unwrap();
        let expected = Request::QueryShard(ShardRequest {
            graph: "g".into(),
            params: QueryParams::default(),
            max_return: 5,
            checkpoint: vec![3, 4],
            trace: None,
        });
        assert_eq!(decoded, expected);
        assert_eq!(expected.encode(), old);

        // An explicit absent-marker byte (0) also reads as None, and a
        // bad presence byte is rejected rather than skipped.
        let mut explicit = expected.encode();
        explicit.push(0);
        assert_eq!(Request::decode(&explicit).unwrap(), expected);
        let mut bad = expected.encode();
        bad.push(7);
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let info = GraphInfo {
            name: "web".into(),
            fingerprint: 0xFEED_F00D,
            num_u: 10,
            num_v: 20,
            num_edges: 55,
        };
        roundtrip_resp(Response::Ok(Reply::Loaded(info.clone())));
        // A general graph reuses GraphInfo with |V| in num_u and num_v=0;
        // the LOAD_GENERAL reply tag (not a new field) signals the kind.
        roundtrip_resp(Response::Ok(Reply::LoadedGeneral(GraphInfo {
            name: "road".into(),
            fingerprint: 0xC0FF_EE00,
            num_u: 128,
            num_v: 0,
            num_edges: 301,
        })));
        roundtrip_resp(Response::Err {
            code: errcode::WRONG_KIND,
            message: "min-left applies only to bipartite graphs".into(),
        });
        roundtrip_resp(Response::Ok(Reply::Graphs(vec![info.clone(), info])));
        roundtrip_resp(Response::Ok(Reply::Graphs(Vec::new())));
        roundtrip_resp(Response::Ok(Reply::Cancelled));
        roundtrip_resp(Response::Ok(Reply::ShuttingDown));
        roundtrip_resp(Response::Err { code: errcode::UNKNOWN_GRAPH, message: "no web".into() });
        roundtrip_resp(Response::Busy { queued: 8, capacity: 8 });
        roundtrip_resp(Response::Ok(Reply::Stats(ServerStats {
            graphs: 2,
            inflight: 1,
            queued: 3,
            queue_capacity: 8,
            workers: 4,
            queries: 100,
            busy_rejected: 5,
            tasks_started: 64,
            cache: CacheCounters {
                hits: 9,
                misses: 7,
                insertions: 7,
                evictions: 2,
                bytes_used: 4096,
                bytes_evicted: 1024,
            },
            queue_wait_total_us: 123_456,
            queue_wait_max_us: 45_000,
            jobs_executed: 77,
            shutting_down: true,
        })));
        roundtrip_resp(Response::Ok(Reply::Query(QueryReply {
            stop: StopReason::Cancelled,
            cached: false,
            emitted: 12,
            elapsed_us: 34_567,
            total: 12,
            bicliques: vec![
                Biclique::new(vec![3, 1], vec![2]),
                Biclique::new(vec![0], vec![5, 6, 7]),
            ],
            checkpoint: Some(vec![1, 2, 3, 4]),
            dist: None,
        })));
        roundtrip_resp(Response::Ok(Reply::Query(QueryReply {
            stop: StopReason::Completed,
            cached: true,
            emitted: 0,
            elapsed_us: 0,
            total: 0,
            bicliques: Vec::new(),
            checkpoint: None,
            dist: None,
        })));
        // A coordinator-assembled reply with full distribution provenance,
        // under both the QUERY and the QUERY_SHARD tag.
        let distributed = QueryReply {
            stop: StopReason::Completed,
            cached: false,
            emitted: 40,
            elapsed_us: 9_999,
            total: 40,
            bicliques: vec![Biclique::new(vec![1], vec![2])],
            checkpoint: None,
            dist: Some(DistSummary {
                workers: 3,
                shards: 12,
                retries: 2,
                resteals: 1,
                speculated: 1,
                degraded: true,
            }),
        };
        roundtrip_resp(Response::Ok(Reply::Query(distributed.clone())));
        roundtrip_resp(Response::Ok(Reply::Shard(distributed)));
    }

    #[test]
    fn metrics_reply_roundtrips() {
        use crate::telemetry::{OP_COUNT, OP_QUERY};
        // Empty snapshot (fresh server).
        roundtrip_resp(Response::Ok(Reply::Metrics(Box::default())));
        // A populated snapshot with histograms and per-worker rows.
        let mut m = MetricsSnapshot {
            uptime_us: 1_234_567,
            ops: vec![OpSnapshot::default(); OP_COUNT],
            queued: 2,
            queue_capacity: 8,
            pool_workers: 4,
            jobs_executed: 31,
            busy_rejected: 1,
            cache_hits: 5,
            cache_misses: 6,
            cache_insertions: 6,
            cache_evictions: 1,
            cache_bytes_used: 2048,
            cache_bytes_evicted: 512,
            graphs: 2,
            graph_loads: 3,
            graph_conflicts: 1,
            inflight: 1,
            queries: 30,
            dist_queries: 4,
            shard_dispatches: 17,
            shard_retries: 2,
            shard_resteals: 1,
            shard_speculated: 1,
            shard_stranded_claims: 1,
            shard_fallbacks: 1,
            worker_quarantines: 1,
            worker_readmissions: 1,
            workers: vec![
                WorkerStatus {
                    healthy: true,
                    consecutive_failures: 0,
                    successes: 12,
                    failures: 1,
                    quarantines: 0,
                    readmissions: 0,
                },
                WorkerStatus {
                    healthy: false,
                    consecutive_failures: 3,
                    successes: 2,
                    failures: 5,
                    quarantines: 1,
                    readmissions: 1,
                },
            ],
            shutting_down: false,
            ..Default::default()
        };
        m.queue_wait.record(420);
        if let Some(op) = m.ops.get_mut(OP_QUERY) {
            op.count = 30;
            op.errors = 2;
            op.latency.record(15_000);
            op.latency.record(u64::MAX);
        }
        roundtrip_resp(Response::Ok(Reply::Metrics(Box::new(m))));
    }

    #[test]
    fn hostile_metrics_lengths_are_rejected_without_allocation() {
        // An op count far larger than the remaining payload must fail
        // the bounds check, not attempt the allocation.
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTOCOL_VERSION);
        put_u8(&mut buf, status::OK);
        put_u8(&mut buf, opcode::METRICS);
        put_u64(&mut buf, 0); // uptime
        put_u32(&mut buf, u32::MAX); // hostile op count
        assert!(Response::decode(&buf).is_err());

        // Same for a hostile histogram bucket count.
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTOCOL_VERSION);
        put_u8(&mut buf, status::OK);
        put_u8(&mut buf, opcode::METRICS);
        put_u64(&mut buf, 0); // uptime
        put_u32(&mut buf, 1); // one op row...
        put_u64(&mut buf, 0); // count
        put_u64(&mut buf, 0); // errors
        put_u64(&mut buf, 0); // histogram sum
        put_u32(&mut buf, u32::MAX); // ...with 4B buckets
        assert!(Response::decode(&buf).is_err());
    }

    #[test]
    fn shard_reply_tag_is_distinct_from_query() {
        let reply = QueryReply {
            stop: StopReason::Completed,
            cached: false,
            emitted: 1,
            elapsed_us: 1,
            total: 1,
            bicliques: Vec::new(),
            checkpoint: None,
            dist: None,
        };
        let shard = Response::Ok(Reply::Shard(reply.clone())).encode();
        let query = Response::Ok(Reply::Query(reply)).encode();
        assert_ne!(shard, query, "reply tags must distinguish shard from whole-query answers");
        assert_eq!(shard[2], opcode::QUERY_SHARD);
        assert_eq!(query[2], opcode::QUERY);
    }

    #[test]
    fn every_stop_reason_roundtrips() {
        for stop in [
            StopReason::Completed,
            StopReason::Cancelled,
            StopReason::Deadline,
            StopReason::EmitBudget,
            StopReason::NodeBudget,
            StopReason::SinkStopped,
            StopReason::WorkerPanicked,
        ] {
            assert_eq!(stop_from_u8(stop_to_u8(stop)).unwrap(), stop);
        }
        assert!(stop_from_u8(0).is_err());
        assert!(stop_from_u8(8).is_err());
    }

    #[test]
    fn bad_version_opcode_and_trailing_bytes_rejected() {
        let mut bytes = Request::List.encode();
        bytes[0] = 9;
        assert!(matches!(Request::decode(&bytes).unwrap_err(), WireError::Version(9)));

        let mut bytes = Request::List.encode();
        bytes[1] = 200;
        assert!(Request::decode(&bytes).is_err());

        let mut bytes = Request::List.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());

        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[PROTOCOL_VERSION, 77]).is_err());
    }

    #[test]
    fn hostile_biclique_length_is_rejected_without_allocation() {
        // A Query reply claiming 2^32-ish ids with a 10-byte body must
        // fail on the bounds check, not attempt the allocation.
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTOCOL_VERSION);
        put_u8(&mut buf, status::OK);
        put_u8(&mut buf, opcode::QUERY);
        put_u8(&mut buf, 1); // stop = completed
        put_u8(&mut buf, 0); // cached
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 1); // one biclique...
        put_u32(&mut buf, u32::MAX); // ...whose left side claims 4B ids
        assert!(Response::decode(&buf).is_err());
    }
}
