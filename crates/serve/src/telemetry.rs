//! Server-wide metrics registry and Prometheus-style text exposition.
//!
//! [`ServerMetrics`] is the lock-cheap registry every request thread
//! writes into: per-opcode counters are `AtomicU64` (relaxed — these
//! are monotone counters, not synchronization), and the per-opcode
//! latency distributions are [`mbe::histogram::Histogram`]s behind
//! short-lived leaf mutexes (recording is a lock, a `leading_zeros`,
//! and two adds — never held across another lock or a call).
//!
//! The registry is read two ways:
//!
//! * the `METRICS` wire request serializes a full [`MetricsSnapshot`]
//!   (typed, histogram buckets included) for `mbe-cli client metrics`;
//! * the optional `--metrics-addr` HTTP responder renders the same
//!   snapshot as Prometheus text exposition via
//!   [`render_prometheus`].
//!
//! The metric catalogue (names, types, labels, increment sites) is
//! documented in DESIGN.md §8b.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use mbe::histogram::{Histogram, BUCKETS};

/// Per-opcode slot indices into [`ServerMetrics::ops`] (wire-protocol
/// opcodes map onto these in `server::dispatch`).
pub const OP_LOAD: usize = 0;
/// `LIST` slot.
pub const OP_LIST: usize = 1;
/// `QUERY` slot.
pub const OP_QUERY: usize = 2;
/// `CANCEL` slot.
pub const OP_CANCEL: usize = 3;
/// `STATS` slot.
pub const OP_STATS: usize = 4;
/// `SHUTDOWN` slot.
pub const OP_SHUTDOWN: usize = 5;
/// `QUERY_SHARD` slot.
pub const OP_QUERY_SHARD: usize = 6;
/// `METRICS` slot.
pub const OP_METRICS: usize = 7;
/// `LOAD_GENERAL` slot.
pub const OP_LOAD_GENERAL: usize = 8;
/// Number of per-opcode slots.
pub const OP_COUNT: usize = 9;

/// Exposition label for each opcode slot, indexed like
/// [`ServerMetrics::ops`].
pub const OP_NAMES: [&str; OP_COUNT] = [
    "load",
    "list",
    "query",
    "cancel",
    "stats",
    "shutdown",
    "query_shard",
    "metrics",
    "load_general",
];

/// One opcode's request counters and latency distribution.
#[derive(Default)]
pub struct OpMetrics {
    /// Requests dispatched (success or failure).
    pub count: AtomicU64,
    /// Requests answered with an error or busy response.
    pub errors: AtomicU64,
    latency: Mutex<Histogram>,
}

impl OpMetrics {
    /// Records one request's wall-clock latency in microseconds.
    pub fn record_latency(&self, us: u64) {
        self.latency.lock().unwrap_or_else(PoisonError::into_inner).record(us);
    }

    /// A copy of the latency distribution.
    pub fn latency(&self) -> Histogram {
        *self.latency.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The server-wide metrics registry. One instance per server, shared
/// by every connection thread, the admission pool, and the
/// coordinator. All counters are lifetime totals since server start.
pub struct ServerMetrics {
    start: Instant,
    /// Per-opcode request counters, indexed by the `OP_*` constants.
    pub ops: [OpMetrics; OP_COUNT],
    /// Distributed queries answered through the coordinator.
    pub dist_queries: AtomicU64,
    /// Shard attempts handed to workers (first dispatches plus every
    /// retry, re-steal continuation, and speculation).
    pub shard_dispatches: AtomicU64,
    /// Failed shard attempts re-queued for another try.
    pub shard_retries: AtomicU64,
    /// Shard remainders re-queued after a worker returned a partial
    /// result (checkpoint re-steal).
    pub shard_resteals: AtomicU64,
    /// Straggler shards dispatched a second time speculatively.
    pub shard_speculated: AtomicU64,
    /// Stranded shards claimed and finished by the coordinator's local
    /// fallback.
    pub shard_stranded_claims: AtomicU64,
    /// Local-fallback invocations that claimed unfinished shards.
    pub shard_fallbacks: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh registry; `start` anchors the uptime gauge.
    pub fn new() -> Self {
        ServerMetrics {
            start: Instant::now(),
            ops: std::array::from_fn(|_| OpMetrics::default()),
            dist_queries: AtomicU64::new(0),
            shard_dispatches: AtomicU64::new(0),
            shard_retries: AtomicU64::new(0),
            shard_resteals: AtomicU64::new(0),
            shard_speculated: AtomicU64::new(0),
            shard_stranded_claims: AtomicU64::new(0),
            shard_fallbacks: AtomicU64::new(0),
        }
    }

    /// Records one dispatched request: bumps the opcode's counter and
    /// latency histogram (and its error counter unless `ok`).
    pub fn record_request(&self, op: usize, elapsed_us: u64, ok: bool) {
        if let Some(slot) = self.ops.get(op) {
            slot.count.fetch_add(1, Ordering::Relaxed);
            if !ok {
                slot.errors.fetch_add(1, Ordering::Relaxed);
            }
            slot.record_latency(elapsed_us);
        }
    }

    /// Relaxed increment helper for the plain counters.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Microseconds since the registry was created.
    pub fn uptime_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Copies the per-opcode counters out as snapshot rows.
    pub fn ops_snapshot(&self) -> Vec<OpSnapshot> {
        let mut out = Vec::with_capacity(OP_COUNT);
        for op in &self.ops {
            out.push(OpSnapshot {
                count: op.count.load(Ordering::Relaxed),
                errors: op.errors.load(Ordering::Relaxed),
                latency: op.latency(),
            });
        }
        out
    }
}

/// One opcode's counters in a [`MetricsSnapshot`], indexed like
/// [`OP_NAMES`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OpSnapshot {
    /// Requests dispatched.
    pub count: u64,
    /// Requests answered with an error or busy response.
    pub errors: u64,
    /// Request latency distribution (µs, log-bucketed).
    pub latency: Histogram,
}

/// One worker's health state in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WorkerStatus {
    /// `false` while quarantined.
    pub healthy: bool,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u64,
    /// Lifetime successful attempts.
    pub successes: u64,
    /// Lifetime failed attempts (aborted attempts are not charged).
    pub failures: u64,
    /// Lifetime quarantine entries.
    pub quarantines: u64,
    /// Lifetime re-admissions after quarantine.
    pub readmissions: u64,
}

/// A full, typed copy of the server's telemetry — the `METRICS` wire
/// reply body and the source for [`render_prometheus`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Microseconds since server start.
    pub uptime_us: u64,
    /// Per-opcode counters, indexed like [`OP_NAMES`].
    pub ops: Vec<OpSnapshot>,
    /// Jobs currently queued for admission.
    pub queued: u64,
    /// Admission queue capacity.
    pub queue_capacity: u64,
    /// Worker threads in the admission pool.
    pub pool_workers: u64,
    /// Queue-wait distribution (µs, log-bucketed).
    pub queue_wait: Histogram,
    /// Jobs the admission pool has finished executing.
    pub jobs_executed: u64,
    /// Requests bounced with `Busy` at admission.
    pub busy_rejected: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache insertions.
    pub cache_insertions: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Bytes currently held by the result cache.
    pub cache_bytes_used: u64,
    /// Lifetime bytes evicted from the result cache.
    pub cache_bytes_evicted: u64,
    /// Graphs currently registered.
    pub graphs: u64,
    /// Lifetime accepted graph loads.
    pub graph_loads: u64,
    /// Lifetime rejected loads (name conflicts).
    pub graph_conflicts: u64,
    /// Queries currently in flight.
    pub inflight: u64,
    /// Queries accepted for execution.
    pub queries: u64,
    /// Distributed queries answered through the coordinator.
    pub dist_queries: u64,
    /// Shard attempts handed to workers.
    pub shard_dispatches: u64,
    /// Failed shard attempts re-queued.
    pub shard_retries: u64,
    /// Partial shard results re-queued from a checkpoint.
    pub shard_resteals: u64,
    /// Straggler shards speculatively re-dispatched.
    pub shard_speculated: u64,
    /// Stranded shards claimed by the local fallback.
    pub shard_stranded_claims: u64,
    /// Distributed queries degraded to local fallback.
    pub shard_fallbacks: u64,
    /// Workers newly quarantined.
    pub worker_quarantines: u64,
    /// Quarantined workers re-admitted.
    pub worker_readmissions: u64,
    /// Per-worker health state (empty unless coordinating).
    pub workers: Vec<WorkerStatus>,
    /// `true` once shutdown has been requested.
    pub shutting_down: bool,
}

/// Writes one `# TYPE` header and a single unlabeled sample.
fn sample(out: &mut String, name: &str, kind: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Writes one histogram in Prometheus exposition shape: cumulative
/// `_bucket{le=…}` samples over the power-of-two bucket bounds, then
/// `_sum` and `_count`. An optional `{label}` is spliced into every
/// sample's label set.
fn histogram_samples(out: &mut String, name: &str, label: &str, h: &Histogram) {
    use std::fmt::Write as _;
    let sep = if label.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        // Zero buckets are skipped to keep the text compact; the last
        // bucket has no finite upper bound — the `+Inf` sample below
        // carries its cumulative count.
        if c == 0 || i + 1 == BUCKETS {
            cumulative = cumulative.saturating_add(c);
            continue;
        }
        cumulative = cumulative.saturating_add(c);
        // Bucket i spans [2^(i-1), 2^i): its inclusive upper bound is
        // 2^i - 1 (bucket 0 holds exactly the value 0).
        let le = Histogram::bucket_lower_bound(i + 1).saturating_sub(1);
        let _ = writeln!(out, "{name}_bucket{{{label}{sep}le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {cumulative}");
    if label.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{label}}} {}", h.sum());
        let _ = writeln!(out, "{name}_count{{{label}}} {}", h.count());
    }
}

/// Renders a snapshot as Prometheus text exposition (format 0.0.4).
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);

    sample(&mut out, "mbe_uptime_microseconds", "gauge", s.uptime_us);
    sample(&mut out, "mbe_shutting_down", "gauge", u64::from(s.shutting_down));

    let _ = writeln!(out, "# TYPE mbe_requests_total counter");
    for (name, op) in OP_NAMES.iter().zip(s.ops.iter()) {
        let _ = writeln!(out, "mbe_requests_total{{op=\"{name}\"}} {}", op.count);
    }
    let _ = writeln!(out, "# TYPE mbe_request_errors_total counter");
    for (name, op) in OP_NAMES.iter().zip(s.ops.iter()) {
        let _ = writeln!(out, "mbe_request_errors_total{{op=\"{name}\"}} {}", op.errors);
    }
    let _ = writeln!(out, "# TYPE mbe_request_latency_microseconds histogram");
    let mut label = String::with_capacity(32);
    for (name, op) in OP_NAMES.iter().zip(s.ops.iter()) {
        label.clear();
        let _ = write!(label, "op=\"{name}\"");
        histogram_samples(&mut out, "mbe_request_latency_microseconds", &label, &op.latency);
    }

    sample(&mut out, "mbe_queue_depth", "gauge", s.queued);
    sample(&mut out, "mbe_queue_capacity", "gauge", s.queue_capacity);
    sample(&mut out, "mbe_pool_workers", "gauge", s.pool_workers);
    let _ = writeln!(out, "# TYPE mbe_queue_wait_microseconds histogram");
    histogram_samples(&mut out, "mbe_queue_wait_microseconds", "", &s.queue_wait);
    sample(&mut out, "mbe_jobs_executed_total", "counter", s.jobs_executed);
    sample(&mut out, "mbe_busy_rejected_total", "counter", s.busy_rejected);

    sample(&mut out, "mbe_cache_hits_total", "counter", s.cache_hits);
    sample(&mut out, "mbe_cache_misses_total", "counter", s.cache_misses);
    sample(&mut out, "mbe_cache_insertions_total", "counter", s.cache_insertions);
    sample(&mut out, "mbe_cache_evictions_total", "counter", s.cache_evictions);
    sample(&mut out, "mbe_cache_bytes_used", "gauge", s.cache_bytes_used);
    sample(&mut out, "mbe_cache_bytes_evicted_total", "counter", s.cache_bytes_evicted);

    sample(&mut out, "mbe_graphs", "gauge", s.graphs);
    sample(&mut out, "mbe_graph_loads_total", "counter", s.graph_loads);
    sample(&mut out, "mbe_graph_conflicts_total", "counter", s.graph_conflicts);
    sample(&mut out, "mbe_inflight_queries", "gauge", s.inflight);
    sample(&mut out, "mbe_queries_total", "counter", s.queries);

    sample(&mut out, "mbe_dist_queries_total", "counter", s.dist_queries);
    sample(&mut out, "mbe_shard_dispatches_total", "counter", s.shard_dispatches);
    sample(&mut out, "mbe_shard_retries_total", "counter", s.shard_retries);
    sample(&mut out, "mbe_shard_resteals_total", "counter", s.shard_resteals);
    sample(&mut out, "mbe_shard_speculated_total", "counter", s.shard_speculated);
    sample(&mut out, "mbe_shard_stranded_claims_total", "counter", s.shard_stranded_claims);
    sample(&mut out, "mbe_shard_fallbacks_total", "counter", s.shard_fallbacks);
    sample(&mut out, "mbe_worker_quarantines_total", "counter", s.worker_quarantines);
    sample(&mut out, "mbe_worker_readmissions_total", "counter", s.worker_readmissions);

    let _ = writeln!(out, "# TYPE mbe_worker_healthy gauge");
    for (i, w) in s.workers.iter().enumerate() {
        let _ = writeln!(out, "mbe_worker_healthy{{worker=\"{i}\"}} {}", u64::from(w.healthy));
    }
    let _ = writeln!(out, "# TYPE mbe_worker_consecutive_failures gauge");
    for (i, w) in s.workers.iter().enumerate() {
        let _ = writeln!(
            out,
            "mbe_worker_consecutive_failures{{worker=\"{i}\"}} {}",
            w.consecutive_failures
        );
    }
    let _ = writeln!(out, "# TYPE mbe_worker_attempt_successes_total counter");
    for (i, w) in s.workers.iter().enumerate() {
        let _ =
            writeln!(out, "mbe_worker_attempt_successes_total{{worker=\"{i}\"}} {}", w.successes);
    }
    let _ = writeln!(out, "# TYPE mbe_worker_attempt_failures_total counter");
    for (i, w) in s.workers.iter().enumerate() {
        let _ = writeln!(out, "mbe_worker_attempt_failures_total{{worker=\"{i}\"}} {}", w.failures);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_request_counts_errors_and_latency() {
        let m = ServerMetrics::new();
        m.record_request(OP_QUERY, 100, true);
        m.record_request(OP_QUERY, 200, false);
        m.record_request(OP_COUNT + 5, 1, true); // out of range: ignored
        let ops = m.ops_snapshot();
        assert_eq!(ops.len(), OP_COUNT);
        assert_eq!(ops[OP_QUERY].count, 2);
        assert_eq!(ops[OP_QUERY].errors, 1);
        assert_eq!(ops[OP_QUERY].latency.count(), 2);
        assert_eq!(ops[OP_QUERY].latency.sum(), 300);
        assert_eq!(ops[OP_LOAD].count, 0);
    }

    #[test]
    fn uptime_is_monotone() {
        let m = ServerMetrics::new();
        let a = m.uptime_us();
        let b = m.uptime_us();
        assert!(b >= a);
    }

    #[test]
    fn prometheus_text_has_expected_families() {
        let mut s =
            MetricsSnapshot { ops: vec![OpSnapshot::default(); OP_COUNT], ..Default::default() };
        s.shard_retries = 3;
        s.shard_resteals = 2;
        s.queued = 1;
        s.queue_wait.record(50);
        s.workers = vec![
            WorkerStatus { healthy: true, successes: 4, ..Default::default() },
            WorkerStatus { healthy: false, failures: 3, quarantines: 1, ..Default::default() },
        ];
        if let Some(op) = s.ops.get_mut(OP_QUERY) {
            op.count = 7;
            op.latency.record(1000);
        }
        let text = render_prometheus(&s);
        assert!(text.contains("# TYPE mbe_requests_total counter"), "{text}");
        assert!(text.contains("mbe_requests_total{op=\"query\"} 7"), "{text}");
        assert!(text.contains("mbe_shard_retries_total 3"), "{text}");
        assert!(text.contains("mbe_shard_resteals_total 2"), "{text}");
        assert!(text.contains("mbe_queue_depth 1"), "{text}");
        assert!(text.contains("mbe_worker_healthy{worker=\"0\"} 1"), "{text}");
        assert!(text.contains("mbe_worker_healthy{worker=\"1\"} 0"), "{text}");
        // Histogram shape: cumulative buckets end with +Inf == _count.
        assert!(text.contains("mbe_queue_wait_microseconds_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("mbe_queue_wait_microseconds_sum 50"), "{text}");
        assert!(text.contains("mbe_queue_wait_microseconds_count 1"), "{text}");
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            assert!(
                value.chars().all(|c| c.is_ascii_digit()),
                "non-numeric sample value in {line:?}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        h.record(1); // bucket [1,2) → le="1"
        h.record(10); // bucket [8,16) → le="15"
        let mut out = String::new();
        histogram_samples(&mut out, "x", "", &h);
        assert!(out.contains("x_bucket{le=\"1\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"15\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("x_sum 11"), "{out}");
        assert!(out.contains("x_count 2"), "{out}");
    }
}
