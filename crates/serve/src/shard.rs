//! Shard lifecycle bookkeeping for the coordinator's scatter/gather.
//!
//! A [`ShardBoard`] tracks one distributed query: each shard is a
//! checkpoint frontier cut from the whole run, and moves through
//! pending → running → done with retries, re-steals, and speculative
//! duplicates in between. Correctness rests on two rules, both enforced
//! under the board's single lock:
//!
//! - **Epochs.** Every shard carries an epoch, bumped whenever its
//!   checkpoint advances (a re-steal merged a partial result and kept the
//!   returned remaining-frontier checkpoint). An attempt records the
//!   epoch it popped; any outcome reported under a stale epoch is
//!   discarded, because the shard's accumulated partial already covers
//!   (at least) what that attempt started from.
//! - **First writer wins.** The first accepted completion marks the shard
//!   done; later completions of speculative duplicates are discarded
//!   whole, so the merged result is duplicate-free by construction.
//!
//! Merging a shard's accumulated partial with its completing attempt's
//! output is exact, not heuristic: a stopped run's output and its
//! checkpoint-resumed remainder are disjoint and together equal the
//! shard's complete output (the checkpoint contract, property-tested in
//! `mbe/tests/shard.rs`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mbe::{Biclique, Checkpoint};

/// One shard's state.
struct Slot {
    /// The frontier this shard still has to enumerate.
    checkpoint: Checkpoint,
    /// Bumped on every checkpoint advance; stale attempts are discarded.
    epoch: u32,
    /// Failed attempts so far (exhaustion strands the shard).
    attempts: u32,
    /// Attempts currently in flight (speculation allows more than one).
    running: u32,
    /// Results merged from earlier partial (re-stolen) attempts.
    partial: Vec<Biclique>,
    /// Emission count of the accumulated partial.
    partial_emitted: u64,
    /// Set once a completion (or a local-fallback claim) was accepted.
    done: bool,
    /// When the most recent attempt started (speculation straggler scan).
    started: Option<Instant>,
    /// Epoch already speculatively duplicated, to cap duplication at one.
    speculated_epoch: Option<u32>,
}

/// Counters the coordinator reports as distribution provenance.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BoardCounters {
    pub(crate) retries: u32,
    pub(crate) resteals: u32,
    pub(crate) speculated: u32,
}

struct BoardState {
    slots: Vec<Slot>,
    /// FIFO of (shard index, epoch) entries ready to run.
    ready: VecDeque<(usize, u32)>,
    /// Shards that exhausted their attempt budget, awaiting fallback.
    stranded: Vec<usize>,
    done_count: usize,
    aborted: bool,
    /// Merged output of accepted completions.
    bicliques: Vec<Biclique>,
    emitted: u64,
    counters: BoardCounters,
    /// Wall-clock of accepted completions, for the straggler threshold.
    durations: Vec<Duration>,
}

/// What became of a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailDisposition {
    /// Re-queued for another attempt.
    Requeued,
    /// Attempt budget exhausted; parked for fallback.
    Stranded,
    /// The shard advanced (or finished) since this attempt started.
    Stale,
}

/// Shared state of one distributed query's shards.
pub(crate) struct ShardBoard {
    state: Mutex<BoardState>,
    cv: Condvar,
    max_attempts: u32,
}

impl ShardBoard {
    pub(crate) fn new(shards: Vec<Checkpoint>, max_attempts: u32) -> Self {
        let ready = (0..shards.len()).map(|i| (i, 0)).collect();
        let slots = shards
            .into_iter()
            .map(|checkpoint| Slot {
                checkpoint,
                epoch: 0,
                attempts: 0,
                running: 0,
                partial: Vec::new(),
                partial_emitted: 0,
                done: false,
                started: None,
                speculated_epoch: None,
            })
            .collect();
        ShardBoard {
            state: Mutex::new(BoardState {
                slots,
                ready,
                stranded: Vec::new(),
                done_count: 0,
                aborted: false,
                bicliques: Vec::new(),
                emitted: 0,
                counters: BoardCounters::default(),
                durations: Vec::new(),
            }),
            cv: Condvar::new(),
            max_attempts: max_attempts.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BoardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.lock().slots.len()
    }

    /// Blocks until a shard is ready, the board finishes, or it aborts.
    /// Returns the shard's index, the epoch this attempt runs under, the
    /// attempt's own start time (thread it back through
    /// [`ShardBoard::complete`] so the recorded shard duration is the
    /// accepted attempt's, not the latest dispatch's), and a clone of
    /// the shard's current checkpoint.
    pub(crate) fn next(&self) -> Option<(usize, u32, Instant, Checkpoint)> {
        let mut st = self.lock();
        loop {
            if st.aborted || st.done_count == st.slots.len() {
                return None;
            }
            while let Some((idx, epoch)) = st.ready.pop_front() {
                let stale = {
                    let slot = &st.slots[idx];
                    slot.done || slot.epoch != epoch
                };
                if stale {
                    continue;
                }
                let started = Instant::now();
                let slot = &mut st.slots[idx];
                slot.running += 1;
                slot.started = Some(started);
                // xtask-allow: hot-alloc-loop (one clone per shard dispatch, then returns)
                return Some((idx, epoch, started, slot.checkpoint.clone()));
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// An attempt finished its whole shard. Accepted only if the shard is
    /// not already done and the epoch still matches (first writer wins);
    /// an accepted completion merges the shard's accumulated partial.
    /// `started` is the accepting attempt's own dispatch time from
    /// [`ShardBoard::next`] — a speculative duplicate resets the slot's
    /// `started`, so measuring from the slot would clock the latest
    /// attempt, skew the p99 low, and over-trigger speculation.
    pub(crate) fn complete(
        &self,
        idx: usize,
        epoch: u32,
        started: Instant,
        bicliques: Vec<Biclique>,
        emitted: u64,
    ) -> bool {
        let mut st = self.lock();
        let accepted = {
            let slot = &mut st.slots[idx];
            slot.running = slot.running.saturating_sub(1);
            if slot.done || slot.epoch != epoch {
                false
            } else {
                slot.done = true;
                true
            }
        };
        if accepted {
            let (partial, partial_emitted) = {
                let slot = &mut st.slots[idx];
                (std::mem::take(&mut slot.partial), std::mem::take(&mut slot.partial_emitted))
            };
            st.bicliques.extend(partial);
            st.bicliques.extend(bicliques);
            st.emitted += partial_emitted + emitted;
            st.durations.push(started.elapsed());
            st.done_count += 1;
            // A straggler that strands on its own failures can still be
            // completed by a running speculative duplicate; a completed
            // shard must not trip the degraded fallback.
            st.stranded.retain(|&i| i != idx);
        }
        self.cv.notify_all();
        accepted
    }

    /// An attempt came back stopped-but-checkpointed (worker panicked or
    /// was shut down mid-shard): bank its partial output, advance the
    /// shard to the returned remaining-frontier checkpoint, bump the
    /// epoch, and re-queue — the re-steal. Returns `false` (and merges
    /// nothing) for stale or already-done shards.
    pub(crate) fn resteal(
        &self,
        idx: usize,
        epoch: u32,
        remaining: Checkpoint,
        partial: Vec<Biclique>,
        partial_emitted: u64,
    ) -> bool {
        let mut st = self.lock();
        let slot = &mut st.slots[idx];
        slot.running = slot.running.saturating_sub(1);
        if slot.done || slot.epoch != epoch {
            self.cv.notify_all();
            return false;
        }
        slot.partial.extend(partial);
        slot.partial_emitted += partial_emitted;
        slot.checkpoint = remaining;
        slot.epoch += 1;
        let entry = (idx, slot.epoch);
        st.ready.push_back(entry);
        st.counters.resteals += 1;
        // The shard is pending again with an advanced checkpoint — it is
        // no longer waiting on the fallback ladder.
        st.stranded.retain(|&i| i != idx);
        self.cv.notify_all();
        true
    }

    /// An attempt failed without yielding anything (connect refused, I/O
    /// error, busy rejection). The shard's record is untouched — nothing
    /// was merged, so re-running the same checkpoint is duplicate-free.
    /// `lost_mid_run` distinguishes a worker lost after the shard was
    /// dispatched (counted as a re-steal) from one never reached
    /// (counted as a retry).
    pub(crate) fn fail(&self, idx: usize, epoch: u32, lost_mid_run: bool) -> FailDisposition {
        let mut st = self.lock();
        let disposition = {
            let slot = &mut st.slots[idx];
            slot.running = slot.running.saturating_sub(1);
            if slot.done || slot.epoch != epoch {
                FailDisposition::Stale
            } else {
                slot.attempts += 1;
                if slot.attempts >= self.max_attempts {
                    FailDisposition::Stranded
                } else {
                    FailDisposition::Requeued
                }
            }
        };
        match disposition {
            FailDisposition::Stale => {}
            FailDisposition::Stranded => {
                st.stranded.push(idx);
                bump_fail_counter(&mut st.counters, lost_mid_run);
            }
            FailDisposition::Requeued => {
                st.ready.push_back((idx, epoch));
                bump_fail_counter(&mut st.counters, lost_mid_run);
            }
        }
        self.cv.notify_all();
        disposition
    }

    /// Aborts the board: `next` returns `None` and driver threads drain.
    pub(crate) fn abort(&self) {
        self.lock().aborted = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.lock().aborted
    }

    /// `true` once every shard is done (completed or claimed).
    pub(crate) fn finished(&self) -> bool {
        let st = self.lock();
        st.done_count == st.slots.len()
    }

    pub(crate) fn has_stranded(&self) -> bool {
        !self.lock().stranded.is_empty()
    }

    /// Waits up to `dur` for board activity (a completion, failure, or
    /// abort) — the main loop's pacing primitive.
    pub(crate) fn wait_for_change(&self, dur: Duration) {
        let st = self.lock();
        let _ = self.cv.wait_timeout(st, dur);
    }

    /// Claims every not-yet-done shard for local execution: bumps epochs
    /// (stale-ing any in-flight attempt), marks them done, and returns
    /// their checkpoints plus banked partials. Returns `None` when
    /// nothing is pending. In-flight attempts finishing later are
    /// harmless: their shard is done and their epoch stale, so their
    /// output is discarded whole.
    pub(crate) fn claim_pending(&self) -> Option<(Vec<Checkpoint>, Vec<Biclique>, u64)> {
        let mut st = self.lock();
        let pending: Vec<usize> = (0..st.slots.len()).filter(|&i| !st.slots[i].done).collect();
        if pending.is_empty() {
            return None;
        }
        let mut checkpoints = Vec::with_capacity(pending.len());
        let mut partials = Vec::new();
        let mut partial_emitted = 0;
        for i in pending {
            let slot = &mut st.slots[i];
            slot.epoch += 1;
            slot.done = true;
            st.done_count += 1;
            // xtask-allow: hot-alloc-loop (once per claimed shard, on the fallback path)
            checkpoints.push(st.slots[i].checkpoint.clone());
            partials.extend(std::mem::take(&mut st.slots[i].partial));
            partial_emitted += std::mem::take(&mut st.slots[i].partial_emitted);
        }
        st.ready.clear();
        st.stranded.clear();
        self.cv.notify_all();
        Some((checkpoints, partials, partial_emitted))
    }

    /// Merges a locally-executed remainder into the board's accumulators.
    pub(crate) fn merge_local(&self, bicliques: Vec<Biclique>, emitted: u64) {
        let mut st = self.lock();
        st.bicliques.extend(bicliques);
        st.emitted += emitted;
    }

    /// The straggler threshold's base: the p99 completion time, available
    /// once at least five shards have completed.
    pub(crate) fn p99_duration(&self) -> Option<Duration> {
        let st = self.lock();
        if st.durations.len() < 5 {
            return None;
        }
        let mut sorted = st.durations.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() * 99) / 100;
        sorted.get(idx.min(sorted.len() - 1)).copied()
    }

    /// Duplicates running shards whose current attempt has exceeded
    /// `threshold` (at most one duplicate per epoch). Returns the
    /// `(shard index, epoch)` pairs speculated this scan, so the caller
    /// can log them.
    pub(crate) fn speculate_stragglers(&self, threshold: Duration) -> Vec<(usize, u32)> {
        let mut st = self.lock();
        let mut launched = Vec::new();
        for i in 0..st.slots.len() {
            let entry = {
                let slot = &st.slots[i];
                let overdue =
                    slot.started.is_some_and(|t| t.elapsed() > threshold) && slot.running > 0;
                if slot.done || !overdue || slot.speculated_epoch == Some(slot.epoch) {
                    None
                } else {
                    Some((i, slot.epoch))
                }
            };
            if let Some((idx, epoch)) = entry {
                st.slots[idx].speculated_epoch = Some(epoch);
                st.ready.push_back((idx, epoch));
                st.counters.speculated += 1;
                // xtask-allow: hot-alloc-loop (speculation is rare; the common empty scan never allocates)
                launched.push((idx, epoch));
            }
        }
        if !launched.is_empty() {
            self.cv.notify_all();
        }
        launched
    }

    /// Consumes the board, returning the merged output and counters.
    pub(crate) fn finish(self) -> (Vec<Biclique>, u64, BoardCounters) {
        let st = self.state.into_inner().unwrap_or_else(PoisonError::into_inner);
        (st.bicliques, st.emitted, st.counters)
    }
}

fn bump_fail_counter(counters: &mut BoardCounters, lost_mid_run: bool) {
    if lost_mid_run {
        counters.resteals += 1;
    } else {
        counters.retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbe::checkpoint::initial_checkpoint;
    use mbe::{Algorithm, MbeOptions};

    fn shards(k: usize) -> Vec<Checkpoint> {
        let g = bigraph::BipartiteGraph::from_edges(
            6,
            6,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
        )
        .unwrap();
        initial_checkpoint(&g, &MbeOptions::new(Algorithm::Mbet)).split(&g, k).unwrap()
    }

    fn b(u: u32, v: u32) -> Biclique {
        Biclique::new(vec![u], vec![v])
    }

    #[test]
    fn first_writer_wins_and_stale_epochs_are_discarded() {
        let board = ShardBoard::new(shards(2), 4);
        let (i0, e0, t0, _c) = board.next().unwrap();
        assert!(board.complete(i0, e0, t0, vec![b(0, 0)], 1));
        assert!(!board.complete(i0, e0, t0, vec![b(9, 9)], 1), "duplicate completion discarded");

        let (i1, e1, t1, _c) = board.next().unwrap();
        // A re-steal advances the epoch; the pre-steal attempt is stale.
        let (_, _, remaining) = {
            let st = board.lock();
            (0, 0, st.slots[i1].checkpoint.clone())
        };
        assert!(board.resteal(i1, e1, remaining, vec![b(1, 1)], 1));
        assert!(!board.complete(i1, e1, t1, vec![b(2, 2)], 1), "stale attempt rejected");
        let (i1b, e1b, t1b, _c) = board.next().unwrap();
        assert_eq!(i1b, i1);
        assert!(board.complete(i1b, e1b, t1b, vec![b(3, 3)], 1));
        assert!(board.finished());

        let (bicliques, emitted, counters) = board.finish();
        assert_eq!(emitted, 3, "partial + completing attempt both counted");
        assert_eq!(bicliques.len(), 3);
        assert!(bicliques.contains(&b(1, 1)), "re-stolen partial banked");
        assert!(!bicliques.contains(&b(2, 2)), "stale output never merged");
        assert_eq!(counters.resteals, 1);
    }

    #[test]
    fn failures_requeue_then_strand_and_claim_collects_the_rest() {
        let board = ShardBoard::new(shards(3), 2);
        let (i, e, _t, _c) = board.next().unwrap();
        assert_eq!(board.fail(i, e, false), FailDisposition::Requeued);
        // The requeued entry comes back (possibly after the other shards).
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (idx, ep, _t, _c) = board.next().unwrap();
            seen.push((idx, ep));
        }
        let again = seen.iter().find(|(idx, _)| *idx == i).expect("requeued shard reappears");
        assert_eq!(board.fail(again.0, again.1, true), FailDisposition::Stranded);
        assert!(board.has_stranded());

        let (ckpts, partials, partial_emitted) = board.claim_pending().unwrap();
        assert_eq!(ckpts.len(), 3, "all shards still pending were claimed");
        assert!(partials.is_empty());
        assert_eq!(partial_emitted, 0);
        assert!(board.finished(), "claim marks shards done");
        assert!(board.next().is_none());

        board.merge_local(vec![b(7, 7)], 1);
        let (bicliques, emitted, counters) = board.finish();
        assert_eq!(bicliques, vec![b(7, 7)]);
        assert_eq!(emitted, 1);
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.resteals, 1, "mid-run loss counted as a re-steal");
    }

    #[test]
    fn speculation_duplicates_a_straggler_once_per_epoch() {
        let board = ShardBoard::new(shards(1), 4);
        let (i, e, t, _c) = board.next().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(board.speculate_stragglers(Duration::ZERO), vec![(i, e)]);
        assert!(board.speculate_stragglers(Duration::ZERO).is_empty(), "once per epoch");
        let (i2, e2, t2, _c) = board.next().unwrap();
        assert_eq!((i2, e2), (i, e), "duplicate runs the same epoch");
        assert!(board.complete(i, e, t, vec![b(0, 0)], 1));
        assert!(!board.complete(i2, e2, t2, vec![b(0, 0)], 1), "loser discarded");
        let (bicliques, _, counters) = board.finish();
        assert_eq!(bicliques.len(), 1, "no duplicates from speculation");
        assert_eq!(counters.speculated, 1);
    }

    #[test]
    fn completion_duration_is_the_accepted_attempts_own() {
        let board = ShardBoard::new(shards(1), 4);
        let (i, e, t, _c) = board.next().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // A speculative duplicate resets the slot's latest-dispatch time…
        assert_eq!(board.speculate_stragglers(Duration::ZERO).len(), 1);
        let (_i2, _e2, t2, _c) = board.next().unwrap();
        assert!(t2 > t);
        // …but the first attempt completes, and the recorded duration is
        // measured from *its* start, not the duplicate's.
        assert!(board.complete(i, e, t, vec![b(0, 0)], 1));
        let recorded = board.lock().durations[0];
        assert!(
            recorded >= Duration::from_millis(20),
            "duration must cover the accepted attempt's full run, got {recorded:?}"
        );
    }

    #[test]
    fn completion_and_resteal_unstrand_a_shard() {
        let board = ShardBoard::new(shards(1), 1);
        let (i, e, t, _c) = board.next().unwrap();
        // The only attempt budget is spent: the shard strands while a
        // speculative duplicate (same epoch) is still out.
        assert_eq!(board.fail(i, e, false), FailDisposition::Stranded);
        assert!(board.has_stranded());
        assert!(board.complete(i, e, t, vec![b(0, 0)], 1));
        assert!(!board.has_stranded(), "a completed shard must not trip the fallback ladder");
        assert!(board.finished());

        // Same shape, but the straggling duplicate comes back with a
        // checkpointed partial: the re-steal re-queues the shard, so it
        // is pending again — not stranded.
        let board = ShardBoard::new(shards(1), 1);
        let (i, e, _t, c) = board.next().unwrap();
        assert_eq!(board.fail(i, e, false), FailDisposition::Stranded);
        assert!(board.has_stranded());
        assert!(board.resteal(i, e, c, vec![b(1, 1)], 1));
        assert!(!board.has_stranded(), "a re-queued shard is pending, not stranded");
    }

    #[test]
    fn abort_drains_next() {
        let board = ShardBoard::new(shards(2), 4);
        board.abort();
        assert!(board.next().is_none());
        assert!(board.is_aborted());
    }
}
