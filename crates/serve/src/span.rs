//! Coordinator span log: the distributed half of a query's trace.
//!
//! A worker's `JsonlTraceObserver` records one process's enumeration;
//! this module records the *coordinator's* side of a distributed query
//! — which shard attempts were dispatched where, retried, re-stolen,
//! speculated, merged, or discarded — as the same hand-rolled JSONL
//! shape (schema [`mbe::obs::TRACE_SCHEMA_VERSION`], flat objects,
//! unsigned ints and escape-free strings, monotone `t_us`).
//!
//! Every dispatched attempt is assigned a **span id**, carried to the
//! worker inside the request's [`crate::protocol::TraceContext`]; the
//! worker stamps `trace`/`parent` onto its own run trace's header, so
//! `xtask trace-check --distributed DIR` can join each accepted shard
//! span to exactly one worker run trace. The first line is always
//! `coord_start` (with the trace id and a wall-clock `anchor`), the
//! last `coord_end`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use mbe::obs::TRACE_SCHEMA_VERSION;

/// Mutable writer state, serialized by one mutex so timestamps are
/// taken and written atomically (mirrors `JsonlTraceObserver`).
struct SpanInner {
    out: std::io::BufWriter<std::fs::File>,
    start: Instant,
    anchor_us: u64,
    last_us: u64,
    buf: String,
    error: Option<std::io::Error>,
}

/// A JSONL span log for one distributed query.
pub(crate) struct SpanLog {
    trace_id: u64,
    next_span: AtomicU64,
    inner: Mutex<SpanInner>,
}

impl SpanLog {
    /// Creates (truncating) `path` and writes nothing yet; the caller
    /// opens the log with [`SpanLog::coord_start`].
    pub(crate) fn create(path: &str, trace_id: u64) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let anchor_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Ok(SpanLog {
            trace_id,
            next_span: AtomicU64::new(1),
            inner: Mutex::new(SpanInner {
                out: std::io::BufWriter::new(file),
                start: Instant::now(),
                anchor_us,
                last_us: 0,
                buf: String::with_capacity(160),
                error: None,
            }),
        })
    }

    /// The query-scoped trace id every event (and every worker trace)
    /// is keyed by.
    pub(crate) fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Takes the first write error encountered, if any.
    pub(crate) fn take_error(&self) -> Option<std::io::Error> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).error.take()
    }

    /// Appends one event line (same prelude/fields shape as the worker
    /// trace writer).
    fn event(&self, ev: &str, fields: impl FnOnce(&mut String)) {
        use std::fmt::Write as _;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.error.is_some() {
            return;
        }
        let us = inner.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let us = us.max(inner.last_us);
        inner.last_us = us;
        let mut buf = std::mem::take(&mut inner.buf);
        buf.clear();
        let _ = write!(buf, "{{\"v\":{TRACE_SCHEMA_VERSION},\"t_us\":{us},\"ev\":\"{ev}\"");
        fields(&mut buf);
        buf.push_str("}\n");
        if let Err(e) = inner.out.write_all(buf.as_bytes()) {
            inner.error = Some(e);
        }
        inner.buf = buf;
    }

    /// Header line: trace id, wall-clock anchor, fan-out shape.
    pub(crate) fn coord_start(&self, shards: u64, workers: u64) {
        let anchor_us = self.inner.lock().unwrap_or_else(PoisonError::into_inner).anchor_us;
        self.event("coord_start", |b| {
            field_u64(b, "trace", self.trace_id);
            field_u64(b, "anchor", anchor_us);
            field_u64(b, "shards", shards);
            field_u64(b, "workers", workers);
        });
    }

    /// A shard attempt was handed to worker `worker`; returns the fresh
    /// span id carried to that worker as its parent span.
    pub(crate) fn dispatch(&self, shard: u64, epoch: u64, worker: u64) -> u64 {
        let span = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.event("dispatch", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
            field_u64(b, "worker", worker);
            field_u64(b, "span", span);
        });
        span
    }

    /// A completed remote attempt's result was accepted into the board.
    pub(crate) fn merge(&self, shard: u64, epoch: u64, span: u64, emitted: u64) {
        self.event("merge", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
            field_u64(b, "span", span);
            field_u64(b, "emitted", emitted);
        });
    }

    /// A remote result arrived too late (stale epoch or already done)
    /// and was discarded.
    pub(crate) fn discard(&self, shard: u64, epoch: u64, span: u64) {
        self.event("discard", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
            field_u64(b, "span", span);
        });
    }

    /// A failed attempt was re-queued for another try (same epoch).
    pub(crate) fn retry(&self, shard: u64, epoch: u64) {
        self.event("retry", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
        });
    }

    /// A partial result advanced the shard's checkpoint and re-queued
    /// the remainder under a bumped epoch.
    pub(crate) fn resteal(&self, shard: u64, epoch: u64) {
        self.event("resteal", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
        });
    }

    /// A straggler shard was re-queued for speculative duplication.
    pub(crate) fn speculate(&self, shard: u64, epoch: u64) {
        self.event("speculate", |b| {
            field_u64(b, "shard", shard);
            field_u64(b, "epoch", epoch);
        });
    }

    /// The coordinator claimed `claimed` unfinished shards and ran their
    /// merged remainder locally (no worker trace backs that work).
    pub(crate) fn fallback(&self, claimed: u64) {
        self.event("fallback", |b| field_u64(b, "claimed", claimed));
    }

    /// Footer line: outcome and fan-out counters; flushes the file.
    pub(crate) fn coord_end(
        &self,
        stop: &str,
        retries: u64,
        resteals: u64,
        speculated: u64,
        degraded: bool,
    ) {
        self.event("coord_end", |b| {
            field_str(b, "stop", stop);
            field_u64(b, "retries", retries);
            field_u64(b, "resteals", resteals);
            field_u64(b, "speculated", speculated);
            field_u64(b, "degraded", u64::from(degraded));
        });
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = inner.out.flush() {
            if inner.error.is_none() {
                inner.error = Some(e);
            }
        }
    }
}

impl Drop for SpanLog {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = inner.out.flush();
    }
}

/// Appends `,"key":value` for a numeric value.
fn field_u64(buf: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(buf, ",\"{key}\":{value}");
}

/// Appends `,"key":"value"` for a static label.
fn field_str(buf: &mut String, key: &str, value: &str) {
    use std::fmt::Write as _;
    let _ = write!(buf, ",\"{key}\":\"{value}\"");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_log_shape_is_versioned_monotone_and_bounded() {
        let path = std::env::temp_dir()
            .join(format!("mbe-span-unit-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let log = SpanLog::create(&path, 42).unwrap();
        assert_eq!(log.trace_id(), 42);
        log.coord_start(3, 2);
        let s1 = log.dispatch(0, 0, 0);
        let s2 = log.dispatch(1, 0, 1);
        assert_ne!(s1, s2, "span ids are unique per attempt");
        log.retry(1, 0);
        log.resteal(1, 1);
        let s3 = log.dispatch(1, 1, 0);
        log.merge(0, 0, s1, 10);
        log.merge(1, 1, s3, 5);
        log.speculate(2, 0);
        let s4 = log.dispatch(2, 0, 1);
        log.discard(2, 0, s4);
        log.fallback(1);
        log.coord_end("completed", 1, 1, 1, true);
        assert!(log.take_error().is_none());
        drop(log);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"ev\":\"coord_start\""), "{}", lines[0]);
        assert!(lines[0].contains("\"trace\":42"), "{}", lines[0]);
        assert!(lines[0].contains("\"anchor\":"), "{}", lines[0]);
        assert!(lines.last().unwrap().contains("\"ev\":\"coord_end\""));
        let mut last = 0u64;
        for l in &lines {
            assert!(l.starts_with(&format!("{{\"v\":{TRACE_SCHEMA_VERSION},\"t_us\":")), "{l}");
            let t: u64 = l
                .split("\"t_us\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .unwrap()
                .parse()
                .unwrap();
            assert!(t >= last);
            last = t;
        }
        // The fallback claim is recorded, and merges carry their spans.
        assert!(text.contains("\"ev\":\"fallback\",\"claimed\":1"));
        assert!(text.contains(&format!("\"span\":{s1}")));
    }
}
