//! End-to-end acceptance tests for the serve crate, over real loopback
//! sockets and OS threads:
//!
//! (a) concurrent clients on two graphs get correct, duplicate-free
//!     results matching direct [`Enumeration`];
//! (b) a repeated identical query is served from the cache — the hit
//!     counter moves and no new enumeration tasks start;
//! (c) a query past the admission queue bound gets the typed busy
//!     response instead of blocking;
//! (d) `SHUTDOWN` during a long query returns a checkpoint-bearing
//!     cancelled reply and the server exits cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;
use mbe::checkpoint::graph_fingerprint;
use mbe::service::QueryParams;
use mbe::{Biclique, Checkpoint, Enumeration, StopReason};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Client, QueryRequest, ServeError, Server, ServerConfig, ServerHandle, ServerSummary};

/// Crown graph S(n) — K(n,n) minus a perfect matching — with 2^n − 2
/// maximal bicliques: a deterministically long-running query.
fn crown(n: u32) -> BipartiteGraph {
    let mut edges = Vec::with_capacity((n * (n - 1)) as usize);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(n, n, &edges).unwrap()
}

fn start(cfg: ServerConfig, preload: &[(&str, &BipartiteGraph)]) -> (ServerHandle, ServerJoin) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    for (name, graph) in preload {
        server.preload(name, (*graph).clone()).unwrap();
    }
    let handle = server.handle();
    (handle, ServerJoin(std::thread::spawn(move || server.run().unwrap())))
}

struct ServerJoin(std::thread::JoinHandle<ServerSummary>);

impl ServerJoin {
    fn join(self) -> ServerSummary {
        self.0.join().expect("server thread panicked")
    }
}

fn request(graph: &str, params: QueryParams) -> QueryRequest {
    QueryRequest { graph: graph.to_string(), params, max_return: u32::MAX, trace: None }
}

fn sorted(mut bicliques: Vec<Biclique>) -> Vec<Biclique> {
    bicliques.sort();
    bicliques
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// (a): six clients across two graphs — one preloaded, one `LOAD`ed over
/// the wire from a file — all see exactly the direct enumeration.
#[test]
fn concurrent_clients_on_two_graphs_match_direct_enumeration() {
    let mut rng = StdRng::seed_from_u64(11);
    let g1 = gen::er::gnm(&mut rng, 40, 40, 300);
    let g2 = gen::er::gnm(&mut rng, 35, 45, 280);
    let expected1 = sorted(Enumeration::new(&g1).collect().unwrap().bicliques);
    let expected2 = sorted(Enumeration::new(&g2).collect().unwrap().bicliques);

    let path = std::env::temp_dir().join(format!("serve-e2e-{}-g2.txt", std::process::id()));
    bigraph::io::write_edge_list_path(&g2, &path).unwrap();

    let (handle, join) = start(
        ServerConfig { workers: 4, queue_capacity: 16, ..ServerConfig::default() },
        &[("g1", &g1)],
    );
    let addr = handle.addr();

    let mut admin = Client::connect(addr).unwrap();
    let info = admin.load("g2", path.to_string_lossy().as_ref()).unwrap();
    assert_eq!(info.fingerprint, graph_fingerprint(&g2), "file roundtrip preserved the graph");
    let listed = admin.list().unwrap();
    assert_eq!(
        listed.iter().map(|i| i.name.as_str()).collect::<Vec<_>>(),
        ["g1", "g2"],
        "LIST is sorted and complete"
    );
    // Unknown graphs are a typed error, not a hang.
    match admin.query(request("nope", QueryParams::default())) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, serve::protocol::errcode::UNKNOWN_GRAPH)
        }
        other => panic!("expected unknown-graph error, got {other:?}"),
    }

    let queries_run = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..6 {
            let (name, expected) = if i % 2 == 0 { ("g1", &expected1) } else { ("g2", &expected2) };
            let queries_run = &queries_run;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Distinct orders defeat the result cache, so every
                // client really enumerates concurrently.
                let params =
                    QueryParams { order: VertexOrder::Random(i), ..QueryParams::default() };
                let reply = client.query(request(name, params)).unwrap();
                assert_eq!(reply.stop, StopReason::Completed);
                assert_eq!(reply.total, expected.len() as u64);
                let got = sorted(reply.bicliques);
                for pair in got.windows(2) {
                    assert!(pair[0] < pair[1], "duplicate biclique in served result");
                }
                assert_eq!(&got, expected, "served result differs from direct enumeration");
                queries_run.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(queries_run.load(Ordering::Relaxed), 6);

    let stats = admin.stats().unwrap();
    assert_eq!(stats.graphs, 2);
    assert_eq!(stats.queries, 6, "six answered queries; the unknown-graph request never ran");

    handle.shutdown();
    let summary = join.join();
    assert_eq!(summary.graphs, 2);
    let _ = std::fs::remove_file(&path);
}

/// (b): the second identical query is a cache hit — flagged as cached,
/// hit counter up, and zero new enumeration tasks started.
#[test]
fn repeated_query_is_served_from_cache_without_new_work() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::er::gnm(&mut rng, 30, 30, 200);
    let (handle, join) = start(ServerConfig::default(), &[("g", &g)]);
    let addr = handle.addr();

    let mut first_client = Client::connect(addr).unwrap();
    let first = first_client.query(request("g", QueryParams::default())).unwrap();
    assert!(!first.cached);
    assert_eq!(first.stop, StopReason::Completed);

    let stats_before = first_client.stats().unwrap();
    assert_eq!(stats_before.cache.misses, 1);
    assert_eq!(stats_before.cache.hits, 0);
    assert_eq!(stats_before.cache.insertions, 1);
    let tasks_before = stats_before.tasks_started;
    assert!(tasks_before > 0, "the first run must have started enumeration tasks");

    // A *different* connection sees the same cache.
    let mut second_client = Client::connect(addr).unwrap();
    let second = second_client.query(request("g", QueryParams::default())).unwrap();
    assert!(second.cached, "identical repeat must hit the cache");
    assert_eq!(second.stop, StopReason::Completed);
    assert_eq!(sorted(second.bicliques), sorted(first.bicliques));
    assert_eq!(second.emitted, first.emitted);

    let stats_after = second_client.stats().unwrap();
    assert_eq!(stats_after.cache.hits, 1, "hit counter increments");
    assert_eq!(stats_after.cache.misses, 1);
    assert_eq!(
        stats_after.tasks_started, tasks_before,
        "a cache hit must not start enumeration tasks"
    );
    assert_eq!(stats_after.queries, 2);

    // Execution hints don't defeat the cache: same query with a different
    // thread count is still a hit.
    let hinted = QueryParams { threads: 3, ..QueryParams::default() };
    let third = second_client.query(request("g", hinted)).unwrap();
    assert!(third.cached);

    handle.shutdown();
    let summary = join.join();
    assert_eq!(summary.cache.hits, 2);
    assert_eq!(summary.queries, 3);
}

/// (c): with one worker and one queue slot, a third concurrent query is
/// rejected with the typed busy response immediately instead of waiting.
#[test]
fn overflowing_the_admission_queue_returns_typed_busy() {
    let slow = crown(22);
    let cfg = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
    let (handle, join) = start(cfg, &[("slow", &slow)]);
    let addr = handle.addr();
    let count_only = |seed| QueryParams {
        count_only: true,
        order: VertexOrder::Random(seed),
        ..QueryParams::default()
    };

    // Query 1 occupies the only worker.
    let running = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(request("slow", count_only(1))).unwrap()
    });
    let mut probe = Client::connect(addr).unwrap();
    wait_until("query 1 to start executing", || {
        let s = probe.stats().unwrap();
        s.inflight >= 1 && s.queued == 0
    });

    // Query 2 fills the single queue slot.
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(request("slow", count_only(2))).unwrap()
    });
    wait_until("query 2 to be queued", || probe.stats().unwrap().queued >= 1);

    // Query 3 must bounce, fast, with the queue state attached.
    let t0 = Instant::now();
    let mut rejected_client = Client::connect(addr).unwrap();
    match rejected_client.query(request("slow", count_only(3))) {
        Err(ServeError::Busy { queued, capacity }) => {
            assert_eq!(capacity, 1);
            assert!(queued >= 1);
        }
        other => panic!("expected the typed busy rejection, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "busy rejection must not wait behind the running query"
    );
    assert_eq!(probe.stats().unwrap().busy_rejected, 1);

    // Drain: shutdown cancels the running and queued queries; both
    // clients still get well-formed (cancelled) replies.
    handle.shutdown();
    assert_eq!(running.join().unwrap().stop, StopReason::Cancelled);
    assert_eq!(queued.join().unwrap().stop, StopReason::Cancelled);
    let summary = join.join();
    assert_eq!(summary.busy_rejected, 1);
}

/// (d): `SHUTDOWN` mid-query — the long query comes back as a cancelled,
/// checkpoint-bearing reply; the server drains and exits cleanly.
#[test]
fn shutdown_during_long_query_returns_checkpoint_and_exits() {
    let slow = crown(22);
    let fingerprint = graph_fingerprint(&slow);
    let (handle, join) = start(ServerConfig::default(), &[("slow", &slow)]);
    let addr = handle.addr();

    let long = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .query(request("slow", QueryParams { count_only: true, ..QueryParams::default() }))
            .unwrap()
    });
    let mut second = Client::connect(addr).unwrap();
    wait_until("the long query to start", || second.stats().unwrap().inflight >= 1);
    assert!(!handle.is_shutting_down());
    second.shutdown().unwrap();

    let reply = long.join().unwrap();
    assert_eq!(reply.stop, StopReason::Cancelled);
    assert!(!reply.cached);
    let bytes = reply.checkpoint.expect("a drained query must carry its checkpoint");
    let checkpoint = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(checkpoint.fingerprint, fingerprint, "checkpoint pins the queried graph");
    assert_eq!(checkpoint.stop, StopReason::Cancelled);
    assert_eq!(checkpoint.emitted, reply.emitted);
    assert!(!checkpoint.frontier.is_empty(), "mid-run stop leaves unexplored frontier tasks");

    let summary = join.join();
    assert_eq!(summary.queries, 1, "the drained query was the only one answered");
    // The listener is gone: no new connections are accepted.
    wait_until("the port to close", || Client::connect(addr).is_err());
}

/// Per-connection cancellation: a `CANCEL` injected through a
/// [`serve::Canceller`] stops that connection's in-flight query.
#[test]
fn canceller_stops_own_inflight_query() {
    let slow = crown(22);
    let (handle, join) = start(ServerConfig::default(), &[("slow", &slow)]);
    let addr = handle.addr();

    let client = Client::connect(addr).unwrap();
    let mut canceller = client.canceller().unwrap();
    let worker = std::thread::spawn(move || {
        let mut client = client;
        client
            .query(request("slow", QueryParams { count_only: true, ..QueryParams::default() }))
            .unwrap()
    });
    // Make it likely the query is mid-run; correctness doesn't depend on
    // it (an early CANCEL is read by the query's wait loop either way).
    std::thread::sleep(Duration::from_millis(30));
    canceller.cancel().unwrap();
    let reply = worker.join().unwrap();
    assert_eq!(reply.stop, StopReason::Cancelled);
    assert!(reply.checkpoint.is_some());

    // The connection (and server) survive a cancelled query.
    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.stats().unwrap().queries, 1);
    handle.shutdown();
    join.join();
}
