//! End-to-end tests for the `LOAD_GENERAL` verb and the OCT query
//! route, over real loopback sockets:
//!
//! (a) a general graph loaded over the wire answers `QUERY` with exactly
//!     the bicliques a local [`oct::OctEnumeration`] run produces, the
//!     repeat query is a cache hit, and the `load_general` op counter
//!     moves;
//! (b) bipartite-only parameters (`min_left`/`min_right` > 1, `top_k`)
//!     and `QUERY_SHARD` against a general graph answer `wrong-kind`;
//! (c) the two load verbs share one namespace: a general name cannot be
//!     rebound to a bipartite graph, and an identical general re-load is
//!     idempotent.

use std::collections::BTreeSet;

use gen::near_bipartite::{near_bipartite, NearBipartiteConfig};
use mbe::service::QueryParams;
use mbe::StopReason;
use oct::OctEnumeration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{
    Client, QueryRequest, ServeError, Server, ServerConfig, ServerHandle, ServerSummary,
    ShardRequest,
};

fn start(cfg: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let handle = server.handle();
    (handle, std::thread::spawn(move || server.run().unwrap()))
}

fn request(graph: &str, params: QueryParams) -> QueryRequest {
    QueryRequest { graph: graph.to_string(), params, max_return: u32::MAX, trace: None }
}

/// Canonical vertex-set keys (sorted `A ∪ B`) of a reply's bicliques —
/// the same identity the OCT driver dedups on.
fn keys(bicliques: &[mbe::Biclique]) -> BTreeSet<Vec<u32>> {
    bicliques
        .iter()
        .map(|b| {
            let mut k: Vec<u32> = b.left.iter().chain(b.right.iter()).copied().collect();
            k.sort_unstable();
            k
        })
        .collect()
}

#[test]
fn load_general_query_matches_local_oct_driver() {
    let mut rng = StdRng::seed_from_u64(31);
    let (g, _plan) = near_bipartite(&mut rng, &NearBipartiteConfig::new(12, 11, 50, 4));
    let expected = {
        let report = OctEnumeration::new(&g).collect().unwrap();
        assert_eq!(report.stop, StopReason::Completed);
        keys(&report.bicliques)
    };
    assert!(!expected.is_empty());

    let path = std::env::temp_dir().join(format!("serve-oct-{}.txt", std::process::id()));
    bigraph::general::write_general_edge_list_path(&g, &path).unwrap();

    let (handle, join) = start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let mut client = Client::connect(handle.addr()).unwrap();

    let info = client.load_general("road", path.to_string_lossy().as_ref()).unwrap();
    assert_eq!(info.fingerprint, g.fingerprint(), "file roundtrip preserved the graph");
    assert_eq!(info.num_u, g.num_vertices() as u64, "general info carries |V| in num_u");
    assert_eq!(info.num_v, 0);
    assert_eq!(info.num_edges, g.num_edges() as u64);
    let listed = client.list().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].name, "road");

    let first = client.query(request("road", QueryParams::default())).unwrap();
    assert_eq!(first.stop, StopReason::Completed);
    assert!(!first.cached);
    assert_eq!(keys(&first.bicliques), expected, "served OCT result differs from local driver");
    assert_eq!(first.emitted, expected.len() as u64);

    // The repeat is a cache hit with the same payload.
    let second = client.query(request("road", QueryParams::default())).unwrap();
    assert!(second.cached, "identical repeat must hit the cache");
    assert_eq!(keys(&second.bicliques), expected);

    // Threaded execution is a different canonical key? No — threads are
    // an execution hint, excluded from the key, so this also hits.
    let hinted = QueryParams { threads: 3, ..QueryParams::default() };
    assert!(client.query(request("road", hinted)).unwrap().cached);

    let metrics = client.metrics().unwrap();
    let slot = metrics.ops.get(serve::telemetry::OP_LOAD_GENERAL).unwrap();
    assert_eq!(slot.count, 1, "load_general op slot counts the wire request");
    assert_eq!(slot.errors, 0);

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.queries, 3);
    assert_eq!(summary.cache.hits, 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bipartite_only_params_and_shards_answer_wrong_kind() {
    let mut rng = StdRng::seed_from_u64(32);
    let (g, _plan) = near_bipartite(&mut rng, &NearBipartiteConfig::new(6, 6, 18, 2));
    let path = std::env::temp_dir().join(format!("serve-oct-kind-{}.txt", std::process::id()));
    bigraph::general::write_general_edge_list_path(&g, &path).unwrap();

    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load_general("g", path.to_string_lossy().as_ref()).unwrap();

    let expect_wrong_kind = |result: Result<_, ServeError>, what: &str| match result {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, serve::protocol::errcode::WRONG_KIND, "{what}")
        }
        other => panic!("{what}: expected wrong-kind, got {other:?}"),
    };

    let thresholded = QueryParams { min_left: 2, ..QueryParams::default() };
    expect_wrong_kind(client.query(request("g", thresholded)), "min_left > 1");
    let top_k = QueryParams { top_k: Some(3), ..QueryParams::default() };
    expect_wrong_kind(client.query(request("g", top_k)), "top_k");

    // The kind check precedes shard-checkpoint decoding, so even a junk
    // checkpoint aimed at a general graph reports the kind error.
    let shard = ShardRequest {
        graph: "g".to_string(),
        params: QueryParams::default(),
        max_return: u32::MAX,
        checkpoint: vec![0xFF; 8],
        trace: None,
    };
    expect_wrong_kind(client.query_shard(shard), "QUERY_SHARD on general graph");

    // Rejected queries never ran: a well-formed query still works.
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_verbs_share_one_namespace() {
    let mut rng = StdRng::seed_from_u64(33);
    let (g, _plan) = near_bipartite(&mut rng, &NearBipartiteConfig::new(5, 5, 14, 2));
    let bip = gen::er::gnm(&mut rng, 6, 6, 14);

    let gpath = std::env::temp_dir().join(format!("serve-oct-ns-g-{}.txt", std::process::id()));
    let bpath = std::env::temp_dir().join(format!("serve-oct-ns-b-{}.txt", std::process::id()));
    bigraph::general::write_general_edge_list_path(&g, &gpath).unwrap();
    bigraph::io::write_edge_list_path(&bip, &bpath).unwrap();

    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let gpath_str = gpath.to_string_lossy().to_string();
    let bpath_str = bpath.to_string_lossy().to_string();

    let info = client.load_general("shared", &gpath_str).unwrap();
    // Re-loading the identical general file is idempotent.
    let again = client.load_general("shared", &gpath_str).unwrap();
    assert_eq!(again.fingerprint, info.fingerprint);

    // Binding the taken name to a bipartite graph is a typed conflict.
    match client.load("shared", &bpath_str) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, serve::protocol::errcode::NAME_CONFLICT)
        }
        other => panic!("expected name-conflict, got {other:?}"),
    }
    // ... and the original binding survives: the general query still runs.
    let reply = client.query(request("shared", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(&gpath);
    let _ = std::fs::remove_file(&bpath);
}
