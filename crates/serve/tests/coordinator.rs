//! Fault-harness acceptance tests for coordinator mode, over real
//! loopback sockets:
//!
//! (a) happy path — a 3-worker coordinator answers exactly the direct
//!     enumeration, with distribution provenance attached;
//! (b) a dead worker address among live ones — retried, quarantined,
//!     and routed around;
//! (c) a hanging worker — the silent shard times out and is re-stolen;
//! (d) every worker dead — graceful degradation to local enumeration,
//!     flagged `degraded`;
//! (e) every worker dead with fallback disabled — the typed
//!     `no-workers` error;
//! (f) straggler speculation — a held shard is duplicated onto a
//!     healthy worker and first-writer-wins keeps the result exact;
//! (g) (with `--features fault-injection`) a scripted mid-shard worker
//!     panic — the partial reply's checkpoint is re-stolen and the
//!     merged result still matches the direct run.
//!
//! Every scenario asserts the bottom line of DESIGN §8c: whatever the
//! failure, the merged result equals a direct single-process run,
//! duplicate-free.

use std::io::Read;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use bigraph::BipartiteGraph;
use mbe::service::QueryParams;
use mbe::{Biclique, Enumeration, StopReason};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::protocol::{errcode, Reply, Request, Response};
use serve::wire::{read_frame, write_frame, ReadOutcome};
use serve::{
    Client, CoordinatorConfig, QueryReply, QueryRequest, ServeError, Server, ServerConfig,
    ServerHandle,
};

fn sorted(mut bicliques: Vec<Biclique>) -> Vec<Biclique> {
    bicliques.sort();
    bicliques
}

fn request(graph: &str, params: QueryParams) -> QueryRequest {
    QueryRequest { graph: graph.to_string(), params, max_return: u32::MAX, trace: None }
}

/// Starts a stock worker preloaded with `graph`; returns its address and
/// shutdown handle (the server thread is joined via the handle at exit).
fn start_worker(name: &str, graph: &BipartiteGraph, cfg: ServerConfig) -> (String, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    server.preload(name, graph.clone()).unwrap();
    let handle = server.handle();
    std::thread::spawn(move || server.run().unwrap());
    (handle.addr().to_string(), handle)
}

/// Coordinator settings tuned for fast tests: tight backoff, quick
/// quarantine, prompt re-probe.
fn coord_cfg(workers: Vec<String>) -> CoordinatorConfig {
    CoordinatorConfig {
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        quarantine_after: 2,
        quarantine_for: Duration::from_millis(200),
        probe_patience: Duration::from_millis(500),
        // Speculation off unless a test opts in.
        speculate_min: Duration::from_secs(120),
        ..CoordinatorConfig::new(workers)
    }
}

fn start_coordinator(
    name: &str,
    graph: &BipartiteGraph,
    coord: CoordinatorConfig,
) -> (ServerHandle, std::thread::JoinHandle<serve::ServerSummary>) {
    let cfg = ServerConfig { coordinator: Some(coord), ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    server.preload(name, graph.clone()).unwrap();
    let handle = server.handle();
    (handle, std::thread::spawn(move || server.run().unwrap()))
}

/// Binds and immediately drops a listener: an address that refuses
/// connections (a "crashed" worker).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

/// A worker that accepts connections and reads requests but never
/// replies — the hang/straggler fixture. Accepted sockets are parked so
/// the peer sees silence, not EOF.
fn hang_server() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let mut parked = Vec::new();
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let mut reader = stream.try_clone().unwrap();
            std::thread::spawn(move || {
                let mut sink = [0u8; 4096];
                while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
            });
            parked.push(stream);
        }
    });
    addr
}

/// A protocol-breaking worker: every shard request is answered with a
/// "clipped" Completed reply that advertises emissions it does not carry
/// (`total`/`emitted` > `bicliques.len()`) — the shape an out-of-contract
/// worker clipping internal shard replies by its own `max_return` config
/// would produce.
fn clipping_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || loop {
                match read_frame(&mut stream, 64 << 20, Duration::from_secs(5)) {
                    Ok(ReadOutcome::Frame(payload)) => {
                        let response = match Request::decode(&payload) {
                            Ok(Request::QueryShard(_)) => Response::Ok(Reply::Shard(QueryReply {
                                stop: StopReason::Completed,
                                cached: false,
                                emitted: 7,
                                elapsed_us: 1,
                                total: 7,
                                bicliques: Vec::new(),
                                checkpoint: None,
                                dist: None,
                            })),
                            _ => Response::Err {
                                code: errcode::BAD_REQUEST,
                                message: "unsupported".into(),
                            },
                        };
                        if write_frame(&mut stream, &response.encode()).is_err() {
                            return;
                        }
                    }
                    Ok(ReadOutcome::Idle) => {}
                    _ => return,
                }
            });
        }
    });
    addr
}

fn test_graph(seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::er::gnm(&mut rng, 40, 40, 300)
}

/// (a): three live workers; the merged distributed answer is exactly the
/// direct enumeration, and the reply carries distribution provenance.
#[test]
fn three_workers_match_direct_enumeration() {
    let g = test_graph(11);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let workers: Vec<_> = (0..3).map(|_| start_worker("g", &g, ServerConfig::default())).collect();
    let addrs = workers.iter().map(|(a, _)| a.clone()).collect();
    let (handle, join) = start_coordinator("g", &g, coord_cfg(addrs));

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.expect("a coordinator-assembled reply carries a DistSummary");
    assert_eq!(dist.workers, 3);
    assert!(dist.shards > 0, "the frontier was split");
    assert!(!dist.degraded, "no fallback on the happy path");
    assert_eq!(reply.emitted, expected.len() as u64);
    let got = sorted(reply.bicliques);
    for pair in got.windows(2) {
        assert!(pair[0] < pair[1], "duplicate biclique in merged result");
    }
    assert_eq!(got, expected);

    // Satellite telemetry: the coordinator's own admission pool ran the
    // scatter job, and its queue-wait counters moved with it.
    let stats = client.stats().unwrap();
    assert!(stats.jobs_executed >= 1);
    assert!(stats.queue_wait_total_us >= stats.queue_wait_max_us);

    // An identical repeat is a cache hit: no re-scatter, no dist summary.
    let again = client.query(request("g", QueryParams::default())).unwrap();
    assert!(again.cached);
    assert!(again.dist.is_none(), "cache hits carry no distribution provenance");
    assert_eq!(sorted(again.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
    for (_, worker) in workers {
        worker.shutdown();
    }
}

/// (b): one of three worker addresses refuses connections. The
/// coordinator retries, quarantines it, and completes on the live pair.
#[test]
fn dead_worker_is_retried_and_routed_around() {
    let g = test_graph(12);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let live: Vec<_> = (0..2).map(|_| start_worker("g", &g, ServerConfig::default())).collect();
    let mut addrs: Vec<String> = live.iter().map(|(a, _)| a.clone()).collect();
    addrs.insert(1, dead_addr());
    let (handle, join) = start_coordinator("g", &g, coord_cfg(addrs));

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.retries >= 1, "the dead address cost at least one retry: {dist:?}");
    assert!(!dist.degraded, "two healthy workers remain — no fallback");
    assert_eq!(sorted(reply.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
    for (_, worker) in live {
        worker.shutdown();
    }
}

/// (c): a worker that accepts a shard and goes silent. The per-attempt
/// deadline expires, the shard is re-stolen, and the result is exact.
#[test]
fn hung_worker_shard_is_restolen() {
    let g = test_graph(13);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let live: Vec<_> = (0..2).map(|_| start_worker("g", &g, ServerConfig::default())).collect();
    let mut addrs: Vec<String> = live.iter().map(|(a, _)| a.clone()).collect();
    addrs.push(hang_server());
    let mut cfg = coord_cfg(addrs);
    cfg.attempt_timeout = Duration::from_millis(400);
    let (handle, join) = start_coordinator("g", &g, cfg);

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.resteals >= 1, "the hung shard was lost mid-run and re-stolen: {dist:?}");
    assert_eq!(sorted(reply.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
    for (_, worker) in live {
        worker.shutdown();
    }
}

/// (d): every worker is unreachable. The coordinator degrades to local
/// enumeration: same exact answer, `degraded` provenance set.
#[test]
fn all_workers_dead_degrades_to_local_enumeration() {
    let g = test_graph(14);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let mut cfg = coord_cfg(vec![dead_addr(), dead_addr()]);
    cfg.quarantine_for = Duration::from_secs(30); // stay down for the test
    let (handle, join) = start_coordinator("g", &g, cfg);

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.degraded, "local fallback must be flagged: {dist:?}");
    assert_eq!(sorted(reply.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
}

/// (e): same wreckage, fallback disabled — the typed `no-workers` error
/// instead of a silent local run.
#[test]
fn all_workers_dead_without_fallback_is_typed_no_workers() {
    let g = test_graph(15);
    let mut cfg = coord_cfg(vec![dead_addr(), dead_addr()]);
    cfg.quarantine_for = Duration::from_secs(30);
    cfg.local_fallback = false;
    let (handle, join) = start_coordinator("g", &g, cfg);

    let mut client = Client::connect(handle.addr()).unwrap();
    match client.query(request("g", QueryParams::default())) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, serve::protocol::errcode::NO_WORKERS);
        }
        other => panic!("expected the typed no-workers error, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

/// (f): a hung worker holds one shard while a live worker drains the
/// rest; with the straggler threshold floored at zero, the held shard is
/// speculatively duplicated and the first completion wins.
#[test]
fn straggler_shard_is_speculatively_reexecuted() {
    let g = test_graph(16);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let (live_addr, live_handle) = start_worker("g", &g, ServerConfig::default());
    let mut cfg = coord_cfg(vec![live_addr, hang_server()]);
    cfg.speculate_min = Duration::ZERO;
    cfg.speculate_factor = 0.0;
    // Long enough that speculation (immediate once p99 exists) beats the
    // attempt timeout; short enough that the test drains promptly.
    cfg.attempt_timeout = Duration::from_secs(3);
    let (handle, join) = start_coordinator("g", &g, cfg);

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.speculated >= 1, "the held shard was speculated: {dist:?}");
    assert_eq!(sorted(reply.bicliques), expected, "first-writer-wins kept the merge exact");

    handle.shutdown();
    join.join().unwrap();
    live_handle.shutdown();
}

/// (h): workers must not clip shard replies by their own client-facing
/// `max_return` config — only the request's cap applies (DESIGN §8c).
/// Workers capped far below the result size still return full shards,
/// and the merged answer is complete with no fallback.
#[test]
fn worker_max_return_config_does_not_clip_shard_replies() {
    let g = test_graph(19);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);
    assert!(expected.len() > 3, "fixture must exceed the worker cap");

    let small = ServerConfig { max_return: 3, ..ServerConfig::default() };
    let workers: Vec<_> = (0..2).map(|_| start_worker("g", &g, small.clone())).collect();
    let addrs = workers.iter().map(|(a, _)| a.clone()).collect();
    let (handle, join) = start_coordinator("g", &g, coord_cfg(addrs));

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(!dist.degraded, "shard replies ignore the worker's config cap: {dist:?}");
    assert_eq!(reply.emitted, expected.len() as u64);
    assert_eq!(sorted(reply.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
    for (_, worker) in workers {
        worker.shutdown();
    }
}

/// (i): a worker that *does* clip (total > bicliques carried) must never
/// poison the merged result or the cache: the coordinator refuses the
/// truncated reply, strands the shards, and falls back locally — exact,
/// flagged degraded, and the cached repeat is the full list.
#[test]
fn clipped_shard_reply_is_rejected_not_merged() {
    let g = test_graph(18);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    let mut cfg = coord_cfg(vec![clipping_worker()]);
    cfg.max_attempts = 2; // the fake worker never improves; strand fast
    let (handle, join) = start_coordinator("g", &g, cfg);

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.degraded, "the clipping worker is useless; fallback must run: {dist:?}");
    assert_eq!(
        reply.emitted,
        expected.len() as u64,
        "advertised-but-absent emissions must never merge"
    );
    assert_eq!(sorted(reply.bicliques), expected);

    // The Completed distributed result entered the cache — as the full
    // list, not a truncation.
    let again = client.query(request("g", QueryParams::default())).unwrap();
    assert!(again.cached);
    assert_eq!(sorted(again.bicliques), expected);

    handle.shutdown();
    join.join().unwrap();
}

/// (j): cancelling a distributed query must not wait out a hung worker's
/// attempt timeout — in-flight shard waits are abandoned as soon as the
/// board aborts, so the reply returns at cancellation speed even with
/// the default hour-scale `attempt_timeout`.
#[test]
fn cancel_returns_promptly_despite_hung_worker() {
    let g = test_graph(20);
    let mut cfg = coord_cfg(vec![hang_server()]);
    cfg.attempt_timeout = Duration::from_secs(600); // would pin run() without abortable waits
    let (handle, join) = start_coordinator("g", &g, cfg);

    let client = Client::connect(handle.addr()).unwrap();
    let mut canceller = client.canceller().unwrap();
    let mut client = client;
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let _ = canceller.cancel();
    });
    let begun = Instant::now();
    let reply = client.query(request("g", QueryParams::default())).unwrap();
    assert_eq!(reply.stop, StopReason::Cancelled);
    assert!(
        begun.elapsed() < Duration::from_secs(30),
        "cancel was pinned behind the attempt timeout: {:?}",
        begun.elapsed()
    );
    let dist = reply.dist.unwrap();
    assert!(!dist.degraded, "nothing ran locally on the cancel path");
    assert!(reply.checkpoint.is_some(), "a cancelled distributed run returns the merged tail");

    handle.shutdown();
    join.join().unwrap();
}

/// (g): a scripted panic inside one worker's shard execution. The
/// contained-panic reply carries a checkpoint; the coordinator re-steals
/// the remainder and the merged result still matches the direct run.
#[cfg(feature = "fault-injection")]
#[test]
fn scripted_worker_panic_is_restolen_exactly() {
    use mbe::faults::FaultPlan;

    let g = test_graph(17);
    let expected = sorted(Enumeration::new(&g).collect().unwrap().bicliques);

    // One worker panics once, after 40 cumulative shard emissions; its
    // parallel driver contains the panic and replies with a checkpoint.
    let faulty_cfg =
        ServerConfig { fault_plan: Some(FaultPlan::new().panic_at(40)), ..ServerConfig::default() };
    let workers =
        vec![start_worker("g", &g, faulty_cfg), start_worker("g", &g, ServerConfig::default())];
    let addrs = workers.iter().map(|(a, _)| a.clone()).collect();
    let (handle, join) = start_coordinator("g", &g, coord_cfg(addrs));

    let mut client = Client::connect(handle.addr()).unwrap();
    // threads=2 keeps the scripted panic on the parallel driver, where
    // it is contained and checkpointed.
    let params = QueryParams { threads: 2, ..QueryParams::default() };
    let reply = client.query(request("g", params)).unwrap();
    assert_eq!(reply.stop, StopReason::Completed);
    let dist = reply.dist.unwrap();
    assert!(dist.resteals >= 1, "the panicked shard's checkpoint was re-stolen: {dist:?}");
    assert!(!dist.degraded);
    let got = sorted(reply.bicliques);
    for pair in got.windows(2) {
        assert!(pair[0] < pair[1], "re-steal must not duplicate emissions");
    }
    assert_eq!(got, expected);

    handle.shutdown();
    join.join().unwrap();
    for (_, worker) in workers {
        worker.shutdown();
    }
}
