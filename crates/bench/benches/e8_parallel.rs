//! E8 — Parallel scalability and load-aware splitting (analog of the
//! papers' parallel-speedup and load-balance figures).
//!
//! For three skewed analogues: MBET on the work-stealing driver at 1, 2,
//! 4, … threads, with load-aware task splitting on (default bounds) and
//! off (bounds = ∞, i.e. whole root subtrees are the scheduling unit).
//! Splitting matters exactly when root-task sizes are power-law skewed —
//! the load-imbalance phenomenon the papers dedicate a figure to.

use mbe::{Algorithm, MbeOptions};

fn main() {
    bench::header("E8", "parallel speedup and load-aware splitting", "load-balance figures");
    let picks = ["YG", "EE", "BX"];
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let mut threads = vec![1usize];
    while *threads.last().expect("non-empty") * 2 <= max_threads {
        let next = threads.last().expect("non-empty") * 2;
        threads.push(next);
    }

    println!(
        "{:<10}{:>9}{:>14}{:>12}{:>14}{:>12}",
        "dataset", "threads", "split ON(ms)", "speedup", "split OFF(ms)", "speedup"
    );
    for abbrev in picks {
        let Some(p) = gen::presets::by_abbrev(abbrev) else { continue };
        let g = p.build_scaled(bench::seed(), bench::scale());
        let mut base_on = None;
        let mut base_off = None;
        for &t in &threads {
            let opts_on = MbeOptions::new(Algorithm::Mbet).threads(t);
            let mut opts_off = MbeOptions::new(Algorithm::Mbet).threads(t);
            opts_off.split_height = usize::MAX;
            opts_off.split_size = usize::MAX;

            let (b_on, d_on) = bench::time_median(|| bench::count(&g, &opts_on));
            let (b_off, d_off) = bench::time_median(|| bench::count(&g, &opts_off));
            assert_eq!(b_on, b_off, "{abbrev} t={t}");

            let s_on = base_on.get_or_insert(d_on).as_secs_f64() / d_on.as_secs_f64();
            let s_off = base_off.get_or_insert(d_off).as_secs_f64() / d_off.as_secs_f64();
            println!(
                "{:<10}{:>9}{:>14.2}{:>11.2}x{:>14.2}{:>11.2}x",
                abbrev,
                t,
                d_on.as_secs_f64() * 1e3,
                s_on,
                d_off.as_secs_f64() * 1e3,
                s_off
            );
        }
    }
}
