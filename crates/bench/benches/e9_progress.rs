//! E9 — Progress over time on the large dataset (analog of the papers'
//! "evaluation on the large dataset" figure: cumulative bicliques
//! emitted vs. wall-clock time on the 19-billion-biclique TVTropes;
//! here, its bounded analogue).
//!
//! Series: MBET, MBET in the bounded-memory MBETM mode (node-budgeted
//! R-trie output store), and iMBEA. Each row is the time to reach a
//! decile of the total output — the streaming view that matters when
//! the full output does not fit anywhere. Built on
//! [`mbe::progress::ProgressSink`].

use mbe::progress::ProgressSink;
use mbe::{Algorithm, CountSink, Enumeration, MbeOptions, TrieSink};
use std::time::Duration;

fn main() {
    bench::header("E9", "progress over time on the large dataset", "large-dataset figure");
    let p = gen::presets::by_abbrev("DBT").expect("TVTropes preset");
    let g = p.build_scaled(bench::seed(), bench::scale());
    println!(
        "TVTropes analogue: |U|={} |V|={} |E|={} (real dataset: 19.6e9 bicliques)",
        g.num_u(),
        g.num_v(),
        g.num_edges()
    );

    // Total output size, once.
    let total = bench::count(&g, &MbeOptions::new(Algorithm::Mbet));
    println!("total maximal bicliques in the analogue: {total}\n");
    let sample_every = (total / 200).max(1);

    struct Row {
        label: &'static str,
        deciles: Vec<Option<Duration>>,
        total_time: Duration,
        evictions: Option<u64>,
    }
    let mut rows: Vec<Row> = Vec::new();

    for (label, alg, budget) in [
        ("MBET", Algorithm::Mbet, None),
        ("MBETM(16k)", Algorithm::Mbet, Some(1usize << 14)),
        ("iMBEA", Algorithm::Imbea, None),
    ] {
        let (deciles, total_time, evictions) = match budget {
            None => {
                let mut sink = ProgressSink::new(CountSink::default(), sample_every);
                let report = Enumeration::new(&g)
                    .algorithm(alg)
                    .run(&mut sink)
                    .expect("valid configuration");
                assert_eq!(report.stats.emitted, total, "{label}");
                (decile_times(&sink, total), report.stats.elapsed, None)
            }
            Some(b) => {
                let mut sink = ProgressSink::new(TrieSink::with_node_budget(b), sample_every);
                let report = Enumeration::new(&g)
                    .algorithm(alg)
                    .run(&mut sink)
                    .expect("valid configuration");
                assert_eq!(report.stats.emitted, total, "{label}");
                let deciles = decile_times(&sink, total);
                let ev = sink.into_inner().trie().evictions();
                (deciles, report.stats.elapsed, Some(ev))
            }
        };
        rows.push(Row { label, deciles, total_time, evictions });
    }

    print!("{:<12}", "% emitted");
    for row in &rows {
        print!("{:>14}", row.label);
    }
    println!();
    for decile in 0..10 {
        print!("{:<12}", format!("{}%", (decile + 1) * 10));
        for row in &rows {
            // Deciles the sampler missed (only possible for the last one
            // when `total % sample_every != 0`) fall back to the run's
            // total time.
            let d = row.deciles[decile].unwrap_or(row.total_time);
            print!("{:>12.2}ms", d.as_secs_f64() * 1e3);
        }
        println!();
    }
    for row in &rows {
        match row.evictions {
            Some(e) => println!(
                "{}: total {:?}, {} store evictions (memory stayed bounded)",
                row.label, row.total_time, e
            ),
            None => println!("{}: total {:?}", row.label, row.total_time),
        }
    }
}

/// Times at which each 10% decile of `total` was first reached (`None`
/// where the sampling grid skipped the decile).
fn decile_times<S: mbe::BicliqueSink>(sink: &ProgressSink<S>, total: u64) -> Vec<Option<Duration>> {
    (1..=10).map(|i| sink.time_to_fraction(total, i, 10)).collect()
}
