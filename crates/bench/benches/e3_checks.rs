//! E3 — Node-checking efficiency (analog of the papers' "ratio of
//! generated non-maximal bicliques to maximal bicliques" table, e.g.
//! Table II of the GPU follow-up work).
//!
//! δ = branches rejected by the maximality check, α = maximal bicliques.
//! The prefix tree's equivalence batching removes redundant branch
//! attempts, so MBET's δ/α should sit well below MBEA's on datasets with
//! duplicated neighborhoods.

use mbe::{Algorithm, CountSink, Enumeration};

fn main() {
    bench::header("E3", "non-maximal check ratio δ/α", "pruning-efficiency table");
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}",
        "dataset", "α", "δ(MBEA)", "δ(MBET)", "δ/α MBEA", "δ/α MBET", "batched"
    );
    for p in bench::general_presets() {
        let g = bench::build(&p);
        let run = |alg: Algorithm| {
            let mut sink = CountSink::default();
            let report =
                Enumeration::new(&g).algorithm(alg).run(&mut sink).expect("valid configuration");
            report.stats
        };
        let mbea = run(Algorithm::Mbea);
        let mbet = run(Algorithm::Mbet);
        assert_eq!(mbea.emitted, mbet.emitted, "{}", p.abbrev);
        println!(
            "{:<14}{:>12}{:>12}{:>12}{:>12.3}{:>14.3}{:>12}",
            p.abbrev,
            mbet.emitted,
            mbea.nonmaximal,
            mbet.nonmaximal,
            mbea.nonmaximal_ratio(),
            mbet.nonmaximal_ratio(),
            mbet.batched
        );
    }
}
