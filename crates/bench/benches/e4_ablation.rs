//! E4 — Ablation of the prefix-tree techniques (analog of the papers'
//! "effect of optimizations" figure: the full algorithm vs. variants
//! each disabling one technique).
//!
//! Variants: full MBET; w/o equivalence batching; w/o trie-based
//! maximality checking (falls back to per-`q` subset scans); w/o
//! trie-based absorption filtering; all off (≡ MBEA's branch structure).

use mbe::{Algorithm, MbeOptions, MbetConfig};

fn main() {
    bench::header("E4", "MBET technique ablation", "effect-of-optimizations figure");
    let variants: [(&str, MbetConfig); 5] = [
        ("full", MbetConfig::default()),
        ("w/o batching", MbetConfig { batching: false, ..Default::default() }),
        ("w/o trie-max", MbetConfig { trie_maximality: false, ..Default::default() }),
        ("w/o trie-abs", MbetConfig { trie_absorption: false, ..Default::default() }),
        ("all off", MbetConfig { batching: false, trie_maximality: false, trie_absorption: false }),
    ];
    print!("{:<14}", "dataset");
    for (name, _) in &variants {
        print!("{name:>14}");
    }
    println!();
    for p in bench::general_presets() {
        let g = bench::build(&p);
        print!("{:<14}", p.abbrev);
        let mut count = None;
        for (_, cfg) in &variants {
            let opts = MbeOptions::new(Algorithm::Mbet).mbet(*cfg);
            let (b, d) = bench::time_median(|| bench::count(&g, &opts));
            if let Some(c) = count {
                assert_eq!(c, b, "{}", p.abbrev);
            }
            count = Some(b);
            print!("{:>12}ms", format!("{:.2}", d.as_secs_f64() * 1e3));
        }
        println!();
    }
}
