//! E6 — Output-store memory (analog of the papers' space-consumption
//! table: the prefix-tree store behind MBET's `O(R(|V(B)|))` space bound
//! vs. flat storage, and the bounded MBETM mode).
//!
//! Columns: number of bicliques; flat bytes (Σ(|L|+|R|) · 4B, what a
//! `Vec<Biclique>` costs in payload alone); R-trie nodes and bytes (the
//! compressed store); compression ratio; and the MBETM bounded mode at a
//! small node budget (bytes stay bounded, evictions are counted, the
//! enumeration itself is unaffected).

use mbe::{BicliqueSink, Enumeration, StopReason, TrieSink};
use std::ops::ControlFlow;

/// Counts flat payload bytes without storing anything.
#[derive(Default)]
struct FlatBytes {
    bicliques: u64,
    bytes: u64,
}

impl BicliqueSink for FlatBytes {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.bicliques += 1;
        self.bytes += 4 * (left.len() + right.len()) as u64;
        mbe::sink::CONTINUE
    }
}

fn main() {
    bench::header("E6", "R-set store memory: trie vs flat, MBETM budget", "space table");
    const BUDGET: usize = 1 << 14;
    println!(
        "{:<14}{:>10}{:>14}{:>12}{:>14}{:>8}{:>16}",
        "dataset", "B", "flat(KiB)", "trie nodes", "trie(KiB)", "ratio", "MBETM evictions"
    );
    for p in bench::general_presets() {
        let g = bench::build(&p);
        let mut flat = FlatBytes::default();
        Enumeration::new(&g).run(&mut flat).expect("valid configuration");

        let mut trie = TrieSink::unbounded();
        Enumeration::new(&g).run(&mut trie).expect("valid configuration");
        assert_eq!(trie.trie().len() as u64, flat.bicliques, "{}", p.abbrev);
        assert_eq!(trie.duplicates(), 0, "{}", p.abbrev);
        let trie_bytes = trie.trie().approx_bytes() as u64;

        let mut bounded = TrieSink::with_node_budget(BUDGET);
        Enumeration::new(&g).run(&mut bounded).expect("valid configuration");
        assert_eq!(bounded.trie().total_new(), flat.bicliques, "{}", p.abbrev);

        println!(
            "{:<14}{:>10}{:>14.1}{:>12}{:>14.1}{:>8.2}{:>16}",
            p.abbrev,
            flat.bicliques,
            flat.bytes as f64 / 1024.0,
            trie.trie().node_count(),
            trie_bytes as f64 / 1024.0,
            flat.bytes as f64 / trie_bytes as f64,
            bounded.trie().evictions()
        );
    }
    println!("\nMBETM budget: {BUDGET} trie nodes (≈{} KiB)", BUDGET * 16 / 1024);
}
