//! E5 — Scalability with graph size (analog of the papers' scalability
//! figure: runtime as the input grows at fixed density).
//!
//! Three representative analogues are regenerated at 0.5×, 1×, 2×, and
//! 4× their default scale (vertices and edges grow together, preserving
//! mean degree) and enumerated with iMBEA and MBET. The series shows how
//! both engines scale with the output size B, and where the prefix-tree
//! advantage widens.

use mbe::{Algorithm, MbeOptions};

fn main() {
    bench::header("E5", "scalability with graph size", "scalability figure");
    let picks = ["Mti", "YG", "EE"];
    println!(
        "{:<10}{:>6}{:>9}{:>10}{:>12}{:>12}{:>12}{:>9}",
        "dataset", "mult", "|V|", "|E|", "B", "iMBEA(ms)", "MBET(ms)", "ratio"
    );
    for abbrev in picks {
        let Some(p) = gen::presets::by_abbrev(abbrev) else { continue };
        for mult in [0.5, 1.0, 2.0, 4.0] {
            let g = p.build_scaled(bench::seed(), p_scale(mult));
            let (b, d_imbea) =
                bench::time_median(|| bench::count(&g, &MbeOptions::new(Algorithm::Imbea)));
            let (b2, d_mbet) =
                bench::time_median(|| bench::count(&g, &MbeOptions::new(Algorithm::Mbet)));
            assert_eq!(b, b2);
            println!(
                "{:<10}{:>6}{:>9}{:>10}{:>12}{:>12.2}{:>12.2}{:>8.2}x",
                abbrev,
                mult,
                g.num_v(),
                g.num_edges(),
                b,
                d_imbea.as_secs_f64() * 1e3,
                d_mbet.as_secs_f64() * 1e3,
                d_imbea.as_secs_f64() / d_mbet.as_secs_f64()
            );
        }
    }
}

/// The sweep multiplier is itself scaled by the harness knob so a quick
/// pass (`MBE_BENCH_SCALE=0.5`) shrinks the whole series.
fn p_scale(mult: f64) -> f64 {
    mult * bench::scale()
}
