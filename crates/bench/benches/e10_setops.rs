//! E10 — Set-operation microbenchmarks (criterion).
//!
//! Underpins the representation-threshold discussion (the σ-style
//! trade-off between list and bitmap local-neighborhood encodings):
//! merge vs. gallop intersection across size ratios, subset testing, and
//! bitmap kernels at `|L|`-scale universes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn sorted_set(rng: &mut StdRng, n: usize, universe: u32) -> Vec<u32> {
    let mut s = std::collections::BTreeSet::new();
    while s.len() < n {
        s.insert(rng.gen_range(0..universe));
    }
    s.into_iter().collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("intersect_ratio");
    for ratio in [1usize, 8, 64, 512] {
        let large = sorted_set(&mut rng, 4096, 1 << 20);
        let small = sorted_set(&mut rng, 4096 / ratio, 1 << 20);
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("merge", ratio), &ratio, |b, _| {
            b.iter(|| setops::merge::intersect_merge_into(&small, &large, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("gallop", ratio), &ratio, |b, _| {
            b.iter(|| setops::gallop::intersect_gallop_into(&small, &large, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", ratio), &ratio, |b, _| {
            b.iter(|| setops::intersect_into(&small, &large, &mut out))
        });
    }
    group.finish();
}

fn bench_subset(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("subset");
    let big = sorted_set(&mut rng, 8192, 1 << 20);
    for n in [8usize, 128, 2048] {
        let probe: Vec<u32> = big.iter().step_by(big.len() / n).copied().collect();
        group.bench_with_input(BenchmarkId::new("slices", n), &n, |b, _| {
            b.iter(|| setops::is_subset(&probe, &big))
        });
    }
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("bitmap_vs_list_at_L_scale");
    // |L| is bounded by D(V): benchmark at the scales enumeration sees.
    for l in [32usize, 256, 2048] {
        let a = sorted_set(&mut rng, l / 2, l as u32);
        let b2 = sorted_set(&mut rng, l / 2, l as u32);
        let ba = setops::Bitmap::from_ranks(l, &a);
        let bb = setops::Bitmap::from_ranks(l, &b2);
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("list_intersect", l), &l, |bch, _| {
            bch.iter(|| setops::intersect_into(&a, &b2, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("bitmap_intersect", l), &l, |bch, _| {
            bch.iter(|| ba.intersect_count(&bb))
        });
        group.bench_with_input(BenchmarkId::new("list_subset", l), &l, |bch, _| {
            bch.iter(|| setops::is_subset(&a, &b2))
        });
        group.bench_with_input(BenchmarkId::new("bitmap_subset", l), &l, |bch, _| {
            bch.iter(|| ba.is_subset_of(&bb))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_intersections, bench_subset, bench_bitmap
}
criterion_main!(benches);
