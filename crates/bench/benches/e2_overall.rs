//! E2 — Overall runtime comparison (analog of the papers' "overall
//! evaluation on general datasets" figure: serial baselines vs. the
//! prefix-tree algorithm across every general dataset).
//!
//! Columns: MineLMBC (Algorithm-1 with explicit C(L') checks), MBEA,
//! iMBEA, MBET serial, and MBET on the parallel driver with all cores.
//! The last two columns report MBET's speedup over the best baseline and
//! the biclique count (identical across engines — asserted).

use mbe::{Algorithm, MbeOptions};

fn main() {
    bench::header("E2", "overall runtime, general datasets", "overall-evaluation figure");
    let algos = [Algorithm::MineLmbc, Algorithm::Mbea, Algorithm::Imbea, Algorithm::Mbet];
    println!(
        "{:<14}{:>11}{:>11}{:>11}{:>11}{:>11}{:>9}{:>12}",
        "dataset", "MineLMBC", "MBEA", "iMBEA", "MBET", "MBET-par", "speedup", "B"
    );
    let mut geo_sum = 0.0f64;
    let mut geo_n = 0u32;
    for p in bench::general_presets() {
        let g = bench::build(&p);
        let mut times = Vec::new();
        let mut count = None;
        for alg in algos {
            let opts = MbeOptions::new(alg);
            let (b, d) = bench::time_median(|| bench::count(&g, &opts));
            if let Some(c) = count {
                assert_eq!(c, b, "{} on {}", alg.label(), p.abbrev);
            }
            count = Some(b);
            times.push(d);
        }
        let par_opts = MbeOptions::new(Algorithm::Mbet).threads(0);
        let (bp, dpar) = bench::time_median(|| bench::count(&g, &par_opts));
        assert_eq!(count.expect("measured"), bp, "parallel count on {}", p.abbrev);

        let best_baseline = times[..3].iter().min().copied().expect("three baselines");
        let speedup = best_baseline.as_secs_f64() / times[3].as_secs_f64();
        geo_sum += speedup.ln();
        geo_n += 1;
        println!(
            "{:<14}{}{}{}{}{}{:>8.2}x{:>12}",
            p.abbrev,
            bench::ms(times[0]),
            bench::ms(times[1]),
            bench::ms(times[2]),
            bench::ms(times[3]),
            bench::ms(dpar),
            speedup,
            count.expect("measured")
        );
    }
    if geo_n > 0 {
        println!(
            "\ngeometric-mean MBET speedup over the best serial baseline: {:.2}x",
            (geo_sum / geo_n as f64).exp()
        );
    }
}
