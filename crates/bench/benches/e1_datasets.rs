//! E1 — Dataset statistics table (analog of the papers' "Table: dataset
//! statistics", e.g. Table I of the GPU follow-up work and the dataset
//! table every MBE paper opens its evaluation with).
//!
//! For each benchmark-dataset analogue: generated |U|, |V|, |E|, max
//! degrees, max 2-hop degree on V, measured maximal biclique count, and
//! the published count of the real dataset for reference.

use mbe::{Algorithm, MbeOptions};

fn main() {
    bench::header("E1", "dataset statistics", "dataset table");
    println!(
        "{:<14}{:>9}{:>9}{:>10}{:>8}{:>8}{:>9}{:>12}  {:>14}",
        "dataset", "|U|", "|V|", "|E|", "D(U)", "D(V)", "D2(V)", "B(analogue)", "B(published)"
    );
    for p in bench::selected_presets() {
        let g = bench::build(&p);
        let s = bigraph::stats::stats(&g);
        let b = bench::count(&g, &MbeOptions::new(Algorithm::Mbet));
        println!(
            "{:<14}{:>9}{:>9}{:>10}{:>8}{:>8}{:>9}{:>12}  {:>14}",
            p.abbrev,
            s.num_u,
            s.num_v,
            s.num_edges,
            s.max_deg_u,
            s.max_deg_v,
            s.max_two_hop_v,
            b,
            p.real.max_bicliques
        );
    }
}
