//! E7 — Vertex-ordering sensitivity (analog of the papers' ordering
//! study: how the global order imposed on V changes enumeration cost).
//!
//! MBET runtime under ascending-degree (the default), descending-degree,
//! unilateral (2-hop based), natural, and seeded-random orders. The
//! emitted set is identical in every case (asserted); only the tree
//! shape — and therefore time and check counts — moves.

use bigraph::order::VertexOrder;
use mbe::{Algorithm, MbeOptions};

fn main() {
    bench::header("E7", "vertex-ordering sensitivity (MBET)", "ordering figure");
    let orders = [
        VertexOrder::AscendingDegree,
        VertexOrder::DescendingDegree,
        VertexOrder::Unilateral,
        VertexOrder::Natural,
        VertexOrder::Random(7),
    ];
    print!("{:<14}", "dataset");
    for o in &orders {
        print!("{:>13}", o.label());
    }
    println!("{:>12}", "B");
    for p in bench::general_presets() {
        let g = bench::build(&p);
        print!("{:<14}", p.abbrev);
        let mut count = None;
        for o in orders {
            let opts = MbeOptions::new(Algorithm::Mbet).order(o);
            let (b, d) = bench::time_median(|| bench::count(&g, &opts));
            if let Some(c) = count {
                assert_eq!(c, b, "{} under {}", p.abbrev, o.label());
            }
            count = Some(b);
            print!("{:>11}ms", format!("{:.2}", d.as_secs_f64() * 1e3));
        }
        println!("{:>12}", count.expect("measured"));
    }
}
