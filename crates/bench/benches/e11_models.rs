//! E11 — Workload-model robustness (extension beyond the paper's
//! tables; DESIGN.md §6 note).
//!
//! The headline experiments run on Chung–Lu + planted-block analogues.
//! This experiment checks that the MBET-vs-baseline ordering is not an
//! artifact of that generator: the same comparison on three structurally
//! different random models at matched size — uniform (G(n,m)),
//! independent power-law (Chung–Lu), and rich-get-richer (preferential
//! attachment) — should preserve the winner even as the absolute
//! difficulty (B) varies wildly across models.

use mbe::{Algorithm, MbeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    bench::header("E11", "workload-model robustness", "(extension; no paper analog)");
    let (nu, nv, edges) = (3000u32, 1200u32, 12_000usize);
    println!("matched size: |U|={nu} |V|={nv} |E|≈{edges}\n");
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}{:>9}",
        "model", "B", "MBEA(ms)", "iMBEA(ms)", "MBET(ms)", "ratio"
    );
    let mut rng = StdRng::seed_from_u64(bench::seed());

    let models: Vec<(&str, bigraph::BipartiteGraph)> = vec![
        ("gnm-uniform", gen::er::gnm(&mut rng, nu, nv, edges)),
        ("chung-lu", {
            let cfg = gen::chung_lu::ChungLuConfig::new(nu, nv, edges);
            gen::chung_lu::generate(&mut rng, &cfg)
        }),
        ("preferential", {
            let cfg = gen::preferential::PreferentialConfig { nu, nv, edges, p_pref: 0.75 };
            gen::preferential::generate(&mut rng, &cfg)
        }),
    ];

    for (name, g) in &models {
        let mut times = Vec::new();
        let mut count = None;
        for alg in [Algorithm::Mbea, Algorithm::Imbea, Algorithm::Mbet] {
            let opts = MbeOptions::new(alg);
            let (b, d) = bench::time_median(|| bench::count(g, &opts));
            if let Some(c) = count {
                assert_eq!(c, b, "{} on {name}", alg.label());
            }
            count = Some(b);
            times.push(d);
        }
        let best_baseline = times[..2].iter().min().copied().expect("two baselines");
        println!(
            "{:<16}{:>10}{:>12.2}{:>12.2}{:>12.2}{:>8.2}x",
            name,
            count.expect("measured"),
            times[0].as_secs_f64() * 1e3,
            times[1].as_secs_f64() * 1e3,
            times[2].as_secs_f64() * 1e3,
            best_baseline.as_secs_f64() / times[2].as_secs_f64()
        );
    }
    println!("\n(ratio = best of MBEA/iMBEA over MBET; >1 means MBET wins)");
}
