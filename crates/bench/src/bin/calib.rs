//! Internal calibration helper: prints B per preset at default scale.
fn main() {
    for p in gen::all_presets() {
        let g = p.build(42);
        let t = std::time::Instant::now();
        let report = mbe::Enumeration::new(&g).count().expect("valid configuration");
        println!("{:<5} B={:<9} ({:.0?})", p.abbrev, report.count(), t.elapsed());
    }
}
