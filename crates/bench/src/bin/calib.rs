//! Internal calibration helper: prints B per preset at default scale.
fn main() {
    for p in gen::all_presets() {
        let g = p.build(42);
        let t = std::time::Instant::now();
        let (count, _) = mbe::count_bicliques(&g, &mbe::MbeOptions::new(mbe::Algorithm::Mbet));
        println!("{:<5} B={:<9} ({:.0?})", p.abbrev, count, t.elapsed());
    }
}
