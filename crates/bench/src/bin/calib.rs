//! Internal calibration helper: prints B per preset at default scale.
//!
//! Each preset reports the fastest of five timed runs: single-shot
//! wall-clock at the small end (~10ms) jitters by more than real
//! changes, and the minimum is the usual low-noise estimator.
//!
//! The bipartite table is followed by the OCT sweep (`oc2`..`oc8`):
//! planted near-bipartite general graphs enumerated through the
//! `oct` crate's transversal driver, same row format so
//! `bench-snapshot` parses both uniformly.
fn main() {
    for p in gen::all_presets() {
        let g = p.build(42);
        let mut count = 0;
        let mut best = std::time::Duration::MAX;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let report = mbe::Enumeration::new(&g).count().expect("valid configuration");
            best = best.min(t.elapsed());
            count = report.count();
        }
        // Two decimals: `{:.0?}` quantizes seconds-scale runs to one
        // significant figure, which is coarser than the changes the
        // snapshot diff exists to show.
        println!("{:<5} B={:<9} ({:.2?})", p.abbrev, count, best);
    }
    for p in gen::oct_presets() {
        let (g, _plan) = p.build(42);
        let mut count = 0;
        let mut best = std::time::Duration::MAX;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let report = oct::OctEnumeration::new(&g).count().expect("valid configuration");
            best = best.min(t.elapsed());
            count = report.stats.emitted;
        }
        println!("{:<5} B={:<9} ({:.2?})", p.abbrev, count, best);
    }
}
