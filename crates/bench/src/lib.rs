//! Shared harness utilities for the experiment suite (E1..E10).
//!
//! Every experiment is a `harness = false` bench target under
//! `benches/`; each prints the rows/series of the corresponding
//! paper-style table or figure and delegates the measurement plumbing to
//! this module. Environment knobs:
//!
//! * `MBE_BENCH_SCALE`   — multiplier on every preset's default scale
//!   (default 1.0; use 0.5 for a quick pass);
//! * `MBE_BENCH_TRIALS`  — timed repetitions per cell, median reported
//!   (default 2);
//! * `MBE_BENCH_PRESETS` — comma-separated abbreviations to restrict the
//!   dataset set (default: all).
//! * `MBE_BENCH_SEED`    — generator seed (default 42).

#![forbid(unsafe_code)]

use gen::presets::Preset;
use std::time::{Duration, Instant};

/// Scale multiplier from `MBE_BENCH_SCALE`.
pub fn scale() -> f64 {
    std::env::var("MBE_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Timed repetitions per cell from `MBE_BENCH_TRIALS`.
pub fn trials() -> usize {
    std::env::var("MBE_BENCH_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(2).max(1)
}

/// Generator seed from `MBE_BENCH_SEED`.
pub fn seed() -> u64 {
    std::env::var("MBE_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// The presets selected by `MBE_BENCH_PRESETS` (default: all 13).
pub fn selected_presets() -> Vec<Preset> {
    let all = gen::all_presets();
    match std::env::var("MBE_BENCH_PRESETS") {
        Ok(list) if !list.trim().is_empty() => {
            let want: Vec<&str> = list.split(',').map(str::trim).collect();
            all.into_iter().filter(|p| want.contains(&p.abbrev)).collect()
        }
        _ => all,
    }
}

/// The "general" datasets: everything but the huge TVTropes analogue,
/// mirroring the papers' split between the general comparison and the
/// dedicated large-dataset experiment.
pub fn general_presets() -> Vec<Preset> {
    selected_presets().into_iter().filter(|p| p.abbrev != "DBT").collect()
}

/// Builds a preset at the harness scale.
pub fn build(preset: &Preset) -> bigraph::BipartiteGraph {
    preset.build_scaled(seed(), scale())
}

/// Counts maximal bicliques under `opts` through the unified
/// [`mbe::Enumeration`] builder — the one measurement primitive every
/// count-based experiment shares. `opts.threads` selects the serial or
/// the work-stealing driver exactly as in library use.
pub fn count(g: &bigraph::BipartiteGraph, opts: &mbe::MbeOptions) -> u64 {
    mbe::Enumeration::new(g).options(opts.clone()).count().expect("bench options are valid").count()
}

/// Runs `f` `trials()` times and returns the median wall-clock duration
/// together with the last run's result.
pub fn time_median<R>(mut f: impl FnMut() -> R) -> (R, Duration) {
    let n = trials();
    let mut times = Vec::with_capacity(n);
    let mut result = None;
    for _ in 0..n {
        let t = Instant::now();
        result = Some(f());
        times.push(t.elapsed());
    }
    times.sort();
    (result.expect("at least one trial"), times[times.len() / 2])
}

/// Milliseconds with two decimals, right-aligned to 10 columns.
pub fn ms(d: Duration) -> String {
    format!("{:>10.2}", d.as_secs_f64() * 1e3)
}

/// Prints the standard experiment header.
pub fn header(id: &str, title: &str, figure: &str) {
    println!();
    println!("=== {id}: {title}");
    println!("    (reproduces the paper's {figure}; synthetic analogues, shapes not absolutes)");
    println!("    scale×{} trials={} seed={}", scale(), trials(), seed());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_defaults() {
        // Defaults apply when the env vars are unset (the test runner
        // does not set them).
        assert!(trials() >= 1);
        assert!(scale() > 0.0);
    }

    #[test]
    fn median_of_trials() {
        let (r, d) = time_median(|| 7);
        assert_eq!(r, 7);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn general_excludes_dbt() {
        assert!(general_presets().iter().all(|p| p.abbrev != "DBT"));
    }
}
