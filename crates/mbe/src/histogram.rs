//! Log-bucketed (power-of-two) histograms for run telemetry.
//!
//! [`Histogram`] is the fixed-size, allocation-free counter backing the
//! task-latency and enumeration-depth distributions in
//! [`crate::metrics::RunMetrics`]. Bucket `0` counts the value `0`;
//! bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`, so one 65-bucket
//! array covers the entire `u64` range. Recording is a `leading_zeros`
//! plus an array increment — cheap enough to run unconditionally on the
//! per-task path of the observability layer (`mbe::obs`).

/// Bucket count: one for zero plus one per possible bit length of a
/// non-zero `u64`.
pub const BUCKETS: usize = 65;

/// A power-of-two log-bucketed histogram over `u64` values.
///
/// ```
/// use mbe::histogram::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(5); // lands in the [4, 8) bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max_bucket_lower_bound(), Some(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { counts: [0; BUCKETS], sum: 0 }
    }

    /// Reconstructs a histogram from raw bucket counts and a value sum —
    /// the wire-decode counterpart of [`Histogram::buckets`] and
    /// [`Histogram::sum`]. Buckets beyond [`BUCKETS`] are ignored;
    /// missing trailing buckets read as zero.
    pub fn from_parts(buckets: &[u64], sum: u64) -> Self {
        let mut h = Histogram { counts: [0; BUCKETS], sum };
        for (slot, &c) in h.counts.iter_mut().zip(buckets.iter()) {
            *slot = c;
        }
        h
    }

    /// The bucket index for `value`: `0` for zero, otherwise the bit
    /// length of the value (so bucket `i` spans `[2^(i-1), 2^i)`).
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i` (`0` for bucket 0).
    /// Total over any index: out-of-range `i` saturates to `u64::MAX`,
    /// so exposition code may ask for "the bound after the last bucket"
    /// without overflow.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=64 => 1u64 << (i - 1),
            _ => u64::MAX,
        }
    }

    /// Counts `value` into its bucket and adds it to the running sum
    /// (both saturating).
    pub fn record(&mut self, value: u64) {
        let i = Histogram::bucket_of(value);
        if let Some(slot) = self.counts.get_mut(i) {
            *slot = slot.saturating_add(1);
        }
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        let mut total = 0u64;
        for &c in &self.counts {
            total = total.saturating_add(c);
        }
        total
    }

    /// Saturating sum of every recorded value — with
    /// [`Histogram::count`], enough for a mean and for Prometheus-style
    /// `_sum`/`_count` exposition.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The raw bucket counts (index by [`Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The lower bound of the highest non-empty bucket, or `None` when
    /// empty — a cheap "order of magnitude of the maximum" readout.
    pub fn max_bucket_lower_bound(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(Histogram::bucket_lower_bound)
    }

    /// Adds another histogram's counts and sum into this one
    /// (per-worker metrics merge into run totals this way).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`) of the recorded values, or `None` when empty.
    /// Bucket resolution only: the answer is exact to a factor of two.
    pub fn quantile_lower_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(Histogram::bucket_lower_bound(i));
            }
        }
        self.max_bucket_lower_bound()
    }
}

impl std::fmt::Debug for Histogram {
    /// Compact form listing only non-empty buckets as `lower_bound: count`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                map.entry(&Histogram::bucket_lower_bound(i), &c);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 1..BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lower bound lands in its own bucket");
            assert_eq!(Histogram::bucket_of(lo - 1).min(i), Histogram::bucket_of(lo - 1));
        }
    }

    #[test]
    fn record_count_and_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.max_bucket_lower_bound(), None);
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!(!h.is_empty());
        // 100 has bit length 7: bucket [64, 128).
        assert_eq!(h.max_bucket_lower_bound(), Some(64));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(2);
        b.record(2);
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[2], 2);
        assert_eq!(a.max_bucket_lower_bound(), Some(1024));
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 16)
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1024)
        }
        assert_eq!(h.quantile_lower_bound(0.5), Some(8));
        assert_eq!(h.quantile_lower_bound(0.99), Some(512));
        assert_eq!(h.quantile_lower_bound(0.0), Some(8));
        assert_eq!(h.quantile_lower_bound(1.0), Some(512));
        assert_eq!(Histogram::new().quantile_lower_bound(0.5), None);
    }

    #[test]
    fn quantile_empty_histogram_is_none_for_all_q() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile_lower_bound(q), None, "q={q}");
        }
    }

    #[test]
    fn quantile_single_sample_answers_every_q() {
        // With one recorded value, every quantile — including the q=0.0
        // bound, whose rank clamps up to 1 — is that value's bucket.
        let mut h = Histogram::new();
        h.record(7); // bucket [4, 8)
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile_lower_bound(q), Some(4), "q={q}");
        }
        // Out-of-range q clamps into [0, 1] rather than misbehaving.
        assert_eq!(h.quantile_lower_bound(-3.0), Some(4));
        assert_eq!(h.quantile_lower_bound(42.0), Some(4));
        // A single zero sample sits in bucket 0.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile_lower_bound(0.0), Some(0));
        assert_eq!(z.quantile_lower_bound(1.0), Some(0));
    }

    #[test]
    fn quantile_all_samples_in_top_bucket() {
        // Everything lands in the final bucket [2^63, u64::MAX]; the
        // cumulative scan must reach it (and the max fallback agrees).
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(u64::MAX);
        }
        let top = 1u64 << 63;
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_lower_bound(q), Some(top), "q={q}");
        }
        assert_eq!(h.max_bucket_lower_bound(), Some(top));
    }

    #[test]
    fn quantile_q_bounds_pick_first_and_last_buckets() {
        // q=0.0 → rank 1 → first (smallest) non-empty bucket;
        // q=1.0 → rank = total → last (largest) non-empty bucket.
        let mut h = Histogram::new();
        h.record(1); // bucket [1, 2)
        h.record(u64::MAX); // top bucket
        assert_eq!(h.quantile_lower_bound(0.0), Some(1));
        assert_eq!(h.quantile_lower_bound(1.0), Some(1u64 << 63));
    }

    #[test]
    fn sum_tracks_recorded_values_and_saturates() {
        let mut h = Histogram::new();
        assert_eq!(h.sum(), 0);
        h.record(3);
        h.record(0);
        h.record(7);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.count(), 3);
        // The sum saturates instead of wrapping.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        h.record(1);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(900);
        let before = h;
        // Identity on the right: h ∪ ∅ = h.
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        // Identity on the left: ∅ ∪ h = h.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_adds_sums_saturating() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn from_parts_roundtrips_buckets_and_sum() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(h.buckets(), h.sum());
        assert_eq!(rebuilt, h);
        // Short slices read as zero-padded; long slices are truncated.
        let short = Histogram::from_parts(&[2, 1], 3);
        assert_eq!(short.count(), 3);
        assert_eq!(short.sum(), 3);
        assert_eq!(short.buckets()[0], 2);
        let long = vec![1u64; BUCKETS + 10];
        let truncated = Histogram::from_parts(&long, 0);
        assert_eq!(truncated.count(), BUCKETS as u64);
    }

    #[test]
    fn debug_lists_nonempty_buckets_only() {
        let mut h = Histogram::new();
        h.record(5);
        let s = format!("{h:?}");
        assert_eq!(s, "{4: 1}");
    }
}
