//! Checkpoint/resume for stopped enumeration runs.
//!
//! When a run ends with a non-[`StopReason::Completed`] reason, the
//! [`crate::Report`] carries a [`Checkpoint`]: the unexplored task
//! frontier (the serial driver's remaining DFS work, or the parallel
//! driver's drained work-stealing deques), the total emitted count so
//! far, and a fingerprint of the input graph. Feeding the checkpoint back
//! through [`crate::Enumeration::resume`] continues the run so that
//!
//! > *resumed output ∪ previously-emitted output = the complete run's
//! > output, duplicate-free*
//!
//! — the invariant asserted continuously under the `debug-invariants`
//! feature and property-tested in `tests/differential.rs`.
//!
//! # On-disk format
//!
//! Checkpoints serialize to a versioned, checksummed byte format with no
//! external dependencies. All integers are little-endian:
//!
//! ```text
//! magic      4 bytes   b"MBCK"
//! version    u32       currently 1
//! fingerprint u64      graph fingerprint (FNV-1a over the CSR edges)
//! algorithm  u8        Algorithm encoding (1..=4)
//! order      u8 + u64  VertexOrder tag + seed (seed 0 unless Random)
//! mbet       u8        MbetConfig bitfield (batching|maximality|absorption)
//! emitted    u64       bicliques delivered before the stop (cumulative)
//! stop       u8        StopReason encoding
//! n_tasks    u64       frontier length, then per task:
//!   tag u8             0 = Root, 1 = Node
//!   Root: v u32
//!   Node: v u32, then l / r_parent / p / q as (u32 len, u32 items…)
//! checksum   u64       FNV-1a over every preceding byte
//! ```
//!
//! Frontier tasks are expressed in the *internal ordered* id space; this
//! is sound because [`bigraph::order::apply`] is deterministic for a
//! fixed `(graph, order)` pair — which is why a checkpoint pins the
//! algorithm, order, and MBET toggles, and why resuming validates the
//! graph fingerprint. Thread count and splitting thresholds are *not*
//! pinned: they redistribute work without changing the emitted set.
//!
//! Corrupted input — truncation, bit flips, a foreign magic, an unknown
//! version, or a fingerprint mismatch — is rejected with a typed
//! [`CheckpointError`], never a panic.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;

use crate::run::StopReason;
use crate::task::{capture_remaining_roots, est_tree_size, root_representatives, TaskBuilder};
use crate::{Algorithm, MbeOptions, MbetConfig};

/// Format magic (`b"MBCK"`).
const MAGIC: [u8; 4] = *b"MBCK";
/// Current serialization version.
const VERSION: u32 = 1;

/// One unit of unexplored work captured at a stop, in the internal
/// ordered id space of the run that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeTask {
    /// A whole root task (per right vertex); the resuming driver rebuilds
    /// its 1-hop/2-hop universe itself.
    Root(u32),
    /// An interior enumeration node, in the same shape the parallel
    /// driver ships between workers.
    Node {
        /// `L` of the node (already intersected with `N(v)`).
        l: Vec<u32>,
        /// `R` of the parent (the node's own `R` adds `v` + absorptions).
        r_parent: Vec<u32>,
        /// The vertex whose traversal created this node.
        v: u32,
        /// Remaining candidates.
        p: Vec<u32>,
        /// Excluded vertices relevant to this node.
        q: Vec<u32>,
    },
}

/// The resumable state of a stopped enumeration run.
///
/// Produced by the [`crate::Enumeration`] terminals on every
/// non-`Completed` stop (except size-thresholded runs, which are not
/// checkpointable); consumed by [`crate::Enumeration::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the graph the run was stopped on; resuming against
    /// a different graph is rejected with
    /// [`CheckpointError::GraphMismatch`].
    pub fingerprint: u64,
    /// The stopped run's engine — pinned, because the frontier encoding
    /// is only meaningful under the same enumeration strategy.
    pub algorithm: Algorithm,
    /// The stopped run's vertex order — pinned, because frontier ids live
    /// in the ordered id space it induces.
    pub order: VertexOrder,
    /// The stopped run's MBET toggles — pinned with the algorithm.
    pub mbet: MbetConfig,
    /// Bicliques delivered across the original run and every prior
    /// resume (checkpoints chain: resuming a resumed run accumulates).
    pub emitted: u64,
    /// Why the checkpointed run stopped.
    pub stop: StopReason,
    /// The unexplored task frontier, in internal ordered ids.
    pub frontier: Vec<ResumeTask>,
}

/// Why checkpoint bytes (or a resume attempt) were rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input does not start with the checkpoint magic.
    BadMagic,
    /// The input declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// The input ended before the declared content did.
    Truncated,
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// Structurally invalid content (message says which field).
    Malformed(&'static str),
    /// The checkpoint was taken on a different graph.
    GraphMismatch {
        /// Fingerprint stored in the checkpoint.
        expected: u64,
        /// Fingerprint of the graph the resume was attempted on.
        found: u64,
    },
    /// Reading or writing the checkpoint file failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CheckpointError::Truncated => f.write_str("checkpoint truncated"),
            CheckpointError::ChecksumMismatch => f.write_str("checkpoint checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::GraphMismatch { expected, found } => write!(
                f,
                "checkpoint was taken on a different graph \
                 (fingerprint {expected:#018x}, this graph is {found:#018x})"
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Order-independent fingerprint of a graph's structure: FNV-1a over the
/// side sizes and the full `V`-side adjacency in id order. Two graphs
/// with equal edge sets (same input ids) fingerprint equal; resuming a
/// checkpoint validates this before trusting the frontier ids.
pub fn graph_fingerprint(g: &BipartiteGraph) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(g.num_u() as u64);
    h.write_u64(g.num_v() as u64);
    for v in 0..g.num_v() {
        let nbrs = g.nbr_v(v);
        h.write_u64(nbrs.len() as u64);
        for &u in nbrs {
            h.write_u32(u);
        }
    }
    h.finish()
}

impl Checkpoint {
    /// Serializes to the versioned, checksummed byte format documented at
    /// the module level.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.frontier.len() * 32);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.push(encode_algorithm(self.algorithm));
        let (order_tag, order_seed) = encode_order(self.order);
        out.push(order_tag);
        out.extend_from_slice(&order_seed.to_le_bytes());
        out.push(encode_mbet(self.mbet));
        out.extend_from_slice(&self.emitted.to_le_bytes());
        out.push(self.stop.encode());
        out.extend_from_slice(&(self.frontier.len() as u64).to_le_bytes());
        for task in &self.frontier {
            match task {
                ResumeTask::Root(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                ResumeTask::Node { l, r_parent, v, p, q } => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                    for list in [l, r_parent, p, q] {
                        out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                        for &x in list.iter() {
                            out.extend_from_slice(&x.to_le_bytes());
                        }
                    }
                }
            }
        }
        let checksum = fnv_bytes(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes and validates bytes produced by
    /// [`Checkpoint::to_bytes`]. Every malformation — truncation, bit
    /// flips, unknown versions — comes back as a typed
    /// [`CheckpointError`]; this function never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        // Checksum first: it covers everything, so any corruption —
        // including of the magic/version fields — surfaces as exactly one
        // of BadMagic (wrong file type), Truncated, or ChecksumMismatch.
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let payload_len = bytes.len().checked_sub(8).ok_or(CheckpointError::Truncated)?;
        let (payload, tail) = bytes.split_at(payload_len);
        let stored = u64::from_le_bytes(tail.try_into().map_err(|_| CheckpointError::Truncated)?);
        if fnv_bytes(payload) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut r = Reader { buf: payload, pos: MAGIC.len() };
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let fingerprint = r.u64()?;
        let algorithm = decode_algorithm(r.u8()?)?;
        let order = decode_order(r.u8()?, r.u64()?)?;
        let mbet = decode_mbet(r.u8()?)?;
        let emitted = r.u64()?;
        let stop = StopReason::decode(r.u8()?).ok_or(CheckpointError::Malformed("stop reason"))?;
        if stop.is_complete() {
            return Err(CheckpointError::Malformed("checkpoint for a completed run"));
        }
        let n_tasks = r.u64()?;
        // Each task costs at least 5 bytes; a length prefix promising more
        // than the remaining input is hostile, not just truncated.
        if n_tasks > (payload.len() as u64) / 5 {
            return Err(CheckpointError::Malformed("frontier length"));
        }
        let mut frontier = Vec::with_capacity(n_tasks as usize);
        for _ in 0..n_tasks {
            match r.u8()? {
                0 => frontier.push(ResumeTask::Root(r.u32()?)),
                1 => {
                    let v = r.u32()?;
                    let l = r.u32_vec()?;
                    let r_parent = r.u32_vec()?;
                    let p = r.u32_vec()?;
                    let q = r.u32_vec()?;
                    frontier.push(ResumeTask::Node { l, r_parent, v, p, q });
                }
                _ => return Err(CheckpointError::Malformed("task tag")),
            }
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        Ok(Checkpoint { fingerprint, algorithm, order, mbet, emitted, stop, frontier })
    }

    /// Writes the serialized checkpoint to `path` (atomically enough for
    /// a single writer: whole-buffer write, no partial formats).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        let mut f = std::fs::File::create(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        f.write_all(&bytes).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Checkpoint, CheckpointError> {
        let mut f = std::fs::File::open(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Validates that this checkpoint was taken on `g`.
    pub fn matches(&self, g: &BipartiteGraph) -> Result<(), CheckpointError> {
        let found = graph_fingerprint(g);
        if found != self.fingerprint {
            return Err(CheckpointError::GraphMismatch { expected: self.fingerprint, found });
        }
        Ok(())
    }

    /// Partitions the frontier into at most `k` independent shards.
    ///
    /// Each shard is a self-contained checkpoint over a disjoint subset
    /// of this frontier, sharing the header (fingerprint, pinned
    /// options, stop reason) but starting its own emission count at
    /// zero. Because frontier tasks are disjoint subtrees of the
    /// enumeration tree, resuming every shard independently and
    /// unioning the outputs reproduces exactly what resuming `self`
    /// would emit, duplicate-free — the invariant the coordinator's
    /// scatter/gather relies on and `tests/shard.rs` property-tests.
    ///
    /// Cuts are balanced by the same saturating `height × candidates`
    /// tree-size estimate the parallel driver splits on (LPT greedy:
    /// heaviest task into the lightest shard). Empty shards are not
    /// returned, so fewer than `k` checkpoints come back when the
    /// frontier has fewer tasks. `k == 0` is malformed, and `g` must
    /// fingerprint-match (task weights are read off the ordered graph).
    pub fn split(&self, g: &BipartiteGraph, k: usize) -> Result<Vec<Checkpoint>, CheckpointError> {
        if k == 0 {
            return Err(CheckpointError::Malformed("split into zero shards"));
        }
        self.matches(g)?;
        // Weights live in the ordered id space, like the frontier itself.
        let (h, _perm) = bigraph::order::apply(g, self.order);
        let mut builder = TaskBuilder::new(&h);
        let weights: Vec<usize> = self
            .frontier
            .iter()
            .map(|task| {
                match task {
                    // An isolated root would be skipped on resume; weight 1
                    // keeps the assignment total and the estimate monotone.
                    ResumeTask::Root(v) => builder.build(*v).map_or(1, |t| t.est_size().max(1)),
                    ResumeTask::Node { l, p, .. } => {
                        est_tree_size(l.len().min(p.len()), p.len()).max(1)
                    }
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..self.frontier.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse((weights[i], std::cmp::Reverse(i))));
        let mut loads = vec![0usize; k];
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in order {
            let lightest = (0..k).min_by_key(|&b| loads[b]).unwrap_or(0);
            loads[lightest] = loads[lightest].saturating_add(weights[i]);
            bins[lightest].push(i);
        }
        Ok(bins
            .into_iter()
            .filter(|idxs| !idxs.is_empty())
            .map(|mut idxs| {
                // Deterministic shard contents: frontier order within a
                // shard follows the original checkpoint, not LPT order.
                idxs.sort_unstable();
                let tasks = idxs.into_iter().map(|i| self.frontier[i].clone()).collect();
                Checkpoint { emitted: 0, frontier: tasks, ..self.clone() }
            })
            .collect())
    }

    /// Recombines shards produced by [`Checkpoint::split`] (or any
    /// checkpoints of the same run) into one checkpoint: the union of
    /// the frontiers, the sum of the emission counts.
    ///
    /// All parts must agree on the header — fingerprint, algorithm,
    /// order, and MBET toggles — otherwise the frontiers live in
    /// different id spaces and concatenating them would be garbage;
    /// that and an empty `parts` are rejected as malformed. The merged
    /// stop reason is the first part's.
    pub fn merge(parts: &[Checkpoint]) -> Result<Checkpoint, CheckpointError> {
        let Some(first) = parts.first() else {
            return Err(CheckpointError::Malformed("merge of zero shards"));
        };
        let mut merged = first.clone();
        for part in &parts[1..] {
            if part.fingerprint != first.fingerprint
                || part.algorithm != first.algorithm
                || part.order != first.order
                || part.mbet != first.mbet
            {
                return Err(CheckpointError::Malformed("shard header mismatch"));
            }
            merged.emitted += part.emitted;
            merged.frontier.extend(part.frontier.iter().cloned());
        }
        Ok(merged)
    }
}

/// The checkpoint a run of `opts` over `g` would produce if stopped
/// before doing any work: the complete root frontier, zero emissions.
///
/// This is the seed of the coordinator's scatter phase — [`Checkpoint::split`]
/// cuts it into shards and each shard resumes on a worker. The frontier
/// honors root-level batching exactly as the drivers do (only MBET with
/// batching enabled skips non-representative roots), so the shard union
/// equals the direct run without duplicates.
pub fn initial_checkpoint(g: &BipartiteGraph, opts: &MbeOptions) -> Checkpoint {
    let (h, _perm) = bigraph::order::apply(g, opts.order);
    let batch_roots = opts.algorithm == Algorithm::Mbet && opts.mbet.batching;
    let reps = if batch_roots { Some(root_representatives(&h)) } else { None };
    let mut frontier = Vec::new();
    capture_remaining_roots(&h, reps.as_deref(), 0, &mut frontier);
    Checkpoint {
        fingerprint: graph_fingerprint(g),
        algorithm: opts.algorithm,
        order: opts.order,
        mbet: opts.mbet,
        emitted: 0,
        // Non-`Completed` so the checkpoint round-trips through the wire
        // codec (a completed run has nothing to resume).
        stop: StopReason::Cancelled,
        frontier,
    }
}

// ---------------------------------------------------------------------------
// Field codecs.

fn encode_algorithm(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::MineLmbc => 1,
        Algorithm::Mbea => 2,
        Algorithm::Imbea => 3,
        Algorithm::Mbet => 4,
    }
}

fn decode_algorithm(word: u8) -> Result<Algorithm, CheckpointError> {
    match word {
        1 => Ok(Algorithm::MineLmbc),
        2 => Ok(Algorithm::Mbea),
        3 => Ok(Algorithm::Imbea),
        4 => Ok(Algorithm::Mbet),
        _ => Err(CheckpointError::Malformed("algorithm")),
    }
}

fn encode_order(order: VertexOrder) -> (u8, u64) {
    match order {
        VertexOrder::Natural => (1, 0),
        VertexOrder::AscendingDegree => (2, 0),
        VertexOrder::DescendingDegree => (3, 0),
        VertexOrder::Unilateral => (4, 0),
        VertexOrder::Random(seed) => (5, seed),
    }
}

fn decode_order(tag: u8, seed: u64) -> Result<VertexOrder, CheckpointError> {
    match (tag, seed) {
        (1, 0) => Ok(VertexOrder::Natural),
        (2, 0) => Ok(VertexOrder::AscendingDegree),
        (3, 0) => Ok(VertexOrder::DescendingDegree),
        (4, 0) => Ok(VertexOrder::Unilateral),
        (5, seed) => Ok(VertexOrder::Random(seed)),
        _ => Err(CheckpointError::Malformed("vertex order")),
    }
}

fn encode_mbet(cfg: MbetConfig) -> u8 {
    (cfg.batching as u8) | (cfg.trie_maximality as u8) << 1 | (cfg.trie_absorption as u8) << 2
}

fn decode_mbet(word: u8) -> Result<MbetConfig, CheckpointError> {
    if word > 0b111 {
        return Err(CheckpointError::Malformed("mbet config"));
    }
    Ok(MbetConfig {
        batching: word & 1 != 0,
        trie_maximality: word & 2 != 0,
        trie_absorption: word & 4 != 0,
    })
}

// ---------------------------------------------------------------------------
// FNV-1a (64-bit) — used both for the graph fingerprint and the trailing
// checksum; hand-rolled so the format needs no dependencies.

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u32(&mut self, x: u32) {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    for &b in bytes {
        h.write_u8(b);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Bounds-checked little-endian reader.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(|_| CheckpointError::Truncated)?))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().map_err(|_| CheckpointError::Truncated)?))
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.u32()? as usize;
        // Reject length prefixes promising more items than bytes remain —
        // the allocation must be bounded by the input size.
        if n > (self.buf.len() - self.pos) / 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            algorithm: Algorithm::Mbet,
            order: VertexOrder::Random(42),
            mbet: MbetConfig { batching: true, trie_maximality: false, trie_absorption: true },
            emitted: 123,
            stop: StopReason::Deadline,
            frontier: vec![
                ResumeTask::Root(7),
                ResumeTask::Node {
                    l: vec![0, 2, 5],
                    r_parent: vec![1],
                    v: 3,
                    p: vec![4, 6],
                    q: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn roundtrip_all_orders_and_algorithms() {
        for order in [
            VertexOrder::Natural,
            VertexOrder::AscendingDegree,
            VertexOrder::DescendingDegree,
            VertexOrder::Unilateral,
            VertexOrder::Random(u64::MAX),
        ] {
            for alg in Algorithm::all() {
                let ckpt = Checkpoint { order, algorithm: alg, ..sample() };
                assert_eq!(Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap(), ckpt);
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= 1 << bit;
                assert!(
                    Checkpoint::from_bytes(&corrupted).is_err(),
                    "flip byte {i} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn foreign_magic_is_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadMagic));
        assert_eq!(Checkpoint::from_bytes(b"PK\x03\x04zipfile"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected_with_checksum_repaired() {
        // A well-formed file from a future version: valid checksum, higher
        // version field.
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let sum = fnv_bytes(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::UnsupportedVersion(99)));
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        // A frontier length promising 2^60 tasks must be rejected without
        // attempting the allocation.
        let mut ckpt = sample();
        ckpt.frontier.clear();
        let mut bytes = ckpt.to_bytes();
        let n_tasks_at = bytes.len() - 8 - 8; // before checksum, the u64 count
        bytes[n_tasks_at..n_tasks_at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let len = bytes.len();
        let sum = fnv_bytes(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed("frontier length"))
        ));
    }

    #[test]
    fn fingerprint_distinguishes_graphs() {
        let g1 = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let g2 = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let g1_again = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g1_again));
    }

    #[test]
    fn matches_rejects_wrong_graph() {
        let g1 = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let g2 = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let ckpt = Checkpoint { fingerprint: graph_fingerprint(&g1), ..sample() };
        assert!(ckpt.matches(&g1).is_ok());
        assert!(matches!(ckpt.matches(&g2), Err(CheckpointError::GraphMismatch { .. })));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("mbe-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Checkpoint::load("/nonexistent/definitely/missing.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn initial_checkpoint_seeds_the_batched_root_frontier() {
        // v0 and v1 share a neighborhood; v3 is isolated.
        let g =
            BipartiteGraph::from_edges(2, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (0, 2)]).unwrap();
        let opts = crate::MbeOptions::new(Algorithm::Mbet);
        let ckpt = initial_checkpoint(&g, &opts);
        assert_eq!(ckpt.fingerprint, graph_fingerprint(&g));
        assert_eq!(ckpt.emitted, 0);
        assert!(!ckpt.stop.is_complete());
        // Batching drops the duplicate root, isolation drops v3: 2 roots
        // remain (in ordered ids, so only the count is asserted).
        assert_eq!(ckpt.frontier.len(), 2);
        // Baselines batch nothing: every non-isolated root is seeded.
        let mbea = initial_checkpoint(&g, &crate::MbeOptions::new(Algorithm::Mbea));
        assert_eq!(mbea.frontier.len(), 3);
        // And the whole thing survives the wire format.
        assert_eq!(Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap(), ckpt);
    }

    #[test]
    fn split_partitions_disjointly_and_merge_reassembles() {
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
        )
        .unwrap();
        let opts = crate::MbeOptions::new(Algorithm::Mbet);
        let whole = initial_checkpoint(&g, &opts);
        for k in 1..=6 {
            let shards = whole.split(&g, k).unwrap();
            assert!(shards.len() <= k);
            assert!(shards.iter().all(|s| !s.frontier.is_empty()));
            assert!(shards.iter().all(|s| s.emitted == 0));
            let mut union: Vec<ResumeTask> =
                shards.iter().flat_map(|s| s.frontier.iter().cloned()).collect();
            assert_eq!(union.len(), whole.frontier.len(), "k={k}: disjoint and total");
            union.sort_by_key(|t| match t {
                ResumeTask::Root(v) => *v,
                ResumeTask::Node { v, .. } => *v,
            });
            let mut expected = whole.frontier.clone();
            expected.sort_by_key(|t| match t {
                ResumeTask::Root(v) => *v,
                ResumeTask::Node { v, .. } => *v,
            });
            assert_eq!(union, expected, "k={k}");
            let merged = Checkpoint::merge(&shards).unwrap();
            assert_eq!(merged.frontier.len(), whole.frontier.len());
            assert_eq!(merged.fingerprint, whole.fingerprint);
        }
    }

    #[test]
    fn split_rejects_zero_shards_and_foreign_graphs() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let other = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let ckpt = initial_checkpoint(&g, &crate::MbeOptions::default());
        assert!(matches!(ckpt.split(&g, 0), Err(CheckpointError::Malformed(_))));
        assert!(matches!(ckpt.split(&other, 2), Err(CheckpointError::GraphMismatch { .. })));
    }

    #[test]
    fn merge_rejects_empty_and_mismatched_headers() {
        assert!(matches!(Checkpoint::merge(&[]), Err(CheckpointError::Malformed(_))));
        let a = sample();
        let mut b = sample();
        b.fingerprint ^= 1;
        assert!(matches!(
            Checkpoint::merge(&[a.clone(), b]),
            Err(CheckpointError::Malformed("shard header mismatch"))
        ));
        let mut c = sample();
        c.order = VertexOrder::Natural;
        assert!(Checkpoint::merge(&[a.clone(), c]).is_err());
        // Matching headers sum emissions and concatenate frontiers.
        let merged = Checkpoint::merge(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(merged.emitted, 2 * a.emitted);
        assert_eq!(merged.frontier.len(), 2 * a.frontier.len());
    }

    #[test]
    fn errors_display_informatively() {
        let msgs = [
            CheckpointError::BadMagic.to_string(),
            CheckpointError::UnsupportedVersion(7).to_string(),
            CheckpointError::Truncated.to_string(),
            CheckpointError::ChecksumMismatch.to_string(),
            CheckpointError::Malformed("stop reason").to_string(),
            CheckpointError::GraphMismatch { expected: 1, found: 2 }.to_string(),
            CheckpointError::Io("denied".into()).to_string(),
        ];
        let unique: std::collections::HashSet<_> = msgs.iter().collect();
        assert_eq!(unique.len(), msgs.len());
        assert!(msgs[1].contains('7'));
    }
}
