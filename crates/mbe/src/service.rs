//! Service-layer query support: canonical parameters, a byte-budgeted
//! LRU result cache, and the parameter→[`Enumeration`] bridge.
//!
//! The TCP front end lives in the workspace's `serve` crate; everything
//! an embedded caller also needs — naming a query, deciding whether two
//! queries are interchangeable, caching a completed result, running a
//! query — lives here so the policy is testable without sockets.
//!
//! A query is identified by `(graph fingerprint, canonical key)`:
//!
//! - the fingerprint is [`crate::checkpoint::graph_fingerprint`], the
//!   same FNV-1a digest checkpoints use to pin a graph;
//! - the key is [`QueryParams::canonical_key`], which covers exactly the
//!   result-affecting parameters. Execution hints (thread count, the
//!   per-request deadline) are deliberately excluded: they change how
//!   fast a run finishes, never what a *completed* run returns.
//!
//! Only completed runs are cacheable ([`cacheable`]): a stopped run's
//! output depends on where it stopped, which the key does not capture.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;

use crate::filtered::SizeThresholds;
use crate::metrics::CacheCounters;
use crate::obs::Observer;
use crate::run::{Enumeration, MbeError, Report, RunControl, StopReason};
use crate::sink::Biclique;
use crate::{Algorithm, MbeOptions};

/// Parameters of one service query — the wire-independent form shared by
/// the TCP protocol, the cache key, and the execution bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParams {
    /// Enumeration engine to run.
    pub algorithm: Algorithm,
    /// Vertex order imposed on the `V` side.
    pub order: VertexOrder,
    /// Worker threads for this query (`1` = serial, `0` = all cores).
    /// Execution hint only — not part of the canonical key. Thresholded
    /// queries always run serially regardless of this value.
    pub threads: usize,
    /// Minimum `|L|`; values `> 1` switch to the size-filtered engine.
    pub min_left: usize,
    /// Minimum `|R|`; values `> 1` switch to the size-filtered engine.
    pub min_right: usize,
    /// When `Some(k)`, run the extremal top-`k`-by-edges search instead
    /// of full enumeration (thresholds, budget, and `count_only` are
    /// ignored in that mode).
    pub top_k: Option<usize>,
    /// Emission budget: stop after this many bicliques.
    pub max_bicliques: Option<u64>,
    /// Per-request deadline; `None` falls back to the server default.
    /// Not part of the canonical key (see the module docs).
    pub timeout: Option<Duration>,
    /// Count emissions without materializing them.
    pub count_only: bool,
}

impl Default for QueryParams {
    /// Paper-style defaults: MBET, ascending-degree order, serial, no
    /// thresholds, full enumeration, no budget or deadline.
    fn default() -> Self {
        QueryParams {
            algorithm: Algorithm::Mbet,
            order: VertexOrder::AscendingDegree,
            threads: 1,
            min_left: 1,
            min_right: 1,
            top_k: None,
            max_bicliques: None,
            timeout: None,
            count_only: false,
        }
    }
}

impl QueryParams {
    /// `true` iff this query uses the size-filtered engine (which runs
    /// serially and is not checkpointable).
    pub fn thresholded(&self) -> bool {
        self.min_left > 1 || self.min_right > 1
    }

    /// `true` iff this query can be split across workers by frontier
    /// sharding. Thresholded runs are not checkpointable, `top_k` is a
    /// global extremal search, and an emission budget is a whole-run
    /// property a per-shard budget cannot express — all three run
    /// undistributed (locally at a coordinator, without the degraded
    /// flag: that is policy, not failure).
    pub fn shardable(&self) -> bool {
        !self.thresholded() && self.top_k.is_none() && self.max_bicliques.is_none()
    }

    /// The canonical cache-key string: a stable, human-readable encoding
    /// of exactly the result-affecting parameters. Two queries with equal
    /// keys on the same graph fingerprint have identical complete
    /// results. Execution hints (`threads`, `timeout`) are excluded;
    /// threshold values are clamped to `≥ 1` the same way
    /// [`SizeThresholds::new`] clamps them, so `min_left: 0` and
    /// `min_left: 1` canonicalize identically.
    pub fn canonical_key(&self) -> String {
        let order = match self.order {
            VertexOrder::Natural => "nat".to_string(),
            VertexOrder::AscendingDegree => "asc".to_string(),
            VertexOrder::DescendingDegree => "desc".to_string(),
            VertexOrder::Unilateral => "uni".to_string(),
            VertexOrder::Random(seed) => format!("rand{seed}"),
        };
        let top_k = self.top_k.map_or("-".to_string(), |k| k.to_string());
        let budget = self.max_bicliques.map_or("-".to_string(), |n| n.to_string());
        format!(
            "alg={};ord={};minl={};minr={};topk={};budget={};count={}",
            self.algorithm.label(),
            order,
            self.min_left.max(1),
            self.min_right.max(1),
            top_k,
            budget,
            u8::from(self.count_only),
        )
    }
}

/// Runs the query described by `params` against `g` under `control`.
///
/// This is the single bridge from service parameters to the enumeration
/// builders: `top_k` dispatches to the extremal search, thresholded
/// queries are forced onto the serial driver (the filtered engine's
/// requirement), and everything else goes through [`Enumeration`] with
/// the requested engine/order/threads/budget. The deadline and
/// cancellation flag carried by `control` apply as-is — the service maps
/// per-request deadlines onto the control at admission time, so queued
/// time counts against the deadline.
pub fn run_query<'g>(
    g: &'g BipartiteGraph,
    params: &QueryParams,
    control: RunControl,
    observer: Option<&'g dyn Observer>,
) -> Result<Report, MbeError> {
    if let Some(k) = params.top_k {
        return Ok(crate::extremal::top_k_with_control(g, k, &control));
    }
    let threads = if params.thresholded() { 1 } else { params.threads };
    let opts = MbeOptions::new(params.algorithm).order(params.order).threads(threads);
    let mut run = Enumeration::new(g).options(opts).control(control);
    if let Some(n) = params.max_bicliques {
        run = run.max_bicliques(n);
    }
    if params.thresholded() {
        run = run.thresholds(SizeThresholds::new(params.min_left, params.min_right));
    }
    if let Some(obs) = observer {
        run = run.observer(obs);
    }
    if params.count_only {
        run.count()
    } else {
        run.collect()
    }
}

/// Resumes one frontier shard of the query described by `params`.
///
/// The coordinator's worker-side bridge: `ckpt` (usually a part of a
/// [`crate::checkpoint::initial_checkpoint`] split) pins the
/// result-affecting options, so only the execution hints of `params`
/// (`threads`, `count_only`) apply. The report covers exactly the
/// shard's subtrees; a non-completed stop carries the shard's own
/// remaining-frontier checkpoint, which is what re-steal re-queues.
pub fn run_shard<'g>(
    g: &'g BipartiteGraph,
    params: &QueryParams,
    ckpt: crate::Checkpoint,
    control: RunControl,
    observer: Option<&'g dyn Observer>,
) -> Result<Report, MbeError> {
    let mut run = Enumeration::new(g).threads(params.threads).control(control).resume(ckpt);
    if let Some(obs) = observer {
        run = run.observer(obs);
    }
    if params.count_only {
        run.count()
    } else {
        run.collect()
    }
}

/// `true` iff `report` may be stored in a [`ResultCache`]: only complete
/// runs qualify. A stopped run (deadline, budget, cancellation, …) is a
/// prefix of the full answer determined by *when* it stopped — not a
/// function of the canonical key — so replaying it to a later identical
/// query would silently return partial results.
pub fn cacheable(report: &Report) -> bool {
    report.stop == StopReason::Completed
}

/// An immutable cached query result. Bicliques are behind an [`Arc`] so
/// a cache hit is O(1): the response borrows the same allocation the
/// cache retains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// The collected bicliques; `None` for count-only queries.
    pub bicliques: Option<Arc<Vec<Biclique>>>,
    /// Delivered emission count of the original run.
    pub emitted: u64,
    /// Wall-clock time the original (uncached) run took.
    pub elapsed: Duration,
}

/// Fixed per-entry bookkeeping charge in the cache's byte accounting.
const ENTRY_OVERHEAD: usize = 160;

/// Fixed per-biclique charge (two `Vec` headers plus allocator slack).
const BICLIQUE_OVERHEAD: usize = 48;

impl CachedResult {
    /// Captures a completed report as a cacheable value. Callers should
    /// check [`cacheable`] first; this only copies data.
    pub fn from_report(report: &Report, count_only: bool) -> CachedResult {
        CachedResult {
            bicliques: if count_only { None } else { Some(Arc::new(report.bicliques.clone())) },
            emitted: report.stats.emitted,
            elapsed: report.stats.elapsed,
        }
    }

    /// Approximate retained size used for the cache's byte budget:
    /// id payloads plus fixed per-biclique and per-entry overheads. An
    /// estimate — the budget bounds memory to within a small constant
    /// factor, it is not an allocator audit.
    pub fn cost_bytes(&self) -> usize {
        let mut cost = ENTRY_OVERHEAD;
        if let Some(bs) = &self.bicliques {
            for b in bs.iter() {
                cost = cost
                    .saturating_add(BICLIQUE_OVERHEAD)
                    .saturating_add(4 * (b.left.len() + b.right.len()));
            }
        }
        cost
    }
}

/// One cache slot: the value, its charged cost, and its LRU stamp.
struct Entry {
    value: CachedResult,
    cost: usize,
    last_used: u64,
}

/// A byte-budgeted LRU cache of completed query results, keyed by
/// `(graph fingerprint, canonical parameter key)`.
///
/// Eviction is strict LRU by lookup/insert recency, driven by the
/// approximate [`CachedResult::cost_bytes`] accounting: an insert evicts
/// least-recently-used entries until the new total fits the budget. A
/// value larger than the whole budget is not inserted at all. The cache
/// is not internally synchronized — the service wraps it in a `Mutex`.
pub struct ResultCache {
    entries: HashMap<(u64, String), Entry>,
    budget: usize,
    used: usize,
    tick: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// An empty cache that will retain at most ~`budget_bytes` of result
    /// data (by the [`CachedResult::cost_bytes`] estimate).
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            budget: budget_bytes,
            used: 0,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Looks up a result, counting a hit or a miss and refreshing the
    /// entry's recency on a hit. The returned value shares the cached
    /// allocation (see [`CachedResult`]).
    pub fn lookup(&mut self, fingerprint: u64, key: &str) -> Option<CachedResult> {
        self.tick += 1;
        // Borrow-shaped two-step: HashMap has no `get_mut` by borrowed
        // pair key without allocating, so probe with a scratch tuple.
        let probe = (fingerprint, key.to_string());
        match self.entries.get_mut(&probe) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.counters.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting least-recently-used entries as needed to
    /// stay within the byte budget. Replacing an existing key refunds the
    /// old entry's cost first. A value whose cost alone exceeds the
    /// budget is dropped without disturbing the cache.
    pub fn insert(&mut self, fingerprint: u64, key: String, value: CachedResult) {
        let cost = value.cost_bytes();
        if cost > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&(fingerprint, key.clone())) {
            self.used = self.used.saturating_sub(old.cost);
        }
        while self.used.saturating_add(cost) > self.budget {
            let Some(lru_key) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&lru_key) {
                self.used = self.used.saturating_sub(evicted.cost);
                self.counters.evictions += 1;
                self.counters.bytes_evicted += evicted.cost as u64;
            }
        }
        self.entries.insert((fingerprint, key), Entry { value, cost, last_used: self.tick });
        self.used = self.used.saturating_add(cost);
        self.counters.insertions += 1;
    }

    /// Current counters, with the `bytes_used` gauge filled in.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters { bytes_used: self.used as u64, ..self.counters }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes currently retained.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::graph_fingerprint;

    fn small_graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
        )
        .unwrap()
    }

    fn result_with(n_bicliques: usize, ids_per_side: usize) -> CachedResult {
        let b =
            Biclique::new((0..ids_per_side as u32).collect(), (0..ids_per_side as u32).collect());
        CachedResult {
            bicliques: Some(Arc::new(vec![b; n_bicliques])),
            emitted: n_bicliques as u64,
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn canonical_key_covers_result_affecting_params_only() {
        let base = QueryParams::default();
        let hinted =
            QueryParams { threads: 8, timeout: Some(Duration::from_secs(1)), ..base.clone() };
        assert_eq!(base.canonical_key(), hinted.canonical_key(), "hints excluded");

        let other_alg = QueryParams { algorithm: Algorithm::Mbea, ..base.clone() };
        let other_ord = QueryParams { order: VertexOrder::Random(7), ..base.clone() };
        let other_thr = QueryParams { min_left: 2, ..base.clone() };
        let other_k = QueryParams { top_k: Some(3), ..base.clone() };
        let other_budget = QueryParams { max_bicliques: Some(10), ..base.clone() };
        let other_count = QueryParams { count_only: true, ..base.clone() };
        let keys: std::collections::HashSet<String> =
            [&base, &other_alg, &other_ord, &other_thr, &other_k, &other_budget, &other_count]
                .iter()
                .map(|p| p.canonical_key())
                .collect();
        assert_eq!(keys.len(), 7, "each result-affecting change yields a distinct key");

        // Threshold clamping matches SizeThresholds::new.
        let zero = QueryParams { min_left: 0, min_right: 0, ..base.clone() };
        assert_eq!(zero.canonical_key(), base.canonical_key());
    }

    #[test]
    fn run_query_matches_direct_enumeration() {
        let g = small_graph();
        let direct = Enumeration::new(&g).collect().unwrap();
        let served = run_query(&g, &QueryParams::default(), RunControl::new(), None).unwrap();
        assert!(served.is_complete());
        let mut a = direct.bicliques.clone();
        let mut b = served.bicliques.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(cacheable(&served));

        let counted = run_query(
            &g,
            &QueryParams { count_only: true, ..Default::default() },
            RunControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(counted.stats.emitted, served.stats.emitted);
        assert!(counted.bicliques.is_empty());
    }

    #[test]
    fn run_query_thresholded_and_top_k_modes() {
        let g = small_graph();
        let thr = run_query(
            &g,
            &QueryParams { min_left: 2, min_right: 2, threads: 4, ..Default::default() },
            RunControl::new(),
            None,
        )
        .unwrap();
        assert!(thr.is_complete(), "thresholded query forced serial, not rejected");
        assert!(thr.bicliques.iter().all(|b| b.left.len() >= 2 && b.right.len() >= 2));

        let top = run_query(
            &g,
            &QueryParams { top_k: Some(1), ..Default::default() },
            RunControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(top.bicliques.len(), 1);
        let full = Enumeration::new(&g).collect().unwrap();
        let best = full.bicliques.iter().map(Biclique::edges).max().unwrap();
        assert_eq!(top.bicliques[0].edges(), best);
    }

    #[test]
    fn stopped_runs_are_not_cacheable() {
        let g = small_graph();
        let stopped = run_query(
            &g,
            &QueryParams { max_bicliques: Some(1), ..Default::default() },
            RunControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(stopped.stop, StopReason::EmitBudget);
        assert!(!cacheable(&stopped));
        assert!(stopped.checkpoint.is_some(), "budget stop carries a checkpoint");
    }

    #[test]
    fn cache_hits_misses_and_lru_eviction() {
        let unit = result_with(1, 4).cost_bytes();
        // Room for exactly two unit entries.
        let mut cache = ResultCache::new(2 * unit);
        let g = small_graph();
        let fp = graph_fingerprint(&g);

        assert!(cache.lookup(fp, "a").is_none());
        cache.insert(fp, "a".into(), result_with(1, 4));
        cache.insert(fp, "b".into(), result_with(1, 4));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fp, "a").is_some(), "a refreshed — now MRU");
        cache.insert(fp, "c".into(), result_with(1, 4));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fp, "b").is_none(), "b was LRU and got evicted");
        assert!(cache.lookup(fp, "a").is_some());
        assert!(cache.lookup(fp, "c").is_some());

        let c = cache.counters();
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.insertions, 3);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.bytes_used as usize, cache.used_bytes());
        assert_eq!(c.bytes_evicted as usize, unit);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn cache_keys_separate_fingerprints() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(1, "k".into(), result_with(1, 2));
        assert!(cache.lookup(2, "k").is_none(), "same params, different graph");
        assert!(cache.lookup(1, "k").is_some());
    }

    #[test]
    fn cache_replacement_refunds_cost_and_oversize_is_skipped() {
        let small = result_with(1, 2);
        let unit = small.cost_bytes();
        let mut cache = ResultCache::new(4 * unit);
        cache.insert(9, "k".into(), small.clone());
        let used_once = cache.used_bytes();
        cache.insert(9, "k".into(), small);
        assert_eq!(cache.used_bytes(), used_once, "replacement did not double-charge");
        assert_eq!(cache.len(), 1);

        // An entry bigger than the whole budget is dropped, cache intact.
        cache.insert(9, "huge".into(), result_with(1000, 16));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(9, "k").is_some());
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn count_only_results_cache_without_payload() {
        let g = small_graph();
        let report = run_query(
            &g,
            &QueryParams { count_only: true, ..Default::default() },
            RunControl::new(),
            None,
        )
        .unwrap();
        let cached = CachedResult::from_report(&report, true);
        assert!(cached.bicliques.is_none());
        assert_eq!(cached.emitted, report.stats.emitted);
        assert_eq!(cached.cost_bytes(), ENTRY_OVERHEAD);
    }
}
