//! Maximal biclique enumeration (MBE) with a prefix-tree core.
//!
//! This crate implements the algorithm family around **MBET**, the
//! prefix-tree based MBE algorithm ("Maximal Biclique Enumeration: A Prefix
//! Tree Based Approach", ICDE 2024 — see the workspace DESIGN.md for the
//! reconstruction notes), together with the published baselines it is
//! evaluated against and a work-stealing parallel driver.
//!
//! # Quick start
//!
//! Every run goes through the [`Enumeration`] builder, which owns the
//! options, the output sink, and the run-control plane (cancellation,
//! deadlines, budgets):
//!
//! ```
//! use bigraph::BipartiteGraph;
//! use mbe::{Algorithm, Enumeration, MbeOptions};
//!
//! // A 2x2 complete block plus a pendant edge.
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
//! let report = Enumeration::new(&g)
//!     .options(MbeOptions::new(Algorithm::Mbet))
//!     .collect()
//!     .unwrap();
//! assert!(report.is_complete());
//! assert_eq!(report.bicliques.len(), 2);
//! assert_eq!(report.stats.emitted, 2);
//! ```
//!
//! Runs can be bounded or interrupted; the [`Report`] says how far they
//! got and why they stopped ([`StopReason`]):
//!
//! ```
//! use bigraph::BipartiteGraph;
//! use mbe::{Enumeration, StopReason};
//! use std::time::Duration;
//!
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
//! let report = Enumeration::new(&g)
//!     .max_bicliques(1)                       // emission budget
//!     .timeout(Duration::from_secs(60))       // wall-clock deadline
//!     .collect()
//!     .unwrap();
//! assert_eq!(report.stop, StopReason::EmitBudget);
//! assert_eq!(report.bicliques.len(), 1);
//! ```
//!
//! A stopped run's output is always a duplicate-free subset of the
//! complete run's output, from the serial and the parallel driver alike.
//! For cooperative cancellation from another thread, share a
//! [`RunControl`] (it clones cheaply and shares its cancel flag) and call
//! [`RunControl::cancel`].
//!
//! # Algorithms
//!
//! | [`Algorithm`] | Maximality check | Extras |
//! |---|---|---|
//! | `MineLmbc` | recompute `C(L')` and compare | literal "Algorithm 1" of the background literature |
//! | `Mbea` | excluded-set (`Q`) subset scans | |
//! | `Imbea` | excluded-set scans | candidates sorted by local degree per node |
//! | `Mbet` | prefix-tree superset walk | equivalence batching + trie absorption ([`MbetConfig`]) |
//!
//! All algorithms emit exactly the same set of maximal bicliques — every
//! maximal biclique `(L, R)` with both sides non-empty, each exactly once —
//! which the test suite enforces against a brute-force reference
//! ([`verify`]).
//!
//! # Conventions
//!
//! Enumeration explores subsets of the `V` side, so graphs should be
//! [canonicalized](bigraph::BipartiteGraph::canonicalize) (`|U| ≥ |V|`)
//! first for best performance — the library works either way. A
//! [`VertexOrder`] is applied internally and
//! emitted bicliques are reported in *original* vertex ids.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod checkpoint;
pub mod extremal;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod filtered;
pub mod histogram;
pub mod invariants;
pub mod mbet;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub mod progress;
pub mod run;
pub mod service;
pub mod sink;
pub mod task;
pub mod verify;

pub use checkpoint::{initial_checkpoint, Checkpoint, CheckpointError, ResumeTask};
pub use extremal::{maximum_edge_biclique, top_k_by_edges, top_k_with_control};
pub use filtered::SizeThresholds;
pub use histogram::Histogram;
pub use metrics::{CacheCounters, RunMetrics, Stats, WorkerMetrics};
pub use obs::{FanoutObserver, JsonlTraceObserver, NoopObserver, Observer};
pub use run::{Enumeration, MbeError, Report, RunControl, StopReason};
pub use service::{CachedResult, QueryParams, ResultCache};
pub use sink::{Biclique, BicliqueSink, CollectSink, CountSink, FnSink, TrieSink};

pub use setops::Kernel;

use bigraph::order::VertexOrder;

/// Which enumeration engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// "Algorithm 1": no excluded set; maximality by recomputing `C(L')`.
    MineLmbc,
    /// Excluded-set based maximality (Zhang et al. 2014, MBEA).
    Mbea,
    /// MBEA plus per-node ascending local-degree candidate ordering.
    Imbea,
    /// The prefix-tree algorithm (the paper's contribution).
    Mbet,
}

impl Algorithm {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::MineLmbc => "MineLMBC",
            Algorithm::Mbea => "MBEA",
            Algorithm::Imbea => "iMBEA",
            Algorithm::Mbet => "MBET",
        }
    }

    /// All algorithms, in the order the experiment tables report them.
    pub fn all() -> [Algorithm; 4] {
        [Algorithm::MineLmbc, Algorithm::Mbea, Algorithm::Imbea, Algorithm::Mbet]
    }
}

/// Feature toggles of the MBET engine, exposed for the E4 ablation.
///
/// With all three disabled the engine degenerates to MBEA (and the tests
/// assert exactly that, node counts included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbetConfig {
    /// Expand one representative per group of candidates with identical
    /// local neighborhoods (§3.2 of DESIGN.md).
    pub batching: bool,
    /// Answer the maximality question with one superset walk over the
    /// excluded-vertex trie instead of per-`q` subset scans.
    pub trie_maximality: bool,
    /// Find the candidates absorbed into `R'` with one superset walk over
    /// the candidate trie instead of per-candidate subset scans.
    pub trie_absorption: bool,
}

impl Default for MbetConfig {
    fn default() -> Self {
        MbetConfig { batching: true, trie_maximality: true, trie_absorption: true }
    }
}

/// Options shared by the serial and parallel entry points.
#[derive(Debug, Clone)]
pub struct MbeOptions {
    /// Engine selection.
    pub algorithm: Algorithm,
    /// Ordering imposed on `V` before enumeration.
    pub order: VertexOrder,
    /// MBET feature toggles (ignored by other engines).
    pub mbet: MbetConfig,
    /// Worker threads: `1` (the default) runs the serial driver, `0`
    /// spawns one worker per core, any other `n` spawns `n` workers.
    pub threads: usize,
    /// Load-aware splitting: root tasks with estimated enumeration-tree
    /// height above this are split (parallel driver only).
    pub split_height: usize,
    /// Load-aware splitting: root tasks with estimated size above this are
    /// split (parallel driver only).
    pub split_size: usize,
    /// Which intersection kernels the MBET engine may use. An execution
    /// hint only: never changes which bicliques are emitted or their
    /// order, so (like `threads`) it is excluded from checkpoint
    /// fingerprints and cache keys.
    pub kernel: Kernel,
}

impl MbeOptions {
    /// Defaults matching the paper-style configuration: ascending-degree
    /// order, all MBET features on, serial driver (`threads = 1`),
    /// splitting thresholds (20, 1500).
    pub fn new(algorithm: Algorithm) -> Self {
        MbeOptions {
            algorithm,
            order: VertexOrder::AscendingDegree,
            mbet: MbetConfig::default(),
            threads: 1,
            split_height: 20,
            split_size: 1500,
            kernel: Kernel::Adaptive,
        }
    }

    /// Sets the vertex order.
    pub fn order(mut self, order: VertexOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the MBET feature toggles.
    pub fn mbet(mut self, cfg: MbetConfig) -> Self {
        self.mbet = cfg;
        self
    }

    /// Sets the worker-thread count (`1` = serial, `0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the intersection-kernel policy (execution hint).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl Default for MbeOptions {
    fn default() -> Self {
        MbeOptions::new(Algorithm::Mbet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder() {
        let o = MbeOptions::new(Algorithm::Imbea)
            .order(VertexOrder::Natural)
            .threads(4)
            .mbet(MbetConfig { batching: false, ..Default::default() });
        assert_eq!(o.algorithm, Algorithm::Imbea);
        assert_eq!(o.order, VertexOrder::Natural);
        assert_eq!(o.threads, 4);
        assert!(!o.mbet.batching);
        assert!(o.mbet.trie_maximality);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Algorithm::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
